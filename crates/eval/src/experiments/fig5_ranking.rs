//! Figure 5 — P@1, P@5 and MRR of CQAds against the four baseline rankers.
//!
//! Forty test questions (five per domain) are drawn from the workload. For each
//! question the exact matches are removed from every ranker's output (the paper ranks
//! *partially-matched* answers) and the top-5 remaining answers of each ranker are
//! judged by a panel of simulated appraisers whose notion of relatedness comes from the
//! blueprint ground truth — never from any ranker's own similarity. The expected shape:
//! CQAds best on all three metrics, Random worst, FAQFinder lowest among the non-random
//! baselines.

use crate::metrics::{mean_reciprocal_rank, precision_at_k};
use crate::testbed::Testbed;
use addb::{Executor, RecordId};
use cqads_baselines::{AimqRanker, CosineRanker, FaqFinderRanker, RandomRanker, Ranker};
use cqads_datagen::{Appraiser, GeneratedQuestion};
use serde::Serialize;
use std::collections::BTreeSet;

/// Number of test questions per domain (the paper uses 5, for 40 in total).
pub const QUESTIONS_PER_DOMAIN: usize = 5;
/// Number of answers judged per ranker per question.
pub const TOP_K: usize = 5;
/// Size of the simulated appraiser panel per question.
pub const APPRAISERS: usize = 5;

/// Scores of one ranking approach.
#[derive(Debug, Clone, Serialize)]
pub struct RankerScores {
    /// Ranker name.
    pub name: String,
    /// Precision@1.
    pub p_at_1: f64,
    /// Precision@5.
    pub p_at_5: f64,
    /// Mean reciprocal rank.
    pub mrr: f64,
}

/// Result of the ranking comparison.
#[derive(Debug, Clone, Serialize)]
pub struct RankingResult {
    /// Scores per approach, CQAds first.
    pub systems: Vec<RankerScores>,
    /// Number of test questions used.
    pub questions: usize,
}

impl RankingResult {
    /// Scores of a named system.
    pub fn scores(&self, name: &str) -> Option<&RankerScores> {
        self.systems.iter().find(|s| s.name == name)
    }

    /// Paper-style textual report.
    pub fn report(&self) -> String {
        let mut out = format!(
            "Figure 5 — ranking quality over {} test questions (top-{TOP_K} partial answers)\n",
            self.questions
        );
        out.push_str("  system      P@1     P@5     MRR\n");
        for s in &self.systems {
            out.push_str(&format!(
                "  {:<10}  {:.3}   {:.3}   {:.3}\n",
                s.name, s.p_at_1, s.p_at_5, s.mrr
            ));
        }
        out
    }
}

/// Select the Figure 5 test questions: the first `QUESTIONS_PER_DOMAIN` of each domain
/// that interpret cleanly.
pub fn test_questions(bed: &Testbed) -> Vec<&GeneratedQuestion> {
    let mut out = Vec::new();
    for domain in bed.system.domain_names() {
        let mut taken = 0;
        for q in bed.questions_for(domain) {
            if taken >= QUESTIONS_PER_DOMAIN {
                break;
            }
            if bed.system.interpret_in_domain(&q.text, domain).is_ok() {
                out.push(q);
                taken += 1;
            }
        }
    }
    out
}

/// Run the experiment.
pub fn run(bed: &Testbed) -> RankingResult {
    let questions = test_questions(bed);
    let appraisers: Vec<Appraiser> = (0..APPRAISERS as u64).map(Appraiser::new).collect();

    let baselines: Vec<Box<dyn Ranker>> = vec![
        Box::new(RandomRanker::new(bed.config.seed ^ 0x99)),
        Box::new(CosineRanker::new()),
        Box::new(AimqRanker::new()),
        Box::new(FaqFinderRanker::new()),
    ];

    // relatedness[system][question] = per-position relatedness of the top answers
    let mut relatedness: Vec<Vec<Vec<f64>>> = vec![Vec::new(); baselines.len() + 1];

    for (qi, q) in questions.iter().enumerate() {
        let spec = bed.spec(&q.domain);
        let blueprint = bed.blueprint(&q.domain);
        let table = bed
            .system
            .database()
            .table(&q.domain)
            .expect("domain registered");
        // Exact matches of the gold intent are excluded everywhere: Figure 5 is about
        // partially-matched answers.
        let exact_ids: BTreeSet<RecordId> = q
            .gold
            .to_query(spec)
            .ok()
            .and_then(|query| Executor::new(table).execute(&query).ok())
            .map(|a| a.into_iter().map(|x| x.id).collect())
            .unwrap_or_default();

        let judge = |ids: &[RecordId]| -> Vec<f64> {
            ids.iter()
                .take(TOP_K)
                .map(|id| {
                    let record = table.get(*id).expect("ranked ids exist");
                    let votes = appraisers
                        .iter()
                        .filter(|a| a.judge(blueprint, qi as u64, &q.gold, record))
                        .count();
                    if votes * 2 >= appraisers.len() {
                        1.0
                    } else {
                        0.0
                    }
                })
                .collect()
        };

        // CQAds: the pipeline's ranked partial answers.
        let cqads_ids: Vec<RecordId> = bed
            .system
            .answer_in_domain(&q.text, &q.domain)
            .map(|set| {
                set.partial()
                    .iter()
                    .map(|a| a.id)
                    .filter(|id| !exact_ids.contains(id))
                    .take(TOP_K)
                    .collect()
            })
            .unwrap_or_default();
        relatedness[0].push(judge(&cqads_ids));

        // Baselines rank the whole table on the interpretation CQAds produced (falling
        // back to the gold intent if the text fails to interpret), minus exact matches.
        let interp = bed
            .system
            .interpret_in_domain(&q.text, &q.domain)
            .map(|(_, i, _)| i)
            .unwrap_or_else(|_| q.gold.clone());
        for (bi, ranker) in baselines.iter().enumerate() {
            let ranked: Vec<RecordId> = ranker
                .rank(&interp, table, TOP_K + exact_ids.len())
                .into_iter()
                .filter(|id| !exact_ids.contains(id))
                .take(TOP_K)
                .collect();
            relatedness[bi + 1].push(judge(&ranked));
        }
    }

    let mut systems = Vec::new();
    let names = ["CQAds", "Random", "Cosine", "AIMQ", "FAQFinder"];
    for (i, name) in names.iter().enumerate() {
        systems.push(RankerScores {
            name: name.to_string(),
            p_at_1: precision_at_k(&relatedness[i], 1),
            p_at_5: precision_at_k(&relatedness[i], TOP_K),
            mrr: mean_reciprocal_rank(&relatedness[i]),
        });
    }
    RankingResult {
        systems,
        questions: questions.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::test_bed::shared;

    #[test]
    fn cqads_outranks_the_baselines() {
        let result = run(shared());
        assert!(result.questions >= 30);
        let cqads = result.scores("CQAds").unwrap();
        let random = result.scores("Random").unwrap();
        let faq = result.scores("FAQFinder").unwrap();
        // Bounds.
        for s in &result.systems {
            assert!((0.0..=1.0 + 1e-9).contains(&s.p_at_1), "{s:?}");
            assert!((0.0..=1.0 + 1e-9).contains(&s.p_at_5), "{s:?}");
            assert!((0.0..=1.0 + 1e-9).contains(&s.mrr), "{s:?}");
        }
        // Shape: CQAds beats the random floor decisively on every metric and is at
        // least as good as every baseline on P@5.
        assert!(cqads.p_at_5 > random.p_at_5, "{result:#?}");
        assert!(cqads.mrr >= random.mrr);
        for s in &result.systems {
            assert!(
                cqads.p_at_5 + 1e-9 >= s.p_at_5,
                "CQAds lost P@5 to {}",
                s.name
            );
        }
        // FAQFinder ignores numeric attributes, so it should not beat CQAds.
        assert!(cqads.p_at_5 >= faq.p_at_5);
        assert!(result.report().contains("P@1"));
    }
}
