//! The WS word-correlation matrix.
//!
//! For every pair of non-stop, stemmed words the matrix stores a similarity computed
//! from (i) frequency of co-occurrence and (ii) relative distance within documents —
//! the construction described for the matrix CQAds adopts from Koberstein & Ng. The
//! accumulation rule is `score(w1, w2) += 1 / d` for every co-occurrence at token
//! distance `d ≤ window`, and the final matrix is normalized by the largest off-diagonal
//! entry so values lie in `[0, 1]` (a word with itself scores exactly 1).

use crate::corpus::SyntheticCorpus;
use cqads_text::intern::{self, sym_pair, Sym, SymHashBuilder};
use cqads_text::{is_stopword, porter_stem};
use std::collections::HashMap;

/// Default co-occurrence window (in tokens) within which two words are considered
/// related; beyond it the 1/d contribution is negligible anyway.
pub const DEFAULT_WINDOW: usize = 8;

/// Sparse symmetric word-similarity matrix over stemmed words.
///
/// Entries are keyed by interned symbols of the stems, so the hot-path lookups
/// ([`WordSimMatrix::similarity_sym`], [`WordSimMatrix::value_similarity_syms`]) are
/// integer-pair hash probes with zero string allocation. The string-based accessors
/// stem (and allocate) on the way in and remain for construction, tests and reports.
#[derive(Debug, Clone, Default)]
pub struct WordSimMatrix {
    /// Canonically ordered stem-symbol pair -> normalized similarity.
    entries: HashMap<(Sym, Sym), f64, SymHashBuilder>,
    /// Largest raw accumulation, kept for reporting.
    max_raw: f64,
}

impl WordSimMatrix {
    /// Build the matrix from a corpus with the default window. Thin wrapper over
    /// [`WordSimMatrix::build_with_window`] — there is exactly one construction
    /// path (accumulate co-occurrences, then normalize), and both entry points
    /// share it.
    pub fn build(corpus: &SyntheticCorpus) -> Self {
        Self::build_with_window(corpus, DEFAULT_WINDOW)
    }

    /// Build the matrix from a corpus with an explicit co-occurrence window: one
    /// `accumulate` pass over the documents, then one `normalize` over the raw
    /// scores (the same accumulate/finalize shape as `cqads_querylog::TIMatrix`).
    pub fn build_with_window(corpus: &SyntheticCorpus, window: usize) -> Self {
        Self::normalize(Self::accumulate(corpus, window))
    }

    /// Accumulation phase: `score(w1, w2) += 1/d` for every co-occurrence of two
    /// distinct non-stop stems at token distance `d ≤ window`, over every document.
    fn accumulate(
        corpus: &SyntheticCorpus,
        window: usize,
    ) -> HashMap<(Sym, Sym), f64, SymHashBuilder> {
        let mut raw: HashMap<(Sym, Sym), f64, SymHashBuilder> = HashMap::default();
        for doc in &corpus.documents {
            let stems: Vec<Sym> = doc
                .iter()
                .filter(|w| !is_stopword(w))
                .map(|w| intern::intern(&porter_stem(w)))
                .collect();
            for i in 0..stems.len() {
                let limit = (i + window + 1).min(stems.len());
                for j in (i + 1)..limit {
                    if stems[i] == stems[j] {
                        continue;
                    }
                    let d = (j - i) as f64;
                    *raw.entry(sym_pair(stems[i], stems[j])).or_insert(0.0) += 1.0 / d;
                }
            }
        }
        raw
    }

    /// Normalization phase: divide every raw accumulation by the largest one so
    /// entries lie in `[0, 1]` (an empty accumulation normalizes to itself).
    fn normalize(raw: HashMap<(Sym, Sym), f64, SymHashBuilder>) -> Self {
        let max_raw = raw.values().cloned().fold(0.0_f64, f64::max);
        let entries = if max_raw > 0.0 {
            raw.into_iter().map(|(k, v)| (k, v / max_raw)).collect()
        } else {
            raw
        };
        WordSimMatrix { entries, max_raw }
    }

    /// Similarity of two words in `[0, 1]`. Words are stemmed before lookup; identical
    /// stems score 1; unknown pairs score 0.
    pub fn similarity(&self, a: &str, b: &str) -> f64 {
        let sa = porter_stem(&a.to_lowercase());
        let sb = porter_stem(&b.to_lowercase());
        if sa == sb {
            return 1.0;
        }
        match (intern::lookup(&sa), intern::lookup(&sb)) {
            (Some(sa), Some(sb)) => self.entries.get(&sym_pair(sa, sb)).copied().unwrap_or(0.0),
            _ => 0.0,
        }
    }

    /// Allocation-free similarity over interned stem symbols: identical stems score 1,
    /// unknown pairs 0.
    pub fn similarity_sym(&self, a: Sym, b: Sym) -> f64 {
        if a == b {
            return 1.0;
        }
        self.entries.get(&sym_pair(a, b)).copied().unwrap_or(0.0)
    }

    /// Similarity of two (possibly multi-word) attribute values: the maximum pairwise
    /// word similarity, which is how CQAds compares a question value such as "power
    /// steering" against a record feature list.
    pub fn value_similarity(&self, a: &str, b: &str) -> f64 {
        let words_a: Vec<&str> = a.split_whitespace().collect();
        let words_b: Vec<&str> = b.split_whitespace().collect();
        if words_a.is_empty() || words_b.is_empty() {
            return 0.0;
        }
        let mut best = 0.0_f64;
        for wa in &words_a {
            for wb in &words_b {
                best = best.max(self.similarity(wa, wb));
            }
        }
        best
    }

    /// Allocation-free [`WordSimMatrix::value_similarity`] over pre-stemmed symbol
    /// slices. Question-side words that were never interned (`None`) cannot match any
    /// record stem and contribute 0; either side empty scores 0, like the string path.
    pub fn value_similarity_syms(&self, question: &[Option<Sym>], record: &[Sym]) -> f64 {
        if question.is_empty() || record.is_empty() {
            return 0.0;
        }
        let mut best = 0.0_f64;
        for qa in question {
            let Some(qa) = qa else { continue };
            for rb in record {
                best = best.max(self.similarity_sym(*qa, *rb));
            }
        }
        best
    }

    /// Number of stored (non-zero) pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the matrix holds no pairs.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Largest raw (pre-normalization) accumulation; the normalization factor applied to
    /// `Feat_Sim` in Equation 5.
    pub fn max_raw(&self) -> f64 {
        self.max_raw
    }

    /// Insert an explicit similarity value (used by tests and by small hand-built
    /// matrices in examples).
    pub fn insert(&mut self, a: &str, b: &str, value: f64) {
        let sa = intern::intern(&porter_stem(&a.to_lowercase()));
        let sb = intern::intern(&porter_stem(&b.to_lowercase()));
        self.entries.insert(sym_pair(sa, sb), value.clamp(0.0, 1.0));
        self.max_raw = self.max_raw.max(value);
    }

    /// Export the matrix with every stem symbol resolved to its string, sorted
    /// for deterministic serialization. Interned symbols are process-local, so
    /// a persisted matrix must carry the stems themselves.
    pub fn export_state(&self) -> WsMatrixState {
        let mut entries: Vec<(String, String, f64)> = self
            .entries
            .iter()
            .map(|(&(a, b), &v)| (intern::resolve(a), intern::resolve(b), v))
            .collect();
        entries.sort_by(|x, y| (x.0.as_str(), x.1.as_str()).cmp(&(y.0.as_str(), y.1.as_str())));
        WsMatrixState {
            entries,
            max_raw: self.max_raw,
        }
    }

    /// Rebuild a matrix from exported state. The stored strings are **already
    /// stems** (stemming happened on the way into the live matrix), so they
    /// are interned verbatim — re-stemming a stem is not guaranteed to be a
    /// no-op and would corrupt the keys. Similarity values and `max_raw` are
    /// restored bit-for-bit.
    pub fn from_state(state: &WsMatrixState) -> Self {
        let mut entries: HashMap<(Sym, Sym), f64, SymHashBuilder> = HashMap::default();
        for (a, b, v) in &state.entries {
            entries.insert(sym_pair(intern::intern(a), intern::intern(b)), *v);
        }
        WordSimMatrix {
            entries,
            max_raw: state.max_raw,
        }
    }
}

/// Portable snapshot of a [`WordSimMatrix`]: `(stem, stem, similarity)` triples
/// plus the raw normalization maximum. Produced by
/// [`WordSimMatrix::export_state`], consumed by [`WordSimMatrix::from_state`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct WsMatrixState {
    /// Stem-pair similarities, sorted by the stem strings.
    pub entries: Vec<(String, String, f64)>,
    /// Largest raw (pre-normalization) accumulation of the live matrix.
    pub max_raw: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{CorpusSpec, SyntheticCorpus, TopicGroup};
    use proptest::prelude::*;

    fn sample_matrix() -> &'static WordSimMatrix {
        use std::sync::OnceLock;
        static MATRIX: OnceLock<WordSimMatrix> = OnceLock::new();
        MATRIX.get_or_init(|| {
            let groups = vec![
                TopicGroup::new("colors", &["blue", "silver", "black", "red", "white"]),
                TopicGroup::new("interior", &["leather", "seats", "heated", "upholstery"]),
                TopicGroup::new("gems", &["diamond", "ruby", "sapphire"]),
            ];
            let corpus = SyntheticCorpus::generate(&groups, &CorpusSpec::default());
            WordSimMatrix::build(&corpus)
        })
    }

    #[test]
    fn related_words_score_higher_than_unrelated() {
        let m = sample_matrix();
        assert!(m.similarity("blue", "silver") > m.similarity("blue", "leather"));
        assert!(m.similarity("blue", "white") > m.similarity("blue", "diamond"));
        assert!(m.similarity("diamond", "ruby") > m.similarity("diamond", "seats"));
    }

    #[test]
    fn similarity_is_bounded_symmetric_and_reflexive() {
        let m = sample_matrix();
        for (a, b) in [("blue", "silver"), ("leather", "seats"), ("red", "ruby")] {
            let s = m.similarity(a, b);
            assert!((0.0..=1.0).contains(&s));
            assert_eq!(s, m.similarity(b, a));
        }
        assert_eq!(m.similarity("blue", "blue"), 1.0);
        // stem-equivalent forms count as identical
        assert_eq!(m.similarity("seats", "seat"), 1.0);
        assert_eq!(m.similarity("unknownword", "otherunknown"), 0.0);
    }

    #[test]
    fn value_similarity_takes_the_best_word_pair() {
        let m = sample_matrix();
        let multi = m.value_similarity("blue exterior", "silver paint");
        assert!(multi >= m.similarity("blue", "silver") - 1e-12);
        assert_eq!(m.value_similarity("", "blue"), 0.0);
    }

    #[test]
    fn manual_insert_is_clamped_and_retrievable() {
        let mut m = WordSimMatrix::default();
        assert!(m.is_empty());
        m.insert("white", "blue", 0.8);
        m.insert("white", "truck", 7.0);
        assert_eq!(m.similarity("blue", "white"), 0.8);
        assert_eq!(m.similarity("truck", "white"), 1.0);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn empty_corpus_builds_empty_matrix() {
        let corpus = SyntheticCorpus { documents: vec![] };
        let m = WordSimMatrix::build(&corpus);
        assert!(m.is_empty());
        assert_eq!(m.max_raw(), 0.0);
        assert_eq!(m.similarity("a", "b"), 0.0);
    }

    #[test]
    fn export_restore_round_trip_is_bit_identical() {
        let m = sample_matrix();
        let state = m.export_state();
        assert_eq!(state.entries.len(), m.len());
        // Deterministic export: sorted and stable.
        assert_eq!(state, m.export_state());

        let restored = WordSimMatrix::from_state(&state);
        assert_eq!(restored.len(), m.len());
        assert_eq!(restored.max_raw().to_bits(), m.max_raw().to_bits());
        for (k, v) in &m.entries {
            let r = restored.entries.get(k).expect("pair survives restore");
            assert_eq!(v.to_bits(), r.to_bits());
        }
        // Lookups behave identically (the stored strings are stems, interned
        // verbatim — no double stemming).
        assert_eq!(
            m.similarity("blue", "silver").to_bits(),
            restored.similarity("blue", "silver").to_bits()
        );

        let empty = WordSimMatrix::from_state(&WsMatrixState::default());
        assert!(empty.is_empty());
        assert_eq!(empty.max_raw(), 0.0);
    }

    proptest! {
        #[test]
        fn all_lookups_are_in_unit_interval(a in "[a-z]{1,8}", b in "[a-z]{1,8}") {
            let m = sample_matrix();
            let s = m.similarity(&a, &b);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }
}
