//! # cqads-wordsim — word-correlation (WS) matrix substrate
//!
//! `Feat_Sim` (Section 4.3.2 of the paper) measures the similarity between two Type II
//! attribute values ("white" vs "blue") by looking them up in the *WS-matrix*, a
//! 54,625 × 54,625 word-correlation matrix built from ~930,000 Wikipedia documents
//! (Koberstein & Ng 2006). The matrix stores, for every pair of non-stop *stemmed*
//! words, a similarity derived from (i) their frequency of co-occurrence and (ii) their
//! relative distance within documents.
//!
//! We cannot ship the Wikipedia collection, so this crate substitutes it with:
//!
//! * [`corpus`] — a seeded synthetic document generator. Documents are produced from
//!   *topic groups* (e.g. exterior colours, drivetrain features, gemstones) so that
//!   words which belong together in real ads prose genuinely co-occur at small
//!   distances, while unrelated words rarely meet.
//! * [`matrix`] — the WS-matrix builder: for every pair of stemmed, non-stop words in a
//!   sliding window, it accumulates `1 / distance` and normalizes the result into
//!   `[0, 1]`. The construction is exactly the co-occurrence × relative-distance recipe
//!   of the paper's reference; only the corpus is synthetic.
//!
//! The substitution preserves the behaviour CQAds relies on: `Feat_Sim("blue",
//! "silver")` is high (both are exterior colours that co-occur in ads text), while
//! `Feat_Sim("blue", "leather")` is low.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod corpus;
pub mod matrix;

pub use corpus::{CorpusSpec, SyntheticCorpus, TopicGroup};
pub use matrix::{WordSimMatrix, WsMatrixState};
