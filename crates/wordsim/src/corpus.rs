//! Synthetic document corpus used to build the WS-matrix.
//!
//! The real WS-matrix was computed over Wikipedia. The synthetic corpus reproduces the
//! statistical property the matrix extraction needs — *related words co-occur close to
//! each other inside documents* — without the external data. Documents are assembled
//! from [`TopicGroup`]s: each sentence samples one group and emits a handful of its
//! words (plus filler), so words of the same group end up nearby far more often than
//! words of different groups.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A cluster of semantically related words ("blue silver black red ...", "gold
/// platinum sterling ...").
#[derive(Debug, Clone)]
pub struct TopicGroup {
    /// Name of the group (only used for debugging/reporting).
    pub name: String,
    /// The words in the group (surface forms; stemming happens in the matrix builder).
    pub words: Vec<String>,
}

impl TopicGroup {
    /// Build a group from string slices.
    pub fn new(name: &str, words: &[&str]) -> Self {
        TopicGroup {
            name: name.to_string(),
            words: words.iter().map(|w| w.to_string()).collect(),
        }
    }
}

/// Parameters of the synthetic corpus.
#[derive(Debug, Clone)]
pub struct CorpusSpec {
    /// Number of documents to generate.
    pub documents: usize,
    /// Sentences per document.
    pub sentences_per_doc: usize,
    /// Words sampled from the chosen topic group per sentence.
    pub group_words_per_sentence: usize,
    /// Filler (unrelated, generic) words per sentence.
    pub filler_words_per_sentence: usize,
    /// RNG seed so the matrix is reproducible.
    pub seed: u64,
}

impl Default for CorpusSpec {
    fn default() -> Self {
        CorpusSpec {
            documents: 400,
            sentences_per_doc: 12,
            group_words_per_sentence: 4,
            filler_words_per_sentence: 3,
            seed: 0xC0FFEE,
        }
    }
}

/// Generic filler vocabulary that appears in every ads text regardless of topic.
const FILLER: &[&str] = &[
    "great",
    "condition",
    "excellent",
    "offer",
    "contact",
    "available",
    "price",
    "new",
    "used",
    "sale",
    "original",
    "owner",
    "clean",
    "perfect",
    "quality",
    "includes",
    "warranty",
    "deal",
    "good",
    "best",
];

/// A generated corpus: a list of documents, each a list of lowercase words.
#[derive(Debug, Clone)]
pub struct SyntheticCorpus {
    /// The generated documents.
    pub documents: Vec<Vec<String>>,
}

impl SyntheticCorpus {
    /// Generate a corpus from topic groups under the given spec.
    pub fn generate(groups: &[TopicGroup], spec: &CorpusSpec) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let mut documents = Vec::with_capacity(spec.documents);
        for _ in 0..spec.documents {
            let mut doc = Vec::new();
            for _ in 0..spec.sentences_per_doc {
                // Pick a topic group for this sentence; related words land together.
                if groups.is_empty() {
                    break;
                }
                let group = &groups[rng.random_range(0..groups.len())];
                for _ in 0..spec.group_words_per_sentence {
                    if group.words.is_empty() {
                        continue;
                    }
                    let w = &group.words[rng.random_range(0..group.words.len())];
                    doc.push(w.to_lowercase());
                }
                for _ in 0..spec.filler_words_per_sentence {
                    doc.push(FILLER[rng.random_range(0..FILLER.len())].to_string());
                }
            }
            documents.push(doc);
        }
        SyntheticCorpus { documents }
    }

    /// Total number of word occurrences in the corpus.
    pub fn token_count(&self) -> usize {
        self.documents.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn groups() -> Vec<TopicGroup> {
        vec![
            TopicGroup::new("colors", &["blue", "silver", "black", "red", "white"]),
            TopicGroup::new(
                "drivetrain",
                &["automatic", "manual", "transmission", "4wd"],
            ),
            TopicGroup::new("gems", &["diamond", "ruby", "sapphire", "emerald"]),
        ]
    }

    #[test]
    fn corpus_has_requested_shape() {
        let spec = CorpusSpec {
            documents: 10,
            sentences_per_doc: 5,
            group_words_per_sentence: 3,
            filler_words_per_sentence: 2,
            seed: 1,
        };
        let corpus = SyntheticCorpus::generate(&groups(), &spec);
        assert_eq!(corpus.documents.len(), 10);
        assert_eq!(corpus.token_count(), 10 * 5 * (3 + 2));
        assert!(corpus
            .documents
            .iter()
            .all(|d| d.iter().all(|w| *w == w.to_lowercase())));
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let spec = CorpusSpec::default();
        let a = SyntheticCorpus::generate(&groups(), &spec);
        let b = SyntheticCorpus::generate(&groups(), &spec);
        assert_eq!(a.documents, b.documents);
        let other = SyntheticCorpus::generate(
            &groups(),
            &CorpusSpec {
                seed: 99,
                ..CorpusSpec::default()
            },
        );
        assert_ne!(a.documents, other.documents);
    }

    #[test]
    fn empty_groups_yield_filler_free_empty_docs() {
        let spec = CorpusSpec {
            documents: 3,
            ..CorpusSpec::default()
        };
        let corpus = SyntheticCorpus::generate(&[], &spec);
        assert_eq!(corpus.documents.len(), 3);
        assert_eq!(corpus.token_count(), 0);
    }
}
