//! Natural-language question generation with gold intents.
//!
//! Substitutes the 650 Facebook-survey questions of Section 5.1. Every generated
//! question carries its *gold interpretation* (the condition sketches and superlatives
//! the simulated user had in mind), so that the evaluation harness can compute the gold
//! answer set independently of the CQAds pipeline and measure precision/recall against
//! it.
//!
//! The generator produces the error and Boolean phenomena the paper discusses, in
//! realistic proportions (configurable through [`QuestionMix`]): plain questions,
//! misspelled keywords, run-together keywords (missing spaces), shorthand notations,
//! incomplete numeric conditions, implicit Boolean questions (negations /
//! mutually-exclusive values) and explicit Boolean (OR) questions — the paper observed
//! roughly one fifth Boolean questions, of which only ~5 % carry explicit operators.

use crate::domains::DomainBlueprint;
use addb::{Superlative, Table};
use cqads::translate::{ConditionSketch, Interpretation};
use cqads::BoundaryOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The kind of phenomenon a generated question exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuestionKind {
    /// Well-formed question with no noise.
    Plain,
    /// One keyword misspelled.
    Misspelled,
    /// Two keywords glued together (missing space).
    RunTogether,
    /// A multi-word value written as a shorthand notation.
    Shorthand,
    /// A numeric condition with no identifying attribute keyword.
    Incomplete,
    /// Implicit Boolean: a negation or mutually-exclusive values, no AND/OR written.
    ImplicitBoolean,
    /// Explicit Boolean: an OR between alternatives.
    ExplicitBoolean,
}

/// One generated question with its gold intent.
#[derive(Debug, Clone)]
pub struct GeneratedQuestion {
    /// The natural-language text as the user would type it.
    pub text: String,
    /// The ads domain the question belongs to.
    pub domain: String,
    /// Phenomenon injected into the question.
    pub kind: QuestionKind,
    /// The gold interpretation (what the user meant).
    pub gold: Interpretation,
}

/// Proportions of each question kind. Values are relative weights.
#[derive(Debug, Clone)]
pub struct QuestionMix {
    /// Weight of plain questions.
    pub plain: f64,
    /// Weight of misspelled questions.
    pub misspelled: f64,
    /// Weight of run-together questions.
    pub run_together: f64,
    /// Weight of shorthand questions.
    pub shorthand: f64,
    /// Weight of incomplete questions.
    pub incomplete: f64,
    /// Weight of implicit Boolean questions.
    pub implicit_boolean: f64,
    /// Weight of explicit Boolean questions.
    pub explicit_boolean: f64,
}

impl Default for QuestionMix {
    fn default() -> Self {
        // Roughly: 60 % plain, 5 % each noise kind, ~15 % implicit Boolean, 5 % explicit
        // Boolean — matching the shares the paper reports from its surveys.
        QuestionMix {
            plain: 0.60,
            misspelled: 0.05,
            run_together: 0.05,
            shorthand: 0.05,
            incomplete: 0.05,
            implicit_boolean: 0.15,
            explicit_boolean: 0.05,
        }
    }
}

impl QuestionMix {
    /// A mix with only plain questions (used by the classification experiment, whose
    /// training corpus should not be dominated by noise).
    pub fn plain_only() -> Self {
        QuestionMix {
            plain: 1.0,
            misspelled: 0.0,
            run_together: 0.0,
            shorthand: 0.0,
            incomplete: 0.0,
            implicit_boolean: 0.0,
            explicit_boolean: 0.0,
        }
    }

    fn sample(&self, rng: &mut StdRng) -> QuestionKind {
        let total = self.plain
            + self.misspelled
            + self.run_together
            + self.shorthand
            + self.incomplete
            + self.implicit_boolean
            + self.explicit_boolean;
        let mut draw = rng.random::<f64>() * total;
        for (weight, kind) in [
            (self.plain, QuestionKind::Plain),
            (self.misspelled, QuestionKind::Misspelled),
            (self.run_together, QuestionKind::RunTogether),
            (self.shorthand, QuestionKind::Shorthand),
            (self.incomplete, QuestionKind::Incomplete),
            (self.implicit_boolean, QuestionKind::ImplicitBoolean),
            (self.explicit_boolean, QuestionKind::ExplicitBoolean),
        ] {
            if draw <= weight {
                return kind;
            }
            draw -= weight;
        }
        QuestionKind::Plain
    }
}

/// Generate `count` questions for a domain, anchored on records of `table` so that
/// plain questions usually have exact answers.
pub fn generate_questions(
    blueprint: &DomainBlueprint,
    table: &Table,
    count: usize,
    seed: u64,
    mix: &QuestionMix,
) -> Vec<GeneratedQuestion> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E3779B97F4A7C15);
    (0..count)
        .map(|_| generate_question(blueprint, table, &mut rng, mix))
        .collect()
}

/// Generate a single question.
pub fn generate_question(
    blueprint: &DomainBlueprint,
    table: &Table,
    rng: &mut StdRng,
    mix: &QuestionMix,
) -> GeneratedQuestion {
    let kind = mix.sample(rng);
    let anchor_id = addb::RecordId(rng.random_range(0..table.len().max(1)) as u32);
    let anchor = table.get(anchor_id).cloned().unwrap_or_default();

    // --- Build the gold sketches from the anchor record --------------------------
    let mut sketches: Vec<ConditionSketch> = Vec::new();
    let mut phrases: Vec<String> = Vec::new();
    let mut superlatives: Vec<Superlative> = Vec::new();

    // Type I values (primary identifier, plus the paired one most of the time).
    for (i, pool) in blueprint.type1.iter().enumerate() {
        if i > 0 && rng.random::<f64>() < 0.35 {
            continue;
        }
        if let Some(value) = anchor.get_text(pool.attribute) {
            sketches.push(ConditionSketch::Categorical {
                attribute: pool.attribute.to_string(),
                value: value.to_string(),
                is_type1: true,
                negated: false,
            });
            phrases.push(value.to_string());
        }
    }
    // One or two Type II values.
    let type2_count = rng.random_range(0..=2usize);
    let mut type2_added = 0;
    for pool in &blueprint.type2 {
        if type2_added >= type2_count {
            break;
        }
        if rng.random::<f64>() < 0.5 {
            continue;
        }
        if let Some(value) = anchor.get_text(pool.attribute) {
            sketches.push(ConditionSketch::Categorical {
                attribute: pool.attribute.to_string(),
                value: value.to_string(),
                is_type1: false,
                negated: false,
            });
            phrases.push(value.to_string());
            type2_added += 1;
        }
    }
    // A numeric condition on the price-like attribute about half the time.
    let mut numeric_phrase: Option<String> = None;
    if let Some(price_attr) = blueprint.price_attribute {
        if rng.random::<f64>() < 0.55 {
            if let Some(actual) = anchor.get_number(price_attr) {
                let mut bound = round_bound(actual * rng.random_range(1.05..1.5));
                if bound <= actual {
                    // Rounding must never exclude the anchor record itself.
                    bound = (actual + 1.0).ceil();
                }
                sketches.push(ConditionSketch::Numeric {
                    attribute: Some(price_attr.to_string()),
                    op: BoundaryOp::Lt,
                    value: bound,
                    value2: None,
                    negated: false,
                });
                let unit = blueprint
                    .type3
                    .iter()
                    .find(|n| n.name == price_attr)
                    .and_then(|n| n.keywords.iter().find(|k| k.len() > 3).copied())
                    .unwrap_or("dollars");
                let connective = ["less than", "under", "below"][rng.random_range(0..3)];
                numeric_phrase = Some(format!("{connective} {} {unit}", format_number(bound)));
            }
        } else if rng.random::<f64>() < 0.15 {
            superlatives.push(Superlative::min(price_attr));
            phrases.insert(0, "cheapest".to_string());
        }
    }

    // Guarantee at least one criterion.
    if sketches.is_empty() && superlatives.is_empty() {
        if let Some(value) = anchor.get_text(blueprint.primary_pool().attribute) {
            sketches.push(ConditionSketch::Categorical {
                attribute: blueprint.primary_pool().attribute.to_string(),
                value: value.to_string(),
                is_type1: true,
                negated: false,
            });
            phrases.push(value.to_string());
        }
    }

    // --- Apply the kind-specific phenomenon ---------------------------------------
    let mut segments = vec![sketches];
    match kind {
        QuestionKind::Plain => {}
        QuestionKind::Misspelled => {
            if let Some(p) = phrases.iter_mut().find(|p| p.len() > 4) {
                *p = misspell(p, rng);
            }
        }
        QuestionKind::RunTogether => {
            if phrases.len() >= 2 {
                let merged = format!("{}{}", phrases[0], phrases[1]);
                phrases[0] = merged;
                phrases.remove(1);
            }
        }
        QuestionKind::Shorthand => {
            if let Some(p) = phrases.iter_mut().find(|p| p.contains(' ')) {
                *p = shorthandize(p);
            }
        }
        QuestionKind::Incomplete => {
            // Drop the attribute/unit words from the numeric phrase, keeping the number.
            if let Some(np) = &numeric_phrase {
                if let Some(number) = np.split_whitespace().find(|w| {
                    w.chars()
                        .next()
                        .map(|c| c.is_ascii_digit())
                        .unwrap_or(false)
                }) {
                    numeric_phrase = Some(number.to_string());
                }
            }
        }
        QuestionKind::ImplicitBoolean => {
            // Either negate a value the anchor does not have, or add a mutually
            // exclusive alternative for one of its Type II values.
            if rng.random::<f64>() < 0.5 {
                if let Some(pool) = blueprint.type2.first() {
                    if let Some(current) = anchor.get_text(pool.attribute) {
                        if let Some((other, _)) = pool
                            .values
                            .iter()
                            .find(|(v, _)| !v.eq_ignore_ascii_case(current))
                        {
                            segments[0].push(ConditionSketch::Categorical {
                                attribute: pool.attribute.to_string(),
                                value: other.to_string(),
                                is_type1: false,
                                negated: true,
                            });
                            phrases.push(format!("not {other}"));
                        }
                    }
                }
            } else if let Some(pool) = blueprint.type2.first() {
                if let Some(current) = anchor.get_text(pool.attribute) {
                    if let Some((other, _)) = pool
                        .values
                        .iter()
                        .find(|(v, _)| !v.eq_ignore_ascii_case(current))
                    {
                        // mutually exclusive pair, written side by side
                        segments[0].push(ConditionSketch::Categorical {
                            attribute: pool.attribute.to_string(),
                            value: current.to_string(),
                            is_type1: false,
                            negated: false,
                        });
                        segments[0].push(ConditionSketch::Categorical {
                            attribute: pool.attribute.to_string(),
                            value: other.to_string(),
                            is_type1: false,
                            negated: false,
                        });
                        phrases.push(format!("{current} {other}"));
                    }
                }
            }
        }
        QuestionKind::ExplicitBoolean => {
            // Add an OR alternative on the primary identifier.
            let pool = blueprint.primary_pool();
            if let Some(current) = anchor.get_text(pool.attribute) {
                if let Some((other, _)) = pool
                    .values
                    .iter()
                    .find(|(v, _)| !v.eq_ignore_ascii_case(current))
                {
                    segments.push(vec![ConditionSketch::Categorical {
                        attribute: pool.attribute.to_string(),
                        value: other.to_string(),
                        is_type1: true,
                        negated: false,
                    }]);
                    phrases.push(format!("or {other}"));
                }
            }
        }
    }
    if let Some(np) = numeric_phrase {
        phrases.push(np);
    }

    // --- Render the text -----------------------------------------------------------
    let opener = [
        "looking for",
        "i want",
        "do you have",
        "find me",
        "any",
        "show me",
    ][rng.random_range(0..6)];
    let mut text = format!("{opener} {}", phrases.join(" "));
    // Sprinkle a flavour word for classification realism.
    if !blueprint.flavour_words.is_empty() && rng.random::<f64>() < 0.6 {
        let flavour = blueprint.flavour_words[rng.random_range(0..blueprint.flavour_words.len())];
        text.push(' ');
        text.push_str(flavour);
    }

    let gold = Interpretation {
        domain: blueprint.name.to_string(),
        segments,
        superlatives,
    };
    GeneratedQuestion {
        text,
        domain: blueprint.name.to_string(),
        kind,
        gold,
    }
}

fn round_bound(value: f64) -> f64 {
    if value > 10_000.0 {
        (value / 1000.0).round() * 1000.0
    } else if value > 100.0 {
        (value / 100.0).round() * 100.0
    } else {
        value.round().max(1.0)
    }
}

fn format_number(value: f64) -> String {
    format!("{}", value as i64)
}

/// Perturb a word the way a hurried user would: duplicate, drop or swap one letter.
fn misspell(word: &str, rng: &mut StdRng) -> String {
    let chars: Vec<char> = word.chars().collect();
    // only touch alphabetic positions so numbers in multi-word values survive
    let positions: Vec<usize> = chars
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_alphabetic())
        .map(|(i, _)| i)
        .collect();
    if positions.len() < 3 {
        return word.to_string();
    }
    let pos = positions[rng.random_range(1..positions.len())];
    let mut out: Vec<char> = chars.clone();
    match rng.random_range(0..3) {
        0 => {
            out.insert(pos, chars[pos]); // duplicate a letter
        }
        1 => {
            out.remove(pos); // drop a letter
        }
        _ => {
            if pos + 1 < out.len() && out[pos + 1].is_alphabetic() {
                out.swap(pos, pos + 1); // transpose
            } else {
                out.insert(pos, chars[pos]);
            }
        }
    }
    out.into_iter().collect()
}

/// Turn a multi-word value into a compact shorthand: first word kept, later words
/// reduced to their leading consonant cluster ("4 door" → "4dr", "all wheel drive" →
/// "awd"-style initials when there are three or more words).
fn shorthandize(value: &str) -> String {
    let words: Vec<&str> = value.split_whitespace().collect();
    match words.len() {
        0 | 1 => value.to_string(),
        2 => {
            let head = words[0];
            let tail: String = words[1]
                .chars()
                .filter(|c| !"aeiou".contains(*c))
                .take(2)
                .collect();
            format!("{head}{tail}")
        }
        _ => words
            .iter()
            .map(|w| w.chars().next().unwrap_or(' '))
            .collect::<String>(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ads::generate_table;
    use crate::domains::{all_blueprints, blueprint};

    #[test]
    fn questions_are_generated_for_every_domain() {
        for bp in all_blueprints() {
            let table = generate_table(&bp, 80, 1);
            let questions = generate_questions(&bp, &table, 40, 2, &QuestionMix::default());
            assert_eq!(questions.len(), 40, "{}", bp.name);
            for q in &questions {
                assert_eq!(q.domain, bp.name);
                assert!(!q.text.is_empty());
                assert!(!q.gold.is_empty(), "empty gold intent for {:?}", q.text);
            }
        }
    }

    #[test]
    fn the_mix_produces_all_kinds_eventually() {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 100, 3);
        let questions = generate_questions(&bp, &table, 600, 4, &QuestionMix::default());
        use std::collections::HashSet;
        let kinds: HashSet<_> = questions.iter().map(|q| q.kind).collect();
        assert!(kinds.contains(&QuestionKind::Plain));
        assert!(kinds.contains(&QuestionKind::ImplicitBoolean));
        assert!(kinds.contains(&QuestionKind::ExplicitBoolean));
        assert!(kinds.contains(&QuestionKind::Misspelled));
        // Boolean share is roughly one fifth, as in the paper's surveys.
        let boolean = questions
            .iter()
            .filter(|q| {
                matches!(
                    q.kind,
                    QuestionKind::ImplicitBoolean | QuestionKind::ExplicitBoolean
                )
            })
            .count() as f64;
        let share = boolean / questions.len() as f64;
        assert!(share > 0.10 && share < 0.35, "boolean share {share}");
    }

    #[test]
    fn plain_only_mix_yields_only_plain_questions() {
        let bp = blueprint("furniture");
        let table = generate_table(&bp, 60, 5);
        let questions = generate_questions(&bp, &table, 50, 6, &QuestionMix::plain_only());
        assert!(questions.iter().all(|q| q.kind == QuestionKind::Plain));
    }

    #[test]
    fn gold_queries_are_executable_and_plain_questions_have_answers() {
        let bp = blueprint("cars");
        let spec = bp.to_spec();
        let table = generate_table(&bp, 150, 7);
        let questions = generate_questions(&bp, &table, 60, 8, &QuestionMix::plain_only());
        let mut with_answers = 0;
        for q in &questions {
            let query = q.gold.to_query(&spec).expect("gold intents are consistent");
            let answers = addb::Executor::new(&table).execute(&query).unwrap();
            if !answers.is_empty() {
                with_answers += 1;
            }
        }
        // Plain questions are anchored on real records, so most have exact answers.
        assert!(
            with_answers * 10 >= questions.len() * 7,
            "{with_answers}/60"
        );
    }

    #[test]
    fn explicit_boolean_questions_have_two_segments_and_or_in_text() {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 100, 9);
        let mix = QuestionMix {
            plain: 0.0,
            misspelled: 0.0,
            run_together: 0.0,
            shorthand: 0.0,
            incomplete: 0.0,
            implicit_boolean: 0.0,
            explicit_boolean: 1.0,
        };
        let questions = generate_questions(&bp, &table, 20, 10, &mix);
        for q in &questions {
            assert_eq!(q.kind, QuestionKind::ExplicitBoolean);
            assert!(q.gold.segments.len() >= 2);
            assert!(q.text.contains(" or "), "{}", q.text);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let bp = blueprint("cs_jobs");
        let table = generate_table(&bp, 80, 11);
        let a = generate_questions(&bp, &table, 30, 12, &QuestionMix::default());
        let b = generate_questions(&bp, &table, 30, 12, &QuestionMix::default());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.text, y.text);
            assert_eq!(x.kind, y.kind);
        }
    }

    #[test]
    fn misspell_and_shorthandize_behave() {
        let mut rng = StdRng::seed_from_u64(13);
        let word = "accord";
        let bad = misspell(word, &mut rng);
        assert_ne!(bad, word);
        assert!(cqads_text::levenshtein(word, &bad) <= 2);
        assert_eq!(shorthandize("4 door"), "4dr");
        assert_eq!(shorthandize("all wheel drive"), "awd");
        assert_eq!(shorthandize("blue"), "blue");
    }
}
