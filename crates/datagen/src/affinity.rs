//! Derive the latent-relatedness models from a blueprint's clusters.
//!
//! * [`affinity_model`] — the ground truth behind the synthetic query log: Type I
//!   values of the same cluster have high affinity (e.g. compact sedans), values of
//!   different clusters low affinity, and paired values ("honda"/"accord") are strongly
//!   related. The TI-matrix is then *estimated* from the generated log, never from this
//!   model directly.
//! * [`topic_groups`] — the topic groups fed to the synthetic corpus generator so that
//!   the WS-matrix learns that values of the same Type II cluster ("blue"/"silver",
//!   "diamond"/"moissanite") co-occur.

use crate::domains::DomainBlueprint;
use cqads_querylog::AffinityModel;
use cqads_wordsim::TopicGroup;

/// Affinity of two Type I values in the same cluster.
const SAME_CLUSTER_AFFINITY: f64 = 0.85;
/// Affinity of two Type I values in different clusters of the same attribute.
const CROSS_CLUSTER_AFFINITY: f64 = 0.1;
/// Affinity of a paired make/model (or brand/instrument) combination.
const PAIRED_AFFINITY: f64 = 0.95;

/// Build the ground-truth affinity model over every Type I value of the blueprint.
pub fn affinity_model(blueprint: &DomainBlueprint) -> AffinityModel {
    let mut values: Vec<&str> = Vec::new();
    for pool in &blueprint.type1 {
        values.extend(pool.value_names());
    }
    let mut model = AffinityModel::new(&values);
    // Within each pool: same cluster → high, different cluster → low.
    for pool in &blueprint.type1 {
        let vals = &pool.values;
        for i in 0..vals.len() {
            for j in (i + 1)..vals.len() {
                let (a, ca) = vals[i];
                let (b, cb) = vals[j];
                let affinity = if ca == cb {
                    SAME_CLUSTER_AFFINITY
                } else {
                    CROSS_CLUSTER_AFFINITY
                };
                model.set_affinity(a, b, affinity);
            }
        }
    }
    // Across pools: paired values are near-synonyms in search behaviour.
    for (a, b) in &blueprint.type1_pairs {
        model.set_affinity(a, b, PAIRED_AFFINITY);
    }
    model
}

/// Topic groups (per Type II cluster) for the synthetic corpus behind the WS-matrix.
pub fn topic_groups(blueprint: &DomainBlueprint) -> Vec<TopicGroup> {
    let mut groups = Vec::new();
    for pool in &blueprint.type2 {
        // One group per cluster id within the pool.
        let mut clusters: Vec<u8> = pool.values.iter().map(|(_, c)| *c).collect();
        clusters.sort_unstable();
        clusters.dedup();
        for cluster in clusters {
            let words: Vec<&str> = pool
                .values
                .iter()
                .filter(|(_, c)| *c == cluster)
                .flat_map(|(v, _)| v.split_whitespace())
                .collect();
            if words.len() < 2 {
                continue;
            }
            groups.push(TopicGroup::new(
                &format!("{}::{}::{}", blueprint.name, pool.attribute, cluster),
                &words,
            ));
        }
    }
    groups
}

/// Convenience used by experiments: ground-truth relatedness of two categorical values
/// anywhere in the blueprint (1.0 identical, high when in the same cluster of the same
/// pool, 0 otherwise).
pub fn ground_truth_similarity(blueprint: &DomainBlueprint, a: &str, b: &str) -> f64 {
    if a.eq_ignore_ascii_case(b) {
        return 1.0;
    }
    for pool in blueprint.all_pools() {
        if let (Some(ca), Some(cb)) = (pool.cluster_of(a), pool.cluster_of(b)) {
            return if ca == cb {
                SAME_CLUSTER_AFFINITY
            } else {
                CROSS_CLUSTER_AFFINITY
            };
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::blueprint;

    #[test]
    fn affinity_reflects_clusters_and_pairs() {
        let bp = blueprint("cars");
        let model = affinity_model(&bp);
        assert!(model.affinity("accord", "camry") > model.affinity("accord", "mustang"));
        assert!(model.affinity("honda", "accord") >= 0.9); // paired
        assert_eq!(model.affinity("accord", "accord"), 1.0);
        assert_eq!(model.affinity("accord", "not-a-model"), 0.0);
    }

    #[test]
    fn topic_groups_cover_type2_clusters() {
        let bp = blueprint("cars");
        let groups = topic_groups(&bp);
        assert!(!groups.is_empty());
        // the cool-colour cluster exists as a group containing blue and silver
        assert!(groups.iter().any(|g| {
            g.words.contains(&"blue".to_string()) && g.words.contains(&"silver".to_string())
        }));
        // single-word clusters are skipped
        for g in &groups {
            assert!(g.words.len() >= 2);
        }
    }

    #[test]
    fn ground_truth_similarity_is_cluster_based() {
        let bp = blueprint("jewellery");
        assert_eq!(ground_truth_similarity(&bp, "diamond", "diamond"), 1.0);
        assert!(ground_truth_similarity(&bp, "diamond", "moissanite") > 0.5);
        assert!(ground_truth_similarity(&bp, "diamond", "pearl") < 0.5);
        assert_eq!(ground_truth_similarity(&bp, "diamond", "oak"), 0.0);
    }

    #[test]
    fn every_domain_produces_an_affinity_model() {
        for bp in crate::domains::all_blueprints() {
            let model = affinity_model(&bp);
            assert!(!model.values.is_empty(), "{}", bp.name);
        }
    }
}
