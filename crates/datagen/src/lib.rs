//! # cqads-datagen — synthetic workloads for the CQAds reproduction
//!
//! The paper's evaluation rests on artifacts we cannot ship: ads scraped from
//! commercial websites, Facebook survey questions, commercial query logs and human
//! appraiser judgments. This crate replaces each of them with a seeded synthetic
//! equivalent that preserves the statistical properties the experiments rely on:
//!
//! * [`domains`] — blueprints for the eight ads domains of Section 5.1 (Cars,
//!   Motorcycles, Clothing, CS Jobs, Furniture, Food Coupons, Musical Instruments,
//!   Jewellery): attribute schemas, realistic value vocabularies with *relatedness
//!   clusters*, numeric ranges and unit keywords. Cars and Motorcycles intentionally
//!   share makes and numeric vocabulary, which is what drives their lower
//!   classification accuracy in Figure 2.
//! * [`ads`] — advertisement (record) generation per blueprint.
//! * [`affinity`] — derives the query-log [`AffinityModel`](cqads_querylog::AffinityModel)
//!   and the word-similarity topic groups from a blueprint's clusters, so `TI_Sim` and
//!   `Feat_Sim` have ground truth to recover.
//! * [`questions`] — natural-language question generation with gold intents: plain,
//!   misspelled, run-together, shorthand, incomplete, implicit-Boolean and
//!   explicit-Boolean questions, mixed with the proportions reported in the paper
//!   (about one fifth Boolean, ~5 % explicit Boolean).
//! * [`survey`] — simulated survey respondents/appraisers used for the relevance
//!   judgments of Figure 5, the Boolean-interpretation votes of Figure 4 and the survey
//!   statistics of Section 5.1.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod ads;
pub mod affinity;
pub mod domains;
pub mod questions;
pub mod survey;

pub use ads::generate_table;
pub use affinity::{affinity_model, topic_groups};
pub use domains::{all_blueprints, blueprint, DomainBlueprint, NumericAttr, ValuePool};
pub use questions::{generate_questions, GeneratedQuestion, QuestionKind, QuestionMix};
pub use survey::{Appraiser, BooleanSurvey, SurveyStats};
