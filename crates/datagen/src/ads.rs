//! Advertisement (record) generation.
//!
//! The paper loads roughly 500 ads per domain extracted from commercial websites; this
//! module generates the equivalent synthetic tables from a [`DomainBlueprint`]. Type I
//! values respect the blueprint's pairings ("accord" ads are Hondas), Type II values are
//! drawn per attribute with a bias towards listing only some of the optional properties
//! (real ads rarely fill in everything), and Type III values are drawn log-uniformly
//! inside the valid range so that cheap items are more common than expensive ones, as on
//! real ads sites.

use crate::domains::DomainBlueprint;
use addb::{Record, Table};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Probability that an optional Type II attribute is present in a generated ad.
const TYPE2_PRESENCE: f64 = 0.8;

/// Generate a populated table of `count` ads for the blueprint.
pub fn generate_table(blueprint: &DomainBlueprint, count: usize, seed: u64) -> Table {
    let spec = blueprint.to_spec();
    let mut table = Table::new(spec.schema.clone());
    let mut rng = StdRng::seed_from_u64(seed ^ hash_name(blueprint.name));
    for _ in 0..count {
        let record = generate_record(blueprint, &mut rng);
        table
            .insert(record)
            .expect("generated records fit the schema");
    }
    table
}

/// Generate a single ad record.
pub fn generate_record(blueprint: &DomainBlueprint, rng: &mut StdRng) -> Record {
    let mut builder = Record::builder();

    // Type I values: honour the pairings when present.
    if !blueprint.type1_pairs.is_empty() {
        let (first, second) =
            blueprint.type1_pairs[rng.random_range(0..blueprint.type1_pairs.len())];
        builder = builder
            .text(blueprint.type1[0].attribute, first)
            .text(blueprint.type1[1].attribute, second);
        // Any additional Type I pools beyond the first two are sampled independently.
        for pool in blueprint.type1.iter().skip(2) {
            let (value, _) = pool.values[rng.random_range(0..pool.values.len())];
            builder = builder.text(pool.attribute, value);
        }
    } else {
        for pool in &blueprint.type1 {
            let (value, _) = pool.values[rng.random_range(0..pool.values.len())];
            builder = builder.text(pool.attribute, value);
        }
    }

    // Type II values: present with probability TYPE2_PRESENCE each.
    for pool in &blueprint.type2 {
        if rng.random::<f64>() < TYPE2_PRESENCE {
            let (value, _) = pool.values[rng.random_range(0..pool.values.len())];
            builder = builder.text(pool.attribute, value);
        }
    }

    // Type III values: log-uniform inside the valid range, rounded to a "price-like"
    // granularity.
    for num in &blueprint.type3 {
        let low = num.low.max(1e-6);
        let value = if num.high / low > 20.0 {
            let log = rng.random_range(low.ln()..num.high.ln());
            log.exp()
        } else {
            rng.random_range(num.low..num.high)
        };
        let rounded = if num.high > 1000.0 {
            (value / 50.0).round() * 50.0
        } else if num.high > 50.0 {
            value.round()
        } else {
            (value * 10.0).round() / 10.0
        };
        builder = builder.number(num.name, rounded.clamp(num.low, num.high));
    }
    builder.build()
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf29ce484222325u64, |acc, b| {
        (acc ^ u64::from(b)).wrapping_mul(0x100000001b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::domains::{all_blueprints, blueprint};

    #[test]
    fn every_domain_generates_valid_tables() {
        for bp in all_blueprints() {
            let table = generate_table(&bp, 120, 42);
            assert_eq!(table.len(), 120, "{}", bp.name);
            // every record carries all Type I attributes and all Type III attributes
            for (_, record) in table.iter() {
                for pool in &bp.type1 {
                    assert!(record.get_text(pool.attribute).is_some());
                }
                for num in &bp.type3 {
                    let v = record.get_number(num.name).unwrap();
                    assert!(v >= num.low && v <= num.high);
                }
            }
        }
    }

    #[test]
    fn type1_pairings_are_respected() {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 200, 7);
        for (_, record) in table.iter() {
            let make = record.get_text("make").unwrap();
            let model = record.get_text("model").unwrap();
            assert!(
                bp.type1_pairs
                    .iter()
                    .any(|(a, b)| *a == make && *b == model),
                "unpaired make/model: {make} {model}"
            );
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed_and_domain() {
        let bp = blueprint("jewellery");
        let a = generate_table(&bp, 50, 99);
        let b = generate_table(&bp, 50, 99);
        for (ida, idb) in a.iter().zip(b.iter()) {
            assert_eq!(ida.1, idb.1);
        }
        let c = generate_table(&bp, 50, 100);
        let all_equal = a.iter().zip(c.iter()).all(|(x, y)| x.1 == y.1);
        assert!(!all_equal);
    }

    #[test]
    fn some_type2_attributes_are_missing_sometimes() {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 300, 11);
        let with_features = table
            .iter()
            .filter(|(_, r)| r.get_text("features").is_some())
            .count();
        assert!(with_features > 150 && with_features < 300);
    }
}
