//! Simulated survey respondents and appraisers.
//!
//! Three human-judgment sources in the paper are replaced by seeded simulations:
//!
//! * **Relevance appraisers** (Figure 5): Facebook users judged whether each of the
//!   top-5 answers of every ranker is related to the question. [`Appraiser`] judges a
//!   record related when its *ground-truth* similarity to the gold intent — computed
//!   from the blueprint clusters and numeric proximity, independently of any ranker —
//!   exceeds a threshold, with a small amount of judgment noise.
//! * **Boolean-interpretation survey** (Figures 3/4): ten sampled Boolean questions,
//!   each with the majority-favoured interpretation and its ambiguity (the share of
//!   respondents that favour a different reading, as the paper reports for Q3, Q8 and
//!   Q10). [`BooleanSurvey::vote_share`] returns the fraction of simulated respondents
//!   that would pick a given interpretation.
//! * **Survey statistics** (Section 5.1): shares of users who would drop a feature,
//!   who want similar-feature suggestions, and the ideal number of displayed answers.

use crate::affinity::ground_truth_similarity;
use crate::domains::DomainBlueprint;
use addb::Record;
use cqads::translate::{ConditionSketch, Interpretation};
use cqads::BoundaryOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A simulated relevance appraiser.
#[derive(Debug, Clone)]
pub struct Appraiser {
    seed: u64,
    /// Minimum ground-truth similarity for a partially-matched record to be judged
    /// related.
    pub relevance_threshold: f64,
    /// Probability that an appraiser flips their judgment (human noise).
    pub noise: f64,
}

impl Appraiser {
    /// Appraiser with the default threshold (0.5) and 5 % judgment noise.
    pub fn new(seed: u64) -> Self {
        Appraiser {
            seed,
            relevance_threshold: 0.5,
            noise: 0.05,
        }
    }

    /// Ground-truth relatedness of a record to a gold intent, in `[0, 1]`: the *weakest*
    /// per-condition relatedness (1 for satisfied conditions, cluster/numeric proximity
    /// for violated ones). Using the minimum reflects how the paper's appraisers judged
    /// answers: an ad is related only when every requested aspect is either met or
    /// substituted by something close ("Honda Accord" for "Toyota Camry"), and one
    /// badly-violated criterion makes the whole answer irrelevant no matter how many
    /// others match — exactly the nuance binary-satisfaction rankers miss.
    pub fn ground_truth_score(
        &self,
        blueprint: &DomainBlueprint,
        gold: &Interpretation,
        record: &Record,
    ) -> f64 {
        let sketches = gold.all_sketches();
        if sketches.is_empty() {
            return 0.0;
        }
        let mut weakest = 1.0_f64;
        for sketch in &sketches {
            let contribution = match sketch {
                ConditionSketch::Categorical {
                    attribute,
                    value,
                    negated,
                    ..
                } => {
                    let holds = record
                        .get_text(attribute)
                        .map(|v| v == value)
                        .unwrap_or(false);
                    if *negated {
                        if holds {
                            0.0
                        } else {
                            1.0
                        }
                    } else if holds {
                        1.0
                    } else {
                        record
                            .get_text(attribute)
                            .map(|v| ground_truth_similarity(blueprint, value, v))
                            .unwrap_or(0.0)
                    }
                }
                ConditionSketch::Numeric {
                    attribute,
                    op,
                    value,
                    value2,
                    ..
                } => {
                    let attr = attribute.clone().unwrap_or_else(|| {
                        blueprint
                            .price_attribute
                            .unwrap_or(blueprint.type3[0].name)
                            .to_string()
                    });
                    match record.get_number(&attr) {
                        Some(actual) => {
                            let satisfied = match op {
                                BoundaryOp::Lt => actual < *value,
                                BoundaryOp::Le => actual <= *value,
                                BoundaryOp::Gt => actual > *value,
                                BoundaryOp::Ge => actual >= *value,
                                BoundaryOp::Eq => (actual - *value).abs() < 1e-9,
                                BoundaryOp::Between => {
                                    let hi = value2.unwrap_or(*value);
                                    actual >= value.min(hi) && actual <= value.max(hi)
                                }
                            };
                            if satisfied {
                                1.0
                            } else {
                                let range = blueprint
                                    .type3
                                    .iter()
                                    .find(|n| n.name == attr)
                                    .map(|n| n.high - n.low)
                                    .unwrap_or(1.0);
                                (1.0 - (actual - *value).abs() / range).clamp(0.0, 1.0)
                            }
                        }
                        None => 0.0,
                    }
                }
            };
            weakest = weakest.min(contribution);
        }
        weakest
    }

    /// Would this appraiser judge the record related to the gold intent? Deterministic
    /// per (appraiser seed, question id, record) so repeated evaluations agree.
    pub fn judge(
        &self,
        blueprint: &DomainBlueprint,
        question_id: u64,
        gold: &Interpretation,
        record: &Record,
    ) -> bool {
        let score = self.ground_truth_score(blueprint, gold, record);
        let related = score >= self.relevance_threshold;
        // Deterministic noise: hash the identifying tuple into a coin flip.
        let mut rng = StdRng::seed_from_u64(
            self.seed
                ^ question_id
                    .wrapping_mul(0x9E3779B9)
                    .wrapping_add(hash_record(record)),
        );
        if rng.random::<f64>() < self.noise {
            !related
        } else {
            related
        }
    }
}

fn hash_record(record: &Record) -> u64 {
    let mut acc = 0xcbf29ce484222325u64;
    for (k, v) in record.fields() {
        for b in k.bytes().chain(v.to_string().bytes()) {
            acc = (acc ^ u64::from(b)).wrapping_mul(0x100000001b3);
        }
    }
    acc
}

/// One sampled Boolean-survey question (Figure 3/4).
#[derive(Debug, Clone)]
pub struct BooleanSurveyQuestion {
    /// Identifier used in the figure ("Q1" ... "Q10").
    pub id: &'static str,
    /// The question text.
    pub text: String,
    /// True if the question is implicit Boolean (no AND/OR written).
    pub implicit: bool,
    /// The majority-favoured reading as a gold interpretation. A system interpretation
    /// "matches the majority" when it retrieves the same answer set as this one on a
    /// reference cars table.
    pub majority: Interpretation,
    /// Share of respondents that favour a *different* reading (the paper reports 22 %
    /// for Q3/Q8 and 29 % for Q10).
    pub dissent: f64,
}

/// The ten-question Boolean survey with simulated respondents.
#[derive(Debug, Clone)]
pub struct BooleanSurvey {
    /// The sampled questions.
    pub questions: Vec<BooleanSurveyQuestion>,
    /// Number of simulated respondents (the paper collected 90 responses).
    pub respondents: usize,
    seed: u64,
}

/// Shorthand constructors for gold interpretations of the car domain.
fn cat(attribute: &str, value: &str, is_type1: bool, negated: bool) -> ConditionSketch {
    ConditionSketch::Categorical {
        attribute: attribute.to_string(),
        value: value.to_string(),
        is_type1,
        negated,
    }
}

fn num(attribute: &str, op: BoundaryOp, value: f64, value2: Option<f64>) -> ConditionSketch {
    ConditionSketch::Numeric {
        attribute: Some(attribute.to_string()),
        op,
        value,
        value2,
        negated: false,
    }
}

fn interp(segments: Vec<Vec<ConditionSketch>>) -> Interpretation {
    Interpretation {
        domain: "cars".to_string(),
        segments,
        superlatives: vec![],
    }
}

impl BooleanSurvey {
    /// The ten sampled car-domain Boolean questions: three implicit (Q2–Q4), seven
    /// explicit, mirroring the composition described in Section 5.4. Question texts use
    /// the cars-domain vocabulary of the synthetic blueprint so that interpretations can
    /// be compared by the answer sets they retrieve.
    pub fn sample(seed: u64) -> Self {
        let q =
            |id, text: &str, implicit, majority: Interpretation, dissent| BooleanSurveyQuestion {
                id,
                text: text.to_string(),
                implicit,
                majority,
                dissent,
            };
        BooleanSurvey {
            questions: vec![
                q(
                    "Q1",
                    "Toyota Corolla or a silver Honda Accord",
                    false,
                    interp(vec![
                        vec![cat("make", "toyota", true, false), cat("model", "corolla", true, false)],
                        vec![
                            cat("color", "silver", false, false),
                            cat("make", "honda", true, false),
                            cat("model", "accord", true, false),
                        ],
                    ]),
                    0.04,
                ),
                q(
                    "Q2",
                    "Any car priced below $7000 and not less than $2000",
                    true,
                    interp(vec![vec![num("price", BoundaryOp::Between, 2000.0, Some(7000.0))]]),
                    0.05,
                ),
                q(
                    "Q3",
                    "Show me Black Silver cars",
                    true,
                    interp(vec![vec![
                        cat("color", "black", false, false),
                        cat("color", "silver", false, false),
                    ]]),
                    0.22,
                ),
                q(
                    "Q4",
                    "Any car except a blue one",
                    true,
                    interp(vec![vec![cat("color", "blue", false, true)]]),
                    0.03,
                ),
                q(
                    "Q5",
                    "red mustang or a red camaro",
                    false,
                    interp(vec![
                        vec![cat("color", "red", false, false), cat("model", "mustang", true, false)],
                        vec![cat("color", "red", false, false), cat("model", "camaro", true, false)],
                    ]),
                    0.04,
                ),
                q(
                    "Q6",
                    "automatic honda civic or automatic toyota corolla under 8000 dollars",
                    false,
                    interp(vec![
                        vec![
                            cat("transmission", "automatic", false, false),
                            cat("make", "honda", true, false),
                            cat("model", "civic", true, false),
                        ],
                        vec![
                            cat("transmission", "automatic", false, false),
                            cat("make", "toyota", true, false),
                            cat("model", "corolla", true, false),
                            num("price", BoundaryOp::Lt, 8000.0, None),
                        ],
                    ]),
                    0.06,
                ),
                q(
                    "Q7",
                    "a 4 door not manual honda or a 2 door automatic toyota",
                    false,
                    interp(vec![
                        vec![
                            cat("doors", "4 door", false, false),
                            cat("transmission", "manual", false, true),
                            cat("make", "honda", true, false),
                        ],
                        vec![
                            cat("doors", "2 door", false, false),
                            cat("transmission", "automatic", false, false),
                            cat("make", "toyota", true, false),
                        ],
                    ]),
                    0.05,
                ),
                q(
                    "Q8",
                    "black grey focus or black grey corolla",
                    false,
                    interp(vec![vec![
                        cat("model", "focus", true, false),
                        cat("model", "corolla", true, false),
                        cat("color", "black", false, false),
                        cat("color", "grey", false, false),
                    ]]),
                    0.22,
                ),
                q(
                    "Q9",
                    "bmw or audi with leather seats less than 30000 dollars",
                    false,
                    interp(vec![
                        vec![cat("make", "bmw", true, false)],
                        vec![
                            cat("make", "audi", true, false),
                            cat("features", "leather seats", false, false),
                            num("price", BoundaryOp::Lt, 30_000.0, None),
                        ],
                    ]),
                    0.06,
                ),
                q(
                    "Q10",
                    "Black Mustang with sunroof, exclude 2 wheel drive, or a yellow camaro without a sunroof",
                    false,
                    interp(vec![
                        vec![
                            cat("color", "black", false, false),
                            cat("model", "mustang", true, false),
                            cat("features", "sunroof", false, false),
                            cat("drivetrain", "2 wheel drive", false, true),
                        ],
                        vec![
                            cat("color", "yellow", false, false),
                            cat("model", "camaro", true, false),
                            cat("features", "sunroof", false, true),
                        ],
                    ]),
                    0.29,
                ),
            ],
            respondents: 90,
            seed,
        }
    }

    /// Fraction of simulated respondents who pick `interpretation` for question `index`.
    /// Respondents favour the majority interpretation unless they belong to the
    /// dissenting share; a respondent presented with a non-majority interpretation picks
    /// it only if they are a dissenter sympathetic to that reading.
    pub fn vote_share(&self, index: usize, interpretation_matches_majority: bool) -> f64 {
        let question = &self.questions[index];
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (index as u64 + 1).wrapping_mul(0xA24BAED4));
        let mut votes = 0usize;
        for _ in 0..self.respondents {
            let dissents = rng.random::<f64>() < question.dissent;
            let picks = if interpretation_matches_majority {
                !dissents
            } else {
                dissents
            };
            if picks {
                votes += 1;
            }
        }
        votes as f64 / self.respondents as f64
    }
}

/// Survey statistics reported in Section 5.1, produced by simulated respondents.
#[derive(Debug, Clone, Copy)]
pub struct SurveyStats {
    /// Share of users who would remove/modify a feature when no exact match exists
    /// (the paper reports 91 %).
    pub would_drop_feature: f64,
    /// Share of users who want to see cars with similar features (93 % in the paper).
    pub wants_similar_features: f64,
    /// Average ideal number of displayed answers (≈ 26 in the paper).
    pub ideal_answer_count: f64,
}

impl SurveyStats {
    /// Simulate `respondents` answers to the car-ads survey.
    pub fn simulate(respondents: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut drop = 0usize;
        let mut similar = 0usize;
        let mut answer_counts = 0.0;
        for _ in 0..respondents {
            if rng.random::<f64>() < 0.91 {
                drop += 1;
            }
            if rng.random::<f64>() < 0.93 {
                similar += 1;
            }
            // Users ask for 10–50 answers, centred around the high twenties.
            answer_counts += 10.0 + rng.random::<f64>() * 40.0 * 0.85;
        }
        SurveyStats {
            would_drop_feature: drop as f64 / respondents as f64,
            wants_similar_features: similar as f64 / respondents as f64,
            ideal_answer_count: answer_counts / respondents as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ads::generate_table;
    use crate::domains::blueprint;
    use crate::questions::{generate_questions, QuestionMix};

    #[test]
    fn ground_truth_scores_reward_satisfaction_and_closeness() {
        let bp = blueprint("cars");
        let appraiser = Appraiser::new(1);
        let gold = Interpretation {
            domain: "cars".into(),
            segments: vec![vec![
                ConditionSketch::Categorical {
                    attribute: "model".into(),
                    value: "accord".into(),
                    is_type1: true,
                    negated: false,
                },
                ConditionSketch::Numeric {
                    attribute: Some("price".into()),
                    op: BoundaryOp::Lt,
                    value: 10_000.0,
                    value2: None,
                    negated: false,
                },
            ]],
            superlatives: vec![],
        };
        let exact = Record::builder()
            .text("model", "accord")
            .number("price", 8_000.0)
            .build();
        let close = Record::builder()
            .text("model", "camry")
            .number("price", 11_000.0)
            .build();
        let far = Record::builder()
            .text("model", "mustang")
            .number("price", 60_000.0)
            .build();
        let s_exact = appraiser.ground_truth_score(&bp, &gold, &exact);
        let s_close = appraiser.ground_truth_score(&bp, &gold, &close);
        let s_far = appraiser.ground_truth_score(&bp, &gold, &far);
        assert!(s_exact > s_close && s_close > s_far);
        assert!((s_exact - 1.0).abs() < 1e-9);
    }

    #[test]
    fn judgments_are_deterministic_per_seed() {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 50, 20);
        let questions = generate_questions(&bp, &table, 10, 21, &QuestionMix::default());
        let appraiser = Appraiser::new(7);
        for (qi, q) in questions.iter().enumerate() {
            for (_, record) in table.iter() {
                let a = appraiser.judge(&bp, qi as u64, &q.gold, record);
                let b = appraiser.judge(&bp, qi as u64, &q.gold, record);
                assert_eq!(a, b);
            }
        }
    }

    #[test]
    fn boolean_survey_matches_the_papers_shape() {
        let survey = BooleanSurvey::sample(3);
        assert_eq!(survey.questions.len(), 10);
        assert_eq!(survey.questions.iter().filter(|q| q.implicit).count(), 3);
        // Agreement with the majority interpretation is high but not perfect, and the
        // ambiguous questions (Q3, Q8, Q10) have the lowest agreement.
        let q3 = survey.vote_share(2, true);
        let q4 = survey.vote_share(3, true);
        let q10 = survey.vote_share(9, true);
        assert!(q4 > q3, "unambiguous Q4 should beat ambiguous Q3");
        assert!(q3 > 0.6 && q3 < 0.95);
        assert!(q10 < q4);
        // a wrong interpretation receives only the dissenting votes
        assert!(survey.vote_share(2, false) < 0.5);
    }

    #[test]
    fn survey_stats_land_near_the_reported_numbers() {
        let stats = SurveyStats::simulate(650, 17);
        assert!((stats.would_drop_feature - 0.91).abs() < 0.05);
        assert!((stats.wants_similar_features - 0.93).abs() < 0.05);
        assert!(stats.ideal_answer_count > 20.0 && stats.ideal_answer_count < 32.0);
    }
}
