//! Blueprints for the eight ads domains used in the paper's evaluation (Section 5.1).
//!
//! A [`DomainBlueprint`] carries everything the generators need: the attribute layout
//! (Type I identifiers, Type II properties, Type III quantities), realistic value
//! vocabularies, *relatedness clusters* (values in the same cluster are semantically
//! close — compact sedans, warm colours, string instruments), Type I value pairings
//! ("accord" goes with "honda") and the unit keywords users write for numeric
//! attributes. The clusters are the ground truth that the TI-matrix and the WS-matrix
//! are expected to recover from the synthetic query log / corpus.

use cqads::DomainSpec;

/// A pool of categorical values for one attribute, each with a relatedness cluster id.
#[derive(Debug, Clone)]
pub struct ValuePool {
    /// Attribute name.
    pub attribute: &'static str,
    /// `(value, cluster)` pairs; values in the same cluster are considered related.
    pub values: Vec<(&'static str, u8)>,
}

impl ValuePool {
    fn new(attribute: &'static str, values: &[(&'static str, u8)]) -> Self {
        ValuePool {
            attribute,
            values: values.to_vec(),
        }
    }

    /// All values of the pool, without cluster ids.
    pub fn value_names(&self) -> Vec<&'static str> {
        self.values.iter().map(|(v, _)| *v).collect()
    }

    /// Cluster id of a value, if it belongs to this pool.
    pub fn cluster_of(&self, value: &str) -> Option<u8> {
        self.values
            .iter()
            .find(|(v, _)| v.eq_ignore_ascii_case(value))
            .map(|(_, c)| *c)
    }
}

/// A numeric (Type III) attribute description.
#[derive(Debug, Clone)]
pub struct NumericAttr {
    /// Attribute name.
    pub name: &'static str,
    /// Lower end of the valid range.
    pub low: f64,
    /// Upper end of the valid range.
    pub high: f64,
    /// Unit keyword stored in the schema ("usd", "miles"), if any.
    pub unit: Option<&'static str>,
    /// Additional keywords users write to refer to the attribute.
    pub keywords: Vec<&'static str>,
}

impl NumericAttr {
    fn new(
        name: &'static str,
        low: f64,
        high: f64,
        unit: Option<&'static str>,
        keywords: &[&'static str],
    ) -> Self {
        NumericAttr {
            name,
            low,
            high,
            unit,
            keywords: keywords.to_vec(),
        }
    }
}

/// Everything needed to instantiate one ads domain.
#[derive(Debug, Clone)]
pub struct DomainBlueprint {
    /// Domain (table) name.
    pub name: &'static str,
    /// Type I attribute pools, in schema order. The first pool is the "primary" one
    /// (car make, job title); the second, if present, pairs with it.
    pub type1: Vec<ValuePool>,
    /// Valid `(first, second)` pairings between the first two Type I pools
    /// ("honda"/"accord"). Empty when the domain has a single Type I attribute.
    pub type1_pairs: Vec<(&'static str, &'static str)>,
    /// Type II attribute pools.
    pub type2: Vec<ValuePool>,
    /// Type III attributes.
    pub type3: Vec<NumericAttr>,
    /// Attribute targeted by "cheapest" superlatives.
    pub price_attribute: Option<&'static str>,
    /// Attribute targeted by "newest"/"oldest" superlatives.
    pub year_attribute: Option<&'static str>,
    /// Extra flavour words added to classification questions of this domain (they are
    /// non-essential for querying but help/ hurt the classifier the way real chatter
    /// does).
    pub flavour_words: Vec<&'static str>,
}

impl DomainBlueprint {
    /// Build the CQAds [`DomainSpec`] (schema + value registrations) for this blueprint.
    pub fn to_spec(&self) -> DomainSpec {
        let mut builder = addb::Schema::builder(self.name);
        for pool in &self.type1 {
            builder = builder.type1(pool.attribute);
        }
        for pool in &self.type2 {
            builder = builder.type2(pool.attribute);
        }
        for num in &self.type3 {
            builder = builder.type3(num.name, num.low, num.high, num.unit);
        }
        let schema = builder.build().expect("blueprint schemas are valid");
        let mut spec = DomainSpec::new(schema);
        for pool in &self.type1 {
            for (value, _) in &pool.values {
                spec.add_type1_value(pool.attribute, value);
            }
        }
        for pool in &self.type2 {
            for (value, _) in &pool.values {
                spec.add_type2_value(pool.attribute, value);
            }
        }
        for num in &self.type3 {
            for kw in &num.keywords {
                spec.add_type3_keyword(num.name, kw);
            }
            if let Some(unit) = num.unit {
                spec.add_type3_keyword(num.name, unit);
            }
        }
        if let Some(price) = self.price_attribute {
            spec.set_price_attribute(price);
        }
        if let Some(year) = self.year_attribute {
            spec.set_year_attribute(year);
        }
        spec
    }

    /// The Type I pool holding the primary identifier values (the first declared pool).
    pub fn primary_pool(&self) -> &ValuePool {
        &self.type1[0]
    }

    /// Every categorical pool (Type I and Type II).
    pub fn all_pools(&self) -> impl Iterator<Item = &ValuePool> {
        self.type1.iter().chain(self.type2.iter())
    }
}

/// The eight evaluation domains, in the order the paper lists them.
pub const DOMAIN_NAMES: [&str; 8] = [
    "cars",
    "motorcycles",
    "clothing",
    "cs_jobs",
    "furniture",
    "food_coupons",
    "musical_instruments",
    "jewellery",
];

/// Blueprint for one domain by name. Panics on unknown names (the set is fixed).
pub fn blueprint(name: &str) -> DomainBlueprint {
    match name {
        "cars" => cars(),
        "motorcycles" => motorcycles(),
        "clothing" => clothing(),
        "cs_jobs" => cs_jobs(),
        "furniture" => furniture(),
        "food_coupons" => food_coupons(),
        "musical_instruments" => musical_instruments(),
        "jewellery" => jewellery(),
        other => panic!("unknown ads domain `{other}`"),
    }
}

/// All eight blueprints.
pub fn all_blueprints() -> Vec<DomainBlueprint> {
    DOMAIN_NAMES.iter().map(|n| blueprint(n)).collect()
}

fn cars() -> DomainBlueprint {
    DomainBlueprint {
        name: "cars",
        type1: vec![
            ValuePool::new(
                "make",
                &[
                    ("honda", 0),
                    ("toyota", 0),
                    ("mazda", 0),
                    ("nissan", 0),
                    ("ford", 1),
                    ("chevy", 1),
                    ("dodge", 1),
                    ("bmw", 2),
                    ("audi", 2),
                    ("mercedes", 2),
                ],
            ),
            ValuePool::new(
                "model",
                &[
                    // cluster 0: compact/mid-size sedans
                    ("accord", 0),
                    ("civic", 0),
                    ("camry", 0),
                    ("corolla", 0),
                    ("mazda3", 0),
                    ("altima", 0),
                    ("malibu", 0),
                    ("focus", 0),
                    // cluster 1: trucks & muscle
                    ("mustang", 1),
                    ("camaro", 1),
                    ("f150", 1),
                    ("silverado", 1),
                    ("ram", 1),
                    // cluster 2: luxury
                    ("328i", 2),
                    ("a4", 2),
                    ("c300", 2),
                ],
            ),
        ],
        type1_pairs: vec![
            ("honda", "accord"),
            ("honda", "civic"),
            ("toyota", "camry"),
            ("toyota", "corolla"),
            ("mazda", "mazda3"),
            ("nissan", "altima"),
            ("chevy", "malibu"),
            ("chevy", "camaro"),
            ("chevy", "silverado"),
            ("ford", "focus"),
            ("ford", "mustang"),
            ("ford", "f150"),
            ("dodge", "ram"),
            ("bmw", "328i"),
            ("audi", "a4"),
            ("mercedes", "c300"),
        ],
        type2: vec![
            ValuePool::new(
                "color",
                &[
                    ("blue", 0),
                    ("silver", 0),
                    ("grey", 0),
                    ("black", 0),
                    ("white", 0),
                    ("red", 1),
                    ("yellow", 1),
                    ("orange", 1),
                    ("gold", 1),
                    ("green", 1),
                ],
            ),
            ValuePool::new("transmission", &[("automatic", 0), ("manual", 1)]),
            ValuePool::new(
                "drivetrain",
                &[
                    ("2 wheel drive", 0),
                    ("4 wheel drive", 1),
                    ("all wheel drive", 1),
                ],
            ),
            ValuePool::new("doors", &[("2 door", 0), ("4 door", 1)]),
            ValuePool::new(
                "features",
                &[
                    ("leather seats", 0),
                    ("heated seats", 0),
                    ("sunroof", 0),
                    ("navigation", 1),
                    ("bluetooth", 1),
                    ("backup camera", 1),
                    ("anti-lock brakes", 2),
                    ("power steering", 2),
                    ("cruise control", 2),
                ],
            ),
        ],
        type3: vec![
            NumericAttr::new(
                "price",
                500.0,
                80_000.0,
                Some("usd"),
                &["price", "priced", "cost", "dollars", "dollar", "bucks"],
            ),
            NumericAttr::new("year", 1985.0, 2011.0, None, &["year"]),
            NumericAttr::new(
                "mileage",
                0.0,
                250_000.0,
                Some("miles"),
                &["mileage", "mile", "mi", "odometer"],
            ),
        ],
        price_attribute: Some("price"),
        year_attribute: Some("year"),
        flavour_words: vec![
            "sedan",
            "coupe",
            "engine",
            "cylinder",
            "hatchback",
            "truck",
            "suv",
        ],
    }
}

fn motorcycles() -> DomainBlueprint {
    DomainBlueprint {
        name: "motorcycles",
        type1: vec![
            ValuePool::new(
                "make",
                &[
                    // honda and suzuki overlap with the cars/consumer world; that shared
                    // vocabulary is what lowers Figure 2's accuracy for both vehicle
                    // domains.
                    ("honda", 0),
                    ("yamaha", 0),
                    ("suzuki", 0),
                    ("kawasaki", 0),
                    ("harley davidson", 1),
                    ("ducati", 2),
                    ("triumph", 2),
                ],
            ),
            ValuePool::new(
                "model",
                &[
                    ("cbr600", 0),
                    ("ninja 650", 0),
                    ("gsxr 750", 0),
                    ("r6", 0),
                    ("sportster", 1),
                    ("road king", 1),
                    ("fat boy", 1),
                    ("monster 796", 2),
                    ("bonneville", 2),
                ],
            ),
        ],
        type1_pairs: vec![
            ("honda", "cbr600"),
            ("kawasaki", "ninja 650"),
            ("suzuki", "gsxr 750"),
            ("yamaha", "r6"),
            ("harley davidson", "sportster"),
            ("harley davidson", "road king"),
            ("harley davidson", "fat boy"),
            ("ducati", "monster 796"),
            ("triumph", "bonneville"),
        ],
        type2: vec![
            ValuePool::new(
                "color",
                &[
                    ("black", 0),
                    ("red", 1),
                    ("blue", 0),
                    ("white", 0),
                    ("orange", 1),
                ],
            ),
            ValuePool::new(
                "style",
                &[
                    ("sport", 0),
                    ("cruiser", 1),
                    ("touring", 1),
                    ("dirt", 2),
                    ("scooter", 2),
                ],
            ),
            ValuePool::new(
                "features",
                &[
                    ("saddlebags", 0),
                    ("windshield", 0),
                    ("heated grips", 1),
                    ("abs", 1),
                ],
            ),
        ],
        type3: vec![
            NumericAttr::new(
                "price",
                300.0,
                40_000.0,
                Some("usd"),
                &["price", "priced", "cost", "dollars", "dollar"],
            ),
            NumericAttr::new("year", 1985.0, 2011.0, None, &["year"]),
            NumericAttr::new(
                "mileage",
                0.0,
                120_000.0,
                Some("miles"),
                &["mileage", "mile", "mi", "odometer"],
            ),
            NumericAttr::new(
                "engine_cc",
                50.0,
                2000.0,
                Some("cc"),
                &["engine", "displacement"],
            ),
        ],
        price_attribute: Some("price"),
        year_attribute: Some("year"),
        flavour_words: vec!["bike", "motorcycle", "helmet", "two wheeler", "rides"],
    }
}

fn clothing() -> DomainBlueprint {
    DomainBlueprint {
        name: "clothing",
        type1: vec![
            ValuePool::new(
                "brand",
                &[
                    ("nike", 0),
                    ("adidas", 0),
                    ("puma", 0),
                    ("levis", 1),
                    ("gap", 1),
                    ("zara", 1),
                    ("gucci", 2),
                    ("prada", 2),
                ],
            ),
            ValuePool::new(
                "item",
                &[
                    ("jacket", 0),
                    ("coat", 0),
                    ("hoodie", 0),
                    ("jeans", 1),
                    ("trousers", 1),
                    ("shorts", 1),
                    ("dress", 2),
                    ("skirt", 2),
                    ("sneakers", 3),
                    ("boots", 3),
                ],
            ),
        ],
        type1_pairs: vec![],
        type2: vec![
            ValuePool::new(
                "color",
                &[
                    ("black", 0),
                    ("white", 0),
                    ("navy", 0),
                    ("red", 1),
                    ("pink", 1),
                    ("beige", 2),
                ],
            ),
            ValuePool::new(
                "size",
                &[
                    ("small", 0),
                    ("medium", 0),
                    ("large", 1),
                    ("extra large", 1),
                ],
            ),
            ValuePool::new(
                "material",
                &[
                    ("cotton", 0),
                    ("denim", 0),
                    ("leather", 1),
                    ("wool", 1),
                    ("polyester", 2),
                ],
            ),
        ],
        type3: vec![NumericAttr::new(
            "price",
            5.0,
            2_000.0,
            Some("usd"),
            &["price", "priced", "cost", "dollars", "dollar"],
        )],
        price_attribute: Some("price"),
        year_attribute: None,
        flavour_words: vec!["wear", "outfit", "fashion", "style", "fit"],
    }
}

fn cs_jobs() -> DomainBlueprint {
    DomainBlueprint {
        name: "cs_jobs",
        type1: vec![ValuePool::new(
            "title",
            &[
                ("software engineer", 0),
                ("backend developer", 0),
                ("frontend developer", 0),
                ("full stack developer", 0),
                ("data scientist", 1),
                ("machine learning engineer", 1),
                ("data engineer", 1),
                ("database administrator", 2),
                ("devops engineer", 2),
                ("security analyst", 3),
            ],
        )],
        type1_pairs: vec![],
        type2: vec![
            ValuePool::new(
                "language",
                &[
                    ("c++", 0),
                    ("c", 0),
                    ("rust", 0),
                    ("java", 1),
                    ("python", 1),
                    ("javascript", 2),
                    ("sql", 3),
                ],
            ),
            ValuePool::new(
                "seniority",
                &[
                    ("junior", 0),
                    ("mid level", 0),
                    ("senior", 1),
                    ("principal", 1),
                ],
            ),
            ValuePool::new(
                "arrangement",
                &[("remote", 0), ("hybrid", 0), ("onsite", 1)],
            ),
            ValuePool::new(
                "benefits",
                &[
                    ("health insurance", 0),
                    ("stock options", 1),
                    ("retirement plan", 0),
                    ("relocation", 1),
                ],
            ),
        ],
        type3: vec![
            NumericAttr::new(
                "salary",
                30_000.0,
                300_000.0,
                Some("usd"),
                &["salary", "pay", "compensation", "dollars"],
            ),
            NumericAttr::new(
                "experience",
                0.0,
                20.0,
                Some("years"),
                &["experience", "yoe"],
            ),
        ],
        price_attribute: Some("salary"),
        year_attribute: None,
        flavour_words: vec!["job", "position", "hiring", "career", "company", "team"],
    }
}

fn furniture() -> DomainBlueprint {
    DomainBlueprint {
        name: "furniture",
        type1: vec![ValuePool::new(
            "item",
            &[
                ("sofa", 0),
                ("couch", 0),
                ("recliner", 0),
                ("armchair", 0),
                ("dining table", 1),
                ("coffee table", 1),
                ("desk", 1),
                ("bookshelf", 2),
                ("dresser", 2),
                ("bed frame", 3),
                ("mattress", 3),
            ],
        )],
        type1_pairs: vec![],
        type2: vec![
            ValuePool::new(
                "material",
                &[
                    ("oak", 0),
                    ("pine", 0),
                    ("walnut", 0),
                    ("leather", 1),
                    ("fabric", 1),
                    ("metal", 2),
                    ("glass", 2),
                ],
            ),
            ValuePool::new(
                "color",
                &[
                    ("brown", 0),
                    ("beige", 0),
                    ("black", 1),
                    ("white", 1),
                    ("grey", 1),
                ],
            ),
            ValuePool::new(
                "condition",
                &[("new", 0), ("like new", 0), ("used", 1), ("refurbished", 1)],
            ),
        ],
        type3: vec![
            NumericAttr::new(
                "price",
                10.0,
                5_000.0,
                Some("usd"),
                &["price", "priced", "cost", "dollars", "dollar"],
            ),
            NumericAttr::new("width", 10.0, 120.0, Some("inches"), &["width", "wide"]),
        ],
        price_attribute: Some("price"),
        year_attribute: None,
        flavour_words: vec!["living room", "bedroom", "apartment", "home", "delivery"],
    }
}

fn food_coupons() -> DomainBlueprint {
    DomainBlueprint {
        name: "food_coupons",
        type1: vec![ValuePool::new(
            "restaurant",
            &[
                ("pizza palace", 0),
                ("pasta house", 0),
                ("burger barn", 1),
                ("taco town", 1),
                ("sushi spot", 2),
                ("noodle bar", 2),
                ("curry corner", 2),
                ("salad stop", 3),
            ],
        )],
        type1_pairs: vec![],
        type2: vec![
            ValuePool::new(
                "cuisine",
                &[
                    ("italian", 0),
                    ("american", 1),
                    ("mexican", 1),
                    ("japanese", 2),
                    ("thai", 2),
                    ("indian", 2),
                    ("vegan", 3),
                ],
            ),
            ValuePool::new(
                "meal",
                &[
                    ("lunch", 0),
                    ("dinner", 0),
                    ("breakfast", 1),
                    ("dessert", 1),
                ],
            ),
            ValuePool::new(
                "offer",
                &[
                    ("buy one get one", 0),
                    ("free delivery", 1),
                    ("family bundle", 0),
                    ("student deal", 1),
                ],
            ),
        ],
        type3: vec![
            NumericAttr::new("discount", 5.0, 80.0, Some("percent"), &["discount", "off"]),
            NumericAttr::new(
                "price",
                1.0,
                100.0,
                Some("usd"),
                &["price", "cost", "dollars", "dollar"],
            ),
        ],
        price_attribute: Some("price"),
        year_attribute: None,
        flavour_words: vec!["coupon", "voucher", "meal deal", "restaurant", "hungry"],
    }
}

fn musical_instruments() -> DomainBlueprint {
    DomainBlueprint {
        name: "musical_instruments",
        type1: vec![
            ValuePool::new(
                "brand",
                &[
                    ("fender", 0),
                    ("gibson", 0),
                    ("ibanez", 0),
                    ("yamaha", 1),
                    ("roland", 1),
                    ("casio", 1),
                    ("pearl", 2),
                    ("selmer", 3),
                ],
            ),
            ValuePool::new(
                "instrument",
                &[
                    ("electric guitar", 0),
                    ("acoustic guitar", 0),
                    ("bass guitar", 0),
                    ("keyboard", 1),
                    ("digital piano", 1),
                    ("synthesizer", 1),
                    ("drum kit", 2),
                    ("snare drum", 2),
                    ("saxophone", 3),
                    ("trumpet", 3),
                ],
            ),
        ],
        type1_pairs: vec![
            ("fender", "electric guitar"),
            ("fender", "bass guitar"),
            ("gibson", "electric guitar"),
            ("gibson", "acoustic guitar"),
            ("ibanez", "electric guitar"),
            ("yamaha", "keyboard"),
            ("yamaha", "digital piano"),
            ("roland", "synthesizer"),
            ("casio", "keyboard"),
            ("pearl", "drum kit"),
            ("pearl", "snare drum"),
            ("selmer", "saxophone"),
            ("selmer", "trumpet"),
        ],
        type2: vec![
            ValuePool::new(
                "condition",
                &[("new", 0), ("mint", 0), ("used", 1), ("vintage", 1)],
            ),
            ValuePool::new(
                "color",
                &[("sunburst", 0), ("black", 1), ("white", 1), ("natural", 0)],
            ),
            ValuePool::new(
                "accessories",
                &[
                    ("hard case", 0),
                    ("gig bag", 0),
                    ("amplifier", 1),
                    ("stand", 1),
                ],
            ),
        ],
        type3: vec![
            NumericAttr::new(
                "price",
                20.0,
                15_000.0,
                Some("usd"),
                &["price", "priced", "cost", "dollars", "dollar"],
            ),
            NumericAttr::new("year", 1950.0, 2011.0, None, &["year"]),
        ],
        price_attribute: Some("price"),
        year_attribute: Some("year"),
        flavour_words: vec!["music", "band", "strings", "pedal", "gig", "play"],
    }
}

fn jewellery() -> DomainBlueprint {
    DomainBlueprint {
        name: "jewellery",
        type1: vec![ValuePool::new(
            "item",
            &[
                ("engagement ring", 0),
                ("wedding band", 0),
                ("promise ring", 0),
                ("necklace", 1),
                ("pendant", 1),
                ("bracelet", 2),
                ("bangle", 2),
                ("earrings", 3),
                ("watch", 4),
            ],
        )],
        type1_pairs: vec![],
        type2: vec![
            ValuePool::new(
                "metal",
                &[
                    ("gold", 0),
                    ("rose gold", 0),
                    ("white gold", 0),
                    ("silver", 1),
                    ("platinum", 1),
                    ("titanium", 2),
                ],
            ),
            ValuePool::new(
                "gemstone",
                &[
                    ("diamond", 0),
                    ("moissanite", 0),
                    ("ruby", 1),
                    ("sapphire", 1),
                    ("emerald", 1),
                    ("pearl", 2),
                ],
            ),
            ValuePool::new(
                "style",
                &[
                    ("vintage", 0),
                    ("modern", 1),
                    ("minimalist", 1),
                    ("art deco", 0),
                ],
            ),
        ],
        type3: vec![
            NumericAttr::new(
                "price",
                20.0,
                50_000.0,
                Some("usd"),
                &["price", "priced", "cost", "dollars", "dollar"],
            ),
            NumericAttr::new("carat", 0.1, 5.0, Some("carat"), &["carats", "ct"]),
        ],
        price_attribute: Some("price"),
        year_attribute: None,
        flavour_words: vec!["gift", "anniversary", "sparkle", "certified", "band"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_domains_have_valid_specs() {
        let blueprints = all_blueprints();
        assert_eq!(blueprints.len(), 8);
        for bp in &blueprints {
            let spec = bp.to_spec();
            assert_eq!(spec.name(), bp.name);
            assert!(
                !spec.schema.type1_names().is_empty(),
                "{} needs Type I",
                bp.name
            );
            assert!(
                !spec.schema.type3_names().is_empty(),
                "{} needs Type III",
                bp.name
            );
            assert!(
                spec.price_attribute.is_some(),
                "{} needs a price-like attribute",
                bp.name
            );
            // every registered Type I/II value resolves back to its attribute
            for pool in bp.all_pools() {
                for (value, _) in &pool.values {
                    assert!(
                        spec.value_attribute(value).is_some(),
                        "{}: value {value} not registered",
                        bp.name
                    );
                }
            }
        }
    }

    #[test]
    fn type1_pairs_reference_known_values() {
        for bp in all_blueprints() {
            if bp.type1_pairs.is_empty() {
                continue;
            }
            let firsts = bp.type1[0].value_names();
            let seconds = bp.type1[1].value_names();
            for (a, b) in &bp.type1_pairs {
                assert!(firsts.contains(a), "{}: unknown pair lhs {a}", bp.name);
                assert!(seconds.contains(b), "{}: unknown pair rhs {b}", bp.name);
            }
        }
    }

    #[test]
    fn cars_and_motorcycles_share_vocabulary() {
        let cars = blueprint("cars");
        let moto = blueprint("motorcycles");
        let car_makes = cars.type1[0].value_names();
        let moto_makes = moto.type1[0].value_names();
        assert!(car_makes.iter().any(|m| moto_makes.contains(m)));
        // both talk about price, year and mileage
        let car_nums: Vec<_> = cars.type3.iter().map(|n| n.name).collect();
        let moto_nums: Vec<_> = moto.type3.iter().map(|n| n.name).collect();
        for shared in ["price", "year", "mileage"] {
            assert!(car_nums.contains(&shared) && moto_nums.contains(&shared));
        }
    }

    #[test]
    fn clusters_are_queryable() {
        let cars = blueprint("cars");
        let models = &cars.type1[1];
        assert_eq!(models.cluster_of("accord"), models.cluster_of("camry"));
        assert_ne!(models.cluster_of("accord"), models.cluster_of("mustang"));
        assert_eq!(models.cluster_of("prius"), None);
    }

    #[test]
    fn blueprint_lookup_panics_on_unknown_domain() {
        let result = std::panic::catch_unwind(|| blueprint("boats"));
        assert!(result.is_err());
    }
}
