//! Retry-with-backoff and circuit breaking for transient [`Vfs`](crate::Vfs)
//! failures.
//!
//! The WAL append path is the one place where a *transient* I/O failure (a
//! full pipe, an EINTR-ish hiccup from a network filesystem, an injected
//! fault) is worth absorbing instead of surfacing: the frame bytes are still
//! in memory and the engine can roll the file back to its last acknowledged
//! length ([`StorageEngine::rewind_wal`](crate::StorageEngine::rewind_wal))
//! and try again without ever duplicating a frame.
//!
//! Everything here is deterministic under test: time comes from an injected
//! [`RetryClock`] (the [`ManualClock`] advances only when something sleeps),
//! and the backoff jitter is a seeded xorshift — the same plan replays to the
//! same delays, byte for byte.

use crate::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// A monotonic clock the retry layer can sleep against.
///
/// Production uses [`RealClock`]; tests inject [`ManualClock`] so a
/// fail-once/fail-always sweep runs in microseconds of wall time while still
/// exercising every backoff and cooldown branch.
pub trait RetryClock: Send + Sync + fmt::Debug {
    /// Microseconds since this clock's origin.
    fn now_micros(&self) -> u64;
    /// Block (or pretend to) for `micros` microseconds.
    fn sleep_micros(&self, micros: u64);
}

/// Wall-clock implementation of [`RetryClock`].
#[derive(Debug)]
pub struct RealClock {
    origin: Instant,
}

impl RealClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        RealClock {
            #[allow(clippy::disallowed_methods)] // lint: allow(wall-clock) — this IS the injectable clock's real impl
            origin: Instant::now(),
        }
    }
}

impl Default for RealClock {
    fn default() -> Self {
        Self::new()
    }
}

impl RetryClock for RealClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
    fn sleep_micros(&self, micros: u64) {
        #[allow(clippy::disallowed_methods)]
        // lint: allow(wall-clock) — this IS the injectable clock's real impl
        std::thread::sleep(std::time::Duration::from_micros(micros));
    }
}

/// Deterministic test clock: time advances only via [`ManualClock::advance`]
/// or when the retry layer "sleeps" against it.
#[derive(Debug, Default)]
pub struct ManualClock {
    now: AtomicU64,
}

impl ManualClock {
    /// A clock starting at microsecond 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advance the clock by `micros` microseconds.
    pub fn advance(&self, micros: u64) {
        // ordering: virtual time is a lone monotone counter — concurrent
        // advances need only the RMW's atomicity, and readers tolerate any
        // interleaving (a clock is inherently racy to read). Relaxed.
        self.now.fetch_add(micros, Ordering::Relaxed);
    }
}

impl RetryClock for ManualClock {
    fn now_micros(&self) -> u64 {
        // ordering: see advance() — reading a clock is inherently racy.
        self.now.load(Ordering::Relaxed)
    }
    fn sleep_micros(&self, micros: u64) {
        // Sleeping *is* advancing: backoff waits move virtual time forward so
        // cooldown expiry is observable without real delays.
        self.advance(micros);
    }
}

/// How many times to try, and how long to wait between tries.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = no retries).
    pub attempts: u32,
    /// Backoff before retry `k` (1-based) is `base_delay_micros << (k - 1)`
    /// plus jitter, capped at [`max_delay_micros`](RetryPolicy::max_delay_micros).
    pub base_delay_micros: u64,
    /// Upper bound on any single backoff sleep.
    pub max_delay_micros: u64,
    /// Seed for the deterministic jitter stream (xorshift over seed ⊕ attempt).
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay_micros: 1_000,
            max_delay_micros: 100_000,
            jitter_seed: 0x5eed_cafe_f00d,
        }
    }
}

impl RetryPolicy {
    /// The backoff before 1-based retry `attempt`: exponential in the attempt
    /// number with a deterministic jitter in `[0, base_delay_micros)`.
    pub fn backoff_micros(&self, attempt: u32) -> u64 {
        let shift = (attempt.saturating_sub(1)).min(32);
        let base = self.base_delay_micros.saturating_shl(shift);
        let jitter = if self.base_delay_micros == 0 {
            0
        } else {
            xorshift(self.jitter_seed ^ u64::from(attempt)) % self.base_delay_micros
        };
        base.saturating_add(jitter).min(self.max_delay_micros)
    }
}

/// One round of xorshift64 — enough mixing for backoff jitter, and fully
/// reproducible from the seed.
fn xorshift(mut x: u64) -> u64 {
    x ^= x.wrapping_add(1) << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

trait SaturatingShl {
    fn saturating_shl(self, shift: u32) -> Self;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, shift: u32) -> u64 {
        if shift >= 64 || self.leading_zeros() < shift {
            u64::MAX
        } else {
            self << shift
        }
    }
}

/// A consecutive-failure circuit breaker.
///
/// After `threshold` consecutive *exhausted* retry sequences the breaker
/// opens: calls are rejected without touching the filesystem until
/// `cooldown_micros` has passed, at which point the next call probes the
/// backend (half-open). A success closes the breaker; a failure re-opens it
/// for another cooldown.
#[derive(Debug)]
pub struct CircuitBreaker {
    threshold: u32,
    cooldown_micros: u64,
    consecutive: AtomicU32,
    /// Clock-micros until which the breaker rejects; 0 = closed.
    open_until: AtomicU64,
    opened: AtomicU64,
}

impl CircuitBreaker {
    /// A closed breaker that opens after `threshold` consecutive failures and
    /// stays open for `cooldown_micros`. `threshold == 0` disables opening.
    pub fn new(threshold: u32, cooldown_micros: u64) -> Self {
        CircuitBreaker {
            threshold,
            cooldown_micros,
            consecutive: AtomicU32::new(0),
            open_until: AtomicU64::new(0),
            opened: AtomicU64::new(0),
        }
    }

    /// May a call proceed at clock time `now_micros`? `false` means the
    /// breaker is open and the caller should fail fast.
    pub fn allows(&self, now_micros: u64) -> bool {
        // ordering: self-contained u64 deadline — a caller racing a trip may
        // be admitted once more, which this advisory overload valve tolerates
        // by design (races model-checked in tests/interleavings.rs). Relaxed.
        now_micros >= self.open_until.load(Ordering::Relaxed)
    }

    /// Record a successful call: the breaker closes fully.
    pub fn record_success(&self) {
        // ordering: both fields are independent self-contained values (see
        // allows()); a racing observer sees each reset individually, and
        // every reachable pairing is a coherent breaker state. Relaxed.
        self.consecutive.store(0, Ordering::Relaxed);
        self.open_until.store(0, Ordering::Relaxed);
    }

    /// Record a failed call (after its retries were exhausted); may open the
    /// breaker.
    pub fn record_failure(&self, now_micros: u64) {
        // ordering: the RMW's atomicity alone makes the streak exact, so the
        // threshold crossing is observed by exactly one failure; the stores
        // it gates publish self-contained values (see allows()). Relaxed.
        let failures = self.consecutive.fetch_add(1, Ordering::Relaxed) + 1;
        if self.threshold > 0 && failures >= self.threshold {
            let until = now_micros.saturating_add(self.cooldown_micros);
            // ordering: publishes a self-contained deadline (see allows()). Relaxed.
            self.open_until.store(until, Ordering::Relaxed);
            // ordering: monotone stats counter; Relaxed.
            self.opened.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// How many times the breaker has opened since construction.
    pub fn times_opened(&self) -> u64 {
        // ordering: advisory stats read; Relaxed.
        self.opened.load(Ordering::Relaxed)
    }
}

/// Everything the durable layer needs to retry WAL appends: policy, breaker
/// settings and a time source.
#[derive(Debug, Clone)]
pub struct RetryOptions {
    /// Per-call retry policy.
    pub policy: RetryPolicy,
    /// Consecutive exhausted calls before the breaker opens (`0` = never).
    pub breaker_threshold: u32,
    /// How long an open breaker rejects before half-opening, in microseconds.
    pub breaker_cooldown_micros: u64,
    /// Time source for backoff sleeps and cooldown expiry.
    pub clock: Arc<dyn RetryClock>,
}

impl Default for RetryOptions {
    fn default() -> Self {
        RetryOptions {
            policy: RetryPolicy::default(),
            breaker_threshold: 5,
            breaker_cooldown_micros: 1_000_000,
            clock: Arc::new(RealClock::new()),
        }
    }
}

impl RetryOptions {
    /// Defaults over an injected clock (tests).
    pub fn with_clock(clock: Arc<dyn RetryClock>) -> Self {
        RetryOptions {
            clock,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_is_deterministic_exponential_and_capped() {
        let policy = RetryPolicy {
            attempts: 5,
            base_delay_micros: 100,
            max_delay_micros: 350,
            jitter_seed: 7,
        };
        let a = policy.backoff_micros(1);
        let b = policy.backoff_micros(2);
        // Jitter stays below one base step, so attempt 2 strictly dominates.
        assert!((100..200).contains(&a), "attempt 1 backoff {a}");
        assert!((200..350).contains(&b), "attempt 2 backoff {b}");
        assert_eq!(policy.backoff_micros(4), 350, "cap applies");
        // Same seed, same delays.
        assert_eq!(a, policy.backoff_micros(1));
    }

    #[test]
    fn zero_base_delay_never_divides_by_zero() {
        let policy = RetryPolicy {
            base_delay_micros: 0,
            ..RetryPolicy::default()
        };
        assert_eq!(policy.backoff_micros(1), 0);
    }

    #[test]
    fn breaker_opens_on_threshold_and_half_opens_after_cooldown() {
        let clock = ManualClock::new();
        let breaker = CircuitBreaker::new(2, 1_000);
        assert!(breaker.allows(clock.now_micros()));
        breaker.record_failure(clock.now_micros());
        assert!(
            breaker.allows(clock.now_micros()),
            "one failure keeps it closed"
        );
        breaker.record_failure(clock.now_micros());
        assert!(!breaker.allows(clock.now_micros()), "threshold opens it");
        assert_eq!(breaker.times_opened(), 1);

        clock.advance(999);
        assert!(!breaker.allows(clock.now_micros()));
        clock.advance(1);
        assert!(breaker.allows(clock.now_micros()), "cooldown half-opens");

        // A half-open probe that fails re-opens for another cooldown…
        breaker.record_failure(clock.now_micros());
        assert!(!breaker.allows(clock.now_micros()));
        assert_eq!(breaker.times_opened(), 2);
        // …and one that succeeds closes fully.
        clock.advance(1_000);
        breaker.record_success();
        assert!(breaker.allows(clock.now_micros()));
        breaker.record_failure(clock.now_micros());
        assert!(
            breaker.allows(clock.now_micros()),
            "success reset the streak"
        );
    }

    #[test]
    fn zero_threshold_never_opens() {
        let breaker = CircuitBreaker::new(0, 1_000);
        for _ in 0..100 {
            breaker.record_failure(0);
        }
        assert!(breaker.allows(0));
        assert_eq!(breaker.times_opened(), 0);
    }

    #[test]
    fn manual_clock_sleep_advances_time() {
        let clock = ManualClock::new();
        clock.sleep_micros(250);
        clock.advance(50);
        assert_eq!(clock.now_micros(), 300);
    }
}
