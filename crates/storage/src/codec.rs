//! Hand-rolled binary codec and CRC-32.
//!
//! The WAL and snapshots use a fixed little-endian binary layout rather than a
//! general serialization framework: the durability argument leans on byte-level
//! control (`f64` round-trips via `to_bits`, so restored accumulators are
//! bit-identical to the live ones) and on every frame being checksummable as an
//! opaque byte string. The [`Encoder`]/[`Decoder`] pair is deliberately tiny —
//! fixed-width integers, IEEE-754 bit patterns, length-prefixed strings and the
//! few composites built from them.

/// CRC-32/ISO-HDLC (the zlib/PNG polynomial, reflected), table-driven.
pub fn crc32(bytes: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = table[((crc ^ b as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    crc ^ 0xFFFF_FFFF
}

/// Append-only byte buffer with typed put methods.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Fresh, empty encoder.
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Finish and take the encoded bytes.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round-trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Append an optional string (presence byte + payload).
    pub fn put_opt_str(&mut self, s: Option<&str>) {
        match s {
            Some(s) => {
                self.put_bool(true);
                self.put_str(s);
            }
            None => self.put_bool(false),
        }
    }
}

/// Cursor over an encoded byte slice; every accessor checks bounds and reports
/// a description of what was expected on failure (mapped to
/// [`StorageError::Codec`](crate::StorageError::Codec) by the callers that know
/// the file and offset).
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// Decoder-level failure: what the decoder expected and where it ran out.
pub type DecodeResult<T> = Result<T, String>;

impl<'a> Decoder<'a> {
    /// Decode from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True when every byte was consumed (decoders assert this at the end so a
    /// frame with trailing garbage is rejected rather than silently accepted).
    pub fn is_done(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> DecodeResult<&'a [u8]> {
        if self.remaining() < n {
            return Err(format!(
                "truncated payload: needed {n} bytes for {what}, {} left",
                self.remaining()
            ));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read one byte.
    pub fn get_u8(&mut self, what: &str) -> DecodeResult<u8> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> DecodeResult<u32> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> DecodeResult<u64> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f64` from its bit pattern.
    pub fn get_f64(&mut self, what: &str) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.get_u64(what)?))
    }

    /// Read a bool byte (anything other than 0/1 is a decode error).
    pub fn get_bool(&mut self, what: &str) -> DecodeResult<bool> {
        match self.get_u8(what)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(format!("invalid bool byte {other} for {what}")),
        }
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> DecodeResult<String> {
        let len = self.get_u32(what)? as usize;
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| format!("invalid UTF-8 in {what}"))
    }

    /// Read an optional string written by [`Encoder::put_opt_str`].
    pub fn get_opt_str(&mut self, what: &str) -> DecodeResult<Option<String>> {
        if self.get_bool(what)? {
            Ok(Some(self.get_str(what)?))
        } else {
            Ok(None)
        }
    }

    /// Read a `u32` count, sanity-bounded so a corrupt length cannot trigger an
    /// absurd allocation. The bound is generous (the payload is already capped
    /// by the frame size) — each element needs at least one byte.
    pub fn get_count(&mut self, what: &str) -> DecodeResult<usize> {
        let n = self.get_u32(what)? as usize;
        if n > self.remaining() {
            return Err(format!(
                "implausible count {n} for {what} ({} bytes remain)",
                self.remaining()
            ));
        }
        Ok(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value of CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"abc"), crc32(b"abd"));
    }

    #[test]
    fn round_trips_every_primitive() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX - 3);
        e.put_f64(-0.0);
        e.put_f64(f64::NAN);
        e.put_bool(true);
        e.put_str("héllo");
        e.put_opt_str(None);
        e.put_opt_str(Some("x"));
        let bytes = e.finish();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8("a").unwrap(), 7);
        assert_eq!(d.get_u32("b").unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.get_u64("c").unwrap(), u64::MAX - 3);
        assert_eq!(d.get_f64("d").unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.get_f64("e").unwrap().is_nan());
        assert!(d.get_bool("f").unwrap());
        assert_eq!(d.get_str("g").unwrap(), "héllo");
        assert_eq!(d.get_opt_str("h").unwrap(), None);
        assert_eq!(d.get_opt_str("i").unwrap(), Some("x".into()));
        assert!(d.is_done());
    }

    #[test]
    fn truncated_and_invalid_inputs_error_gracefully() {
        let mut d = Decoder::new(&[1, 2]);
        assert!(d.get_u32("int").unwrap_err().contains("truncated"));

        // String length prefix pointing past the end.
        let mut e = Encoder::new();
        e.put_u32(1000);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_str("s").is_err());

        // Bad bool byte.
        let mut d = Decoder::new(&[9]);
        assert!(d.get_bool("flag").unwrap_err().contains("invalid bool"));

        // Invalid UTF-8.
        let mut e = Encoder::new();
        e.put_u32(2);
        let mut bytes = e.finish();
        bytes.extend_from_slice(&[0xFF, 0xFE]);
        let mut d = Decoder::new(&bytes);
        assert!(d.get_str("s").unwrap_err().contains("UTF-8"));

        // Implausible element count.
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let bytes = e.finish();
        let mut d = Decoder::new(&bytes);
        assert!(d.get_count("items").unwrap_err().contains("implausible"));
    }
}
