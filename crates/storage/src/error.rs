//! Typed storage errors.
//!
//! Every failure mode of the durable engine — I/O errors, checksum mismatches,
//! unparseable payloads — surfaces as a [`StorageError`] carrying the file and
//! byte offset where the problem was found. The engine never panics on corrupt
//! or missing input; it recovers what is provably intact and reports the rest
//! through this type (wrapped into `CqadsError::Storage` by the pipeline crate).
//!
//! The type is `Clone + PartialEq` (raw `std::io::Error` is neither), so the
//! operating-system error is captured as its [`std::io::ErrorKind`] debug string
//! plus the display message.

use std::fmt;

/// Result alias for storage operations.
pub type StorageResult<T> = Result<T, StorageError>;

/// A structured storage failure with file / offset context.
#[derive(Debug, Clone, PartialEq)]
pub enum StorageError {
    /// An operating-system I/O call failed.
    Io {
        /// File (or directory) the operation targeted.
        path: String,
        /// What the engine was doing ("append", "read", "rename", ...).
        op: &'static str,
        /// `std::io::ErrorKind` of the underlying error, as its debug string.
        kind: String,
        /// Human-readable message of the underlying error.
        detail: String,
    },
    /// A WAL frame or snapshot failed its integrity checks (bad CRC, impossible
    /// length prefix, truncated header or payload, wrong magic).
    Corrupt {
        /// File the corruption was found in.
        path: String,
        /// Byte offset of the first invalid byte (frame start for frame-level
        /// defects).
        offset: u64,
        /// What exactly failed.
        detail: String,
    },
    /// A frame passed its CRC but its payload does not decode as a known record
    /// (version skew or logic error rather than bit rot).
    Codec {
        /// File the payload came from.
        path: String,
        /// Byte offset of the frame holding the payload.
        offset: u64,
        /// What the decoder choked on.
        detail: String,
    },
    /// The retry layer's circuit breaker is open: persistent append failures
    /// tripped it and the cooldown has not yet elapsed, so the call was
    /// rejected without touching the filesystem.
    Unavailable {
        /// Why the breaker is open / when it may close.
        detail: String,
    },
}

impl StorageError {
    /// Wrap an `std::io::Error` with the path and operation that hit it.
    pub fn io(path: &std::path::Path, op: &'static str, err: &std::io::Error) -> Self {
        StorageError::Io {
            path: path.display().to_string(),
            op,
            kind: format!("{:?}", err.kind()),
            detail: err.to_string(),
        }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io {
                path,
                op,
                kind,
                detail,
            } => {
                write!(
                    f,
                    "storage I/O error during {op} on `{path}` ({kind}): {detail}"
                )
            }
            StorageError::Corrupt {
                path,
                offset,
                detail,
            } => write!(f, "corrupt storage in `{path}` at byte {offset}: {detail}"),
            StorageError::Codec {
                path,
                offset,
                detail,
            } => write!(
                f,
                "undecodable record in `{path}` at byte {offset}: {detail}"
            ),
            StorageError::Unavailable { detail } => {
                write!(f, "storage unavailable (circuit breaker open): {detail}")
            }
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    #[test]
    fn display_carries_path_and_offset_context() {
        let e = StorageError::Corrupt {
            path: "wal-000001.log".into(),
            offset: 42,
            detail: "crc mismatch".into(),
        };
        let s = e.to_string();
        assert!(s.contains("wal-000001.log") && s.contains("42") && s.contains("crc"));

        let io = std::io::Error::new(std::io::ErrorKind::WriteZero, "torn");
        let e = StorageError::io(Path::new("/tmp/x"), "append", &io);
        let s = e.to_string();
        assert!(s.contains("append") && s.contains("WriteZero") && s.contains("torn"));
    }

    #[test]
    fn errors_are_comparable_and_clonable() {
        let a = StorageError::Codec {
            path: "p".into(),
            offset: 0,
            detail: "bad tag".into(),
        };
        assert_eq!(a.clone(), a);
    }
}
