//! # cqads-storage — durable WAL + snapshot engine for CQAds
//!
//! The paper's CQAds system is described as a long-running service over live
//! ads databases and query logs; this crate gives the reproduction the
//! durability such a service needs without changing any in-memory semantics:
//!
//! * **Write-ahead log** ([`wal`], [`records`]) — every mutation (domain
//!   registration, record insert, query-log delta, WS-matrix swap) is one
//!   CRC-32-checksummed, length-prefixed frame, stamped with the table/model
//!   generation it produced. Served queries ride along as audit frames, making
//!   the log a replayable audit trail too.
//! * **Snapshots** ([`snapshot`]) — periodic point-in-time captures of every
//!   domain's table, TI-matrix raw accumulators, the WS-matrix and the config
//!   scalars, written atomically with their own checksum.
//! * **Recovery** ([`engine`]) — on open, the newest valid snapshot is loaded,
//!   the WAL tail replayed, torn tails truncated to the last whole frame, and
//!   a *generation safety bump* applied so that no generation stamp handed out
//!   before a crash can exceed a post-recovery one.
//! * **Fault injection** ([`fault`], [`vfs`]) — the engine only talks to disk
//!   through the [`Vfs`] trait, so tests crash it at arbitrary byte offsets
//!   ([`MemFs`] tamper helpers) or through an injected torn append
//!   ([`FaultFs`]) and verify recovery byte for byte.
//! * **Retry & circuit breaking** ([`retry`]) — a deterministic
//!   retry-with-backoff policy plus a consecutive-failure circuit breaker for
//!   transient append faults; the engine's
//!   [`rewind_wal`](StorageEngine::rewind_wal) rolls a failed append's bytes
//!   back so a retry can never duplicate a frame.
//!
//! The crate is self-contained below the core pipeline: it depends on the data
//! crates (`addb`, `cqads-querylog`, `cqads-wordsim`) for the state it
//! persists, and `cqads` wires it in behind `CqadsConfig::storage`.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod codec;
pub mod engine;
pub mod error;
pub mod fault;
pub mod records;
pub mod retry;
pub mod snapshot;
pub mod sync;
pub mod vfs;
pub mod wal;

pub use engine::{Recovered, RecoveryReport, StorageEngine};
pub use error::{StorageError, StorageResult};
pub use fault::{FaultFs, FaultPlan};
pub use records::{AuditRecord, SpecData, WalRecord};
pub use retry::{CircuitBreaker, ManualClock, RealClock, RetryClock, RetryOptions, RetryPolicy};
pub use snapshot::{ConfigSnap, DomainSnap, SnapshotData, SNAPSHOT_MAGIC};
pub use vfs::{MemFs, RealFs, Vfs};
pub use wal::{
    encode_frame, scan_frames, ScanOutcome, TailDefect, FRAME_HEADER, MAX_FRAME_BYTES,
    MIN_FRAME_BYTES,
};
