//! Fault injection: a [`Vfs`] wrapper that fails on command.
//!
//! [`FaultFs`] delegates to an inner filesystem until its [`FaultPlan`] says
//! otherwise. The interesting failure is the *torn append*: after an
//! append-byte budget is exhausted, the next append writes only the bytes that
//! still fit and then reports an error — exactly the half-written frame a
//! power cut leaves behind. Because the wrapper sits below the production
//! engine, every fault exercises the real append/recover code paths.

use crate::vfs::Vfs;
use std::io;
use std::path::Path;
use std::sync::{Arc, Mutex};

/// What to fail, and when.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Total append bytes still allowed to reach the inner filesystem. `None`
    /// disables the fault. When an append does not fit, the part that fits is
    /// written (a torn frame) and the append reports `WriteZero`.
    pub append_budget: Option<u64>,
    /// Fail the next this-many `append` calls *cleanly* — no bytes reach the
    /// inner filesystem, the caller sees `Other` — then let appends through
    /// again. This is the transient-blip shape the retry layer absorbs
    /// (`1` = fail-once; pair with a large value for fail-always sweeps).
    pub fail_appends: u32,
    /// Fail every `sync` call with `Other`.
    pub fail_sync: bool,
    /// Fail every `write_atomic` (snapshot writes) with `Other`, writing
    /// nothing — atomic replacement either happens or leaves the old file.
    pub fail_write_atomic: bool,
    /// Fail every `read` with `Other`.
    pub fail_read: bool,
}

/// Fault-injecting wrapper around another [`Vfs`].
#[derive(Debug)]
pub struct FaultFs {
    inner: Arc<dyn Vfs>,
    plan: Mutex<FaultPlan>,
}

impl FaultFs {
    /// Wrap an inner filesystem with no faults armed.
    pub fn new(inner: Arc<dyn Vfs>) -> Self {
        FaultFs {
            inner,
            plan: Mutex::new(FaultPlan::default()),
        }
    }

    /// Install a new fault plan (replaces the previous one).
    pub fn set_plan(&self, plan: FaultPlan) {
        *self.lock_plan() = plan;
    }

    /// The currently armed plan.
    pub fn plan(&self) -> FaultPlan {
        self.lock_plan().clone()
    }

    fn lock_plan(&self) -> std::sync::MutexGuard<'_, FaultPlan> {
        match self.plan.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    fn injected(what: &str) -> io::Error {
        io::Error::other(format!("injected fault: {what}"))
    }
}

impl Vfs for FaultFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        if self.lock_plan().fail_read {
            return Err(Self::injected("read"));
        }
        self.inner.read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        if self.lock_plan().fail_write_atomic {
            return Err(Self::injected("write_atomic"));
        }
        self.inner.write_atomic(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let allowed = {
            let mut plan = self.lock_plan();
            if plan.fail_appends > 0 {
                plan.fail_appends -= 1;
                return Err(Self::injected("append"));
            }
            match plan.append_budget {
                None => None,
                Some(budget) => {
                    let fits = (data.len() as u64).min(budget);
                    plan.append_budget = Some(budget - fits);
                    Some(fits as usize)
                }
            }
        };
        match allowed {
            None => self.inner.append(path, data),
            Some(fits) if fits == data.len() => self.inner.append(path, data),
            Some(fits) => {
                // Torn write: the prefix lands, the rest is lost, and the
                // caller is told the append failed.
                self.inner.append(path, &data[..fits])?;
                Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    format!(
                        "injected torn append: {fits} of {} bytes written",
                        data.len()
                    ),
                ))
            }
        }
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        if self.lock_plan().fail_sync {
            return Err(Self::injected("sync"));
        }
        self.inner.sync(path)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.inner.list(dir)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.inner.remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.inner.create_dir_all(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.inner.file_len(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vfs::MemFs;

    #[test]
    fn torn_append_writes_the_prefix_then_errors() {
        let mem = Arc::new(MemFs::new());
        let fs = FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>);
        let file = Path::new("/db/wal-000000.log");

        fs.append(file, b"full").unwrap();
        fs.set_plan(FaultPlan {
            append_budget: Some(3),
            ..FaultPlan::default()
        });
        // 3 bytes of budget: "ab" fits wholly, "cdef" tears after 1 byte.
        fs.append(file, b"ab").unwrap();
        let err = fs.append(file, b"cdef").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WriteZero);
        assert_eq!(mem.read(file).unwrap(), b"fullabc");
        // Budget exhausted: even a 1-byte append tears at zero.
        assert!(fs.append(file, b"x").is_err());
        assert_eq!(mem.read(file).unwrap(), b"fullabc");
    }

    #[test]
    fn clean_append_failures_write_nothing_then_clear() {
        let mem = Arc::new(MemFs::new());
        let fs = FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>);
        let file = Path::new("/db/wal-000000.log");
        fs.append(file, b"ok").unwrap();
        fs.set_plan(FaultPlan {
            fail_appends: 2,
            ..FaultPlan::default()
        });
        assert!(fs.append(file, b"a").is_err());
        assert!(fs.append(file, b"b").is_err());
        // Unlike a torn append, nothing landed on the inner filesystem…
        assert_eq!(mem.read(file).unwrap(), b"ok");
        // …and the fault self-clears after the planned count.
        fs.append(file, b"c").unwrap();
        assert_eq!(mem.read(file).unwrap(), b"okc");
        assert_eq!(fs.plan().fail_appends, 0);
    }

    #[test]
    fn sync_write_atomic_and_read_faults_fire() {
        let mem = Arc::new(MemFs::new());
        let fs = FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>);
        let file = Path::new("/db/snapshot-000001.bin");
        fs.write_atomic(file, b"ok").unwrap();

        fs.set_plan(FaultPlan {
            fail_sync: true,
            fail_write_atomic: true,
            fail_read: true,
            ..FaultPlan::default()
        });
        assert!(fs.sync(file).is_err());
        assert!(fs.write_atomic(file, b"new").is_err());
        assert!(fs.read(file).is_err());
        // The failed write_atomic left the old contents intact.
        assert_eq!(mem.read(file).unwrap(), b"ok");

        // Pass-through operations still work while faults are armed.
        assert_eq!(fs.file_len(file).unwrap(), Some(2));
        assert_eq!(fs.list(Path::new("/db")).unwrap().len(), 1);

        fs.set_plan(FaultPlan::default());
        assert_eq!(fs.read(file).unwrap(), b"ok");
        assert!(fs.plan().append_budget.is_none());
        fs.remove_file(file).unwrap();
        fs.create_dir_all(Path::new("/db")).unwrap();
    }
}
