//! WAL frame format and tail-tolerant scanning.
//!
//! A WAL file is a flat sequence of frames:
//!
//! ```text
//! ┌───────────┬───────────┬─────────────────┐
//! │ len: u32  │ crc: u32  │ payload (len B) │   little-endian, crc = CRC-32 of payload
//! └───────────┴───────────┴─────────────────┘
//! ```
//!
//! [`scan_frames`] walks a file from the start and stops at the first byte
//! that cannot be part of a valid frame — a truncated header, a length prefix
//! pointing past the end of the file, a CRC mismatch, or an impossible length.
//! Everything before that point is the *valid prefix*; everything after is the
//! torn tail a crash (or bit rot) left behind. The scan never panics and never
//! allocates based on untrusted lengths beyond the file size.

use crate::codec::crc32;

/// Bytes of the `len` + `crc` frame header.
pub const FRAME_HEADER: u64 = 8;

/// Smallest possible frame: header plus a one-byte payload. Recovery uses this
/// to bound how many frames a dropped tail of `n` bytes could have held, which
/// in turn bounds how far any generation counter could have advanced past the
/// recovered state (each frame advances a given counter by at most 1).
pub const MIN_FRAME_BYTES: u64 = FRAME_HEADER + 1;

/// Upper bound on a single frame's payload; a length prefix above this is
/// corruption, not a real frame (no mutation record comes close).
pub const MAX_FRAME_BYTES: u32 = 1 << 30;

/// Wrap a payload in a checksummed frame.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + FRAME_HEADER as usize);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Why a scan stopped before the end of the file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TailDefect {
    /// Fewer than [`FRAME_HEADER`] bytes remained — a frame header was cut.
    TruncatedHeader {
        /// Bytes of header present.
        have: u64,
    },
    /// The header announced more payload bytes than the file holds.
    TruncatedPayload {
        /// Announced payload length.
        want: u64,
        /// Payload bytes actually present.
        have: u64,
    },
    /// The payload's CRC-32 did not match the header.
    BadCrc {
        /// Checksum stored in the header.
        stored: u32,
        /// Checksum computed over the payload bytes.
        computed: u32,
    },
    /// The length prefix exceeded [`MAX_FRAME_BYTES`].
    BadLength {
        /// The impossible length.
        len: u32,
    },
}

impl std::fmt::Display for TailDefect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TailDefect::TruncatedHeader { have } => {
                write!(f, "truncated frame header ({have} of {FRAME_HEADER} bytes)")
            }
            TailDefect::TruncatedPayload { want, have } => {
                write!(f, "truncated frame payload ({have} of {want} bytes)")
            }
            TailDefect::BadCrc { stored, computed } => {
                write!(
                    f,
                    "frame crc mismatch (stored {stored:#010x}, computed {computed:#010x})"
                )
            }
            TailDefect::BadLength { len } => write!(f, "impossible frame length {len}"),
        }
    }
}

/// Result of scanning one WAL file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScanOutcome {
    /// Payloads of every valid frame, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// Byte offset of each payload's frame start (parallel to `payloads`).
    pub offsets: Vec<u64>,
    /// Length of the valid prefix; bytes past this are the torn tail.
    pub valid_len: u64,
    /// What stopped the scan, `None` when the whole file is valid frames.
    pub defect: Option<TailDefect>,
}

/// Walk `bytes` frame by frame, collecting every checksummed payload until the
/// end of the file or the first defect.
pub fn scan_frames(bytes: &[u8]) -> ScanOutcome {
    let mut payloads = Vec::new();
    let mut offsets = Vec::new();
    let mut pos = 0usize;
    let mut defect = None;

    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if (remaining as u64) < FRAME_HEADER {
            defect = Some(TailDefect::TruncatedHeader {
                have: remaining as u64,
            });
            break;
        }
        let len = u32::from_le_bytes([bytes[pos], bytes[pos + 1], bytes[pos + 2], bytes[pos + 3]]);
        let stored = u32::from_le_bytes([
            bytes[pos + 4],
            bytes[pos + 5],
            bytes[pos + 6],
            bytes[pos + 7],
        ]);
        if len > MAX_FRAME_BYTES {
            defect = Some(TailDefect::BadLength { len });
            break;
        }
        let body_start = pos + FRAME_HEADER as usize;
        let have = bytes.len() - body_start;
        if (len as usize) > have {
            defect = Some(TailDefect::TruncatedPayload {
                want: len as u64,
                have: have as u64,
            });
            break;
        }
        let payload = &bytes[body_start..body_start + len as usize];
        let computed = crc32(payload);
        if computed != stored {
            defect = Some(TailDefect::BadCrc { stored, computed });
            break;
        }
        offsets.push(pos as u64);
        payloads.push(payload.to_vec());
        pos = body_start + len as usize;
    }

    ScanOutcome {
        payloads,
        offsets,
        valid_len: pos as u64,
        defect,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn log_of(payloads: &[&[u8]]) -> Vec<u8> {
        payloads.iter().flat_map(|p| encode_frame(p)).collect()
    }

    #[test]
    fn clean_log_scans_to_the_end() {
        let log = log_of(&[b"alpha", b"", b"gamma"]);
        let out = scan_frames(&log);
        assert_eq!(
            out.payloads,
            vec![b"alpha".to_vec(), vec![], b"gamma".to_vec()]
        );
        assert_eq!(out.valid_len, log.len() as u64);
        assert_eq!(out.defect, None);
        assert_eq!(out.offsets[0], 0);
        assert_eq!(out.offsets[1], FRAME_HEADER + 5);
    }

    #[test]
    fn empty_log_is_valid_and_empty() {
        let out = scan_frames(&[]);
        assert!(out.payloads.is_empty());
        assert_eq!(out.valid_len, 0);
        assert_eq!(out.defect, None);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let log = log_of(&[b"keep me", b"lost frame"]);
        let first_len = FRAME_HEADER as usize + 7;
        // Cut in the middle of the second frame's payload.
        let cut = &log[..first_len + FRAME_HEADER as usize + 3];
        let out = scan_frames(cut);
        assert_eq!(out.payloads, vec![b"keep me".to_vec()]);
        assert_eq!(out.valid_len, first_len as u64);
        assert!(matches!(
            out.defect,
            Some(TailDefect::TruncatedPayload { want: 10, have: 3 })
        ));
    }

    #[test]
    fn truncated_header_is_reported() {
        let log = log_of(&[b"x"]);
        let cut = &log[..log.len() - 1 - 5]; // 3 header bytes of a next frame? no: cut inside the only frame's header
        let out = scan_frames(&cut[..3.min(cut.len())]);
        assert!(matches!(
            out.defect,
            Some(TailDefect::TruncatedHeader { have: 3 })
        ));
        assert_eq!(out.valid_len, 0);
    }

    #[test]
    fn bit_flip_fails_the_crc_and_stops_there() {
        let mut log = log_of(&[b"aaaa", b"bbbb", b"cccc"]);
        let second_frame = FRAME_HEADER as usize + 4;
        log[second_frame + FRAME_HEADER as usize] ^= 0x40; // payload bit of frame 2
        let out = scan_frames(&log);
        assert_eq!(out.payloads, vec![b"aaaa".to_vec()]);
        assert_eq!(out.valid_len, second_frame as u64);
        assert!(matches!(out.defect, Some(TailDefect::BadCrc { .. })));
    }

    #[test]
    fn impossible_length_prefix_is_corruption_not_allocation() {
        let mut log = Vec::new();
        log.extend_from_slice(&(u32::MAX).to_le_bytes());
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&[0; 16]);
        let out = scan_frames(&log);
        assert!(matches!(
            out.defect,
            Some(TailDefect::BadLength { len: u32::MAX })
        ));
        assert_eq!(out.valid_len, 0);
    }

    proptest! {
        /// Cutting a valid log at ANY byte offset yields a valid frame prefix
        /// and never panics — the crash-recovery primitive.
        #[test]
        fn any_cut_point_recovers_a_frame_prefix(
            payload_lens in proptest::collection::vec(0usize..40, 1..6),
            cut_fraction in 0.0f64..1.0,
        ) {
            let payloads: Vec<Vec<u8>> = payload_lens
                .iter()
                .enumerate()
                .map(|(i, &n)| vec![i as u8; n])
                .collect();
            let refs: Vec<&[u8]> = payloads.iter().map(|p| p.as_slice()).collect();
            let log = log_of(&refs);
            let cut = ((log.len() as f64) * cut_fraction) as usize;
            let out = scan_frames(&log[..cut]);
            // The survivors are exactly the frames that fit wholly below the cut.
            let mut end = 0u64;
            let mut expect = 0usize;
            for p in &payloads {
                let next = end + FRAME_HEADER + p.len() as u64;
                if next <= cut as u64 {
                    end = next;
                    expect += 1;
                } else {
                    break;
                }
            }
            prop_assert_eq!(out.payloads.len(), expect);
            prop_assert_eq!(out.valid_len, end);
            prop_assert_eq!(out.defect.is_none(), cut as u64 == end);
        }
    }
}
