//! Point-in-time snapshots.
//!
//! A snapshot captures the full durable state of a [`CqadsSystem`](../../cqads_core)
//! at the start of a WAL epoch: every domain (spec, table records, generation,
//! TI-matrix raw accumulators), the WS-matrix and the config scalars. Snapshot
//! files are written atomically (`write_atomic`: temp file + fsync + rename) and
//! carry a magic header plus a CRC over the whole payload, so a torn or
//! bit-flipped snapshot is detected on open and recovery falls back to the
//! previous epoch's snapshot (or the implicit empty state of epoch 0).

use crate::codec::{crc32, DecodeResult, Decoder, Encoder};
use crate::error::{StorageError, StorageResult};
use crate::records::{
    get_record, get_spec, get_ti, get_ws, put_record, put_spec, put_ti, put_ws, SpecData,
};
use addb::Record;
use cqads_querylog::TiMatrixState;
use cqads_wordsim::WsMatrixState;
use std::path::Path;

/// Magic prefix of every snapshot file (the trailing digits version the format).
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"CQSNAP01";

/// Persisted scalar configuration. The answering knobs travel with the data so
/// a system reopened from disk answers exactly as the one that wrote it.
#[derive(Debug, Clone, PartialEq)]
pub struct ConfigSnap {
    /// Maximum answers returned per question.
    pub answer_limit: u64,
    /// Record-count threshold above which partial (WAND-style) scoring kicks in.
    pub partial_threshold: u64,
    /// Worker threads for partial scoring.
    pub partial_workers: u64,
    /// Answer-cache capacity.
    pub cache_capacity: u64,
    /// Answer-cache shard count.
    pub cache_shards: u64,
    /// Whether partial scoring must remain exhaustive.
    pub partial_exhaustive: bool,
}

/// Durable state of one registered domain.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainSnap {
    /// The domain specification.
    pub spec: SpecData,
    /// Table records in id order.
    pub records: Vec<Record>,
    /// Table generation.
    pub table_gen: u64,
    /// TI-matrix raw accumulators.
    pub ti: TiMatrixState,
    /// Model generation.
    pub model_gen: u64,
}

/// Everything a snapshot file stores.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotData {
    /// Epoch sequence number; must match the sequence in the file name, which
    /// guards against a snapshot file copied or renamed across epochs.
    pub seq: u64,
    /// Every registered domain, sorted by domain name.
    pub domains: Vec<DomainSnap>,
    /// WS-matrix state.
    pub ws: WsMatrixState,
    /// Config scalars.
    pub config: ConfigSnap,
}

impl SnapshotData {
    /// Encode to file bytes: magic, CRC of payload, payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(self.seq);
        e.put_u32(self.domains.len() as u32);
        for d in &self.domains {
            put_spec(&mut e, &d.spec);
            e.put_u32(d.records.len() as u32);
            for r in &d.records {
                put_record(&mut e, r);
            }
            e.put_u64(d.table_gen);
            put_ti(&mut e, &d.ti);
            e.put_u64(d.model_gen);
        }
        put_ws(&mut e, &self.ws);
        let c = &self.config;
        e.put_u64(c.answer_limit);
        e.put_u64(c.partial_threshold);
        e.put_u64(c.partial_workers);
        e.put_u64(c.cache_capacity);
        e.put_u64(c.cache_shards);
        e.put_bool(c.partial_exhaustive);
        let payload = e.finish();

        let mut out = Vec::with_capacity(SNAPSHOT_MAGIC.len() + 4 + payload.len());
        out.extend_from_slice(SNAPSHOT_MAGIC);
        out.extend_from_slice(&crc32(&payload).to_le_bytes());
        out.extend_from_slice(&payload);
        out
    }

    /// Decode file bytes, verifying magic and CRC. `path` is only used for
    /// error context.
    pub fn decode(bytes: &[u8], path: &Path) -> StorageResult<Self> {
        let header = SNAPSHOT_MAGIC.len() + 4;
        if bytes.len() < header {
            return Err(StorageError::Corrupt {
                path: path.display().to_string(),
                offset: 0,
                detail: format!("snapshot shorter than its {header}-byte header"),
            });
        }
        if &bytes[..SNAPSHOT_MAGIC.len()] != SNAPSHOT_MAGIC {
            return Err(StorageError::Corrupt {
                path: path.display().to_string(),
                offset: 0,
                detail: "bad snapshot magic".to_string(),
            });
        }
        let stored = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
        let payload = &bytes[header..];
        let computed = crc32(payload);
        if stored != computed {
            return Err(StorageError::Corrupt {
                path: path.display().to_string(),
                offset: SNAPSHOT_MAGIC.len() as u64,
                detail: format!(
                    "snapshot CRC mismatch: stored {stored:#010x}, computed {computed:#010x}"
                ),
            });
        }
        Self::decode_payload(payload).map_err(|detail| StorageError::Codec {
            path: path.display().to_string(),
            offset: header as u64,
            detail,
        })
    }

    fn decode_payload(payload: &[u8]) -> DecodeResult<Self> {
        let mut d = Decoder::new(payload);
        let seq = d.get_u64("snapshot sequence")?;
        let n = d.get_count("domain count")?;
        let mut domains = Vec::with_capacity(n);
        for _ in 0..n {
            let spec = get_spec(&mut d)?;
            let n_records = d.get_count("record count")?;
            let mut records = Vec::with_capacity(n_records);
            for _ in 0..n_records {
                records.push(get_record(&mut d)?);
            }
            let table_gen = d.get_u64("table generation")?;
            let ti = get_ti(&mut d)?;
            let model_gen = d.get_u64("model generation")?;
            domains.push(DomainSnap {
                spec,
                records,
                table_gen,
                ti,
                model_gen,
            });
        }
        let ws = get_ws(&mut d)?;
        let config = ConfigSnap {
            answer_limit: d.get_u64("answer limit")?,
            partial_threshold: d.get_u64("partial threshold")?,
            partial_workers: d.get_u64("partial workers")?,
            cache_capacity: d.get_u64("cache capacity")?,
            cache_shards: d.get_u64("cache shards")?,
            partial_exhaustive: d.get_bool("partial exhaustive")?,
        };
        if !d.is_done() {
            return Err(format!("{} trailing bytes after snapshot", d.remaining()));
        }
        Ok(SnapshotData {
            seq,
            domains,
            ws,
            config,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use addb::Schema;

    fn sample() -> SnapshotData {
        SnapshotData {
            seq: 3,
            domains: vec![DomainSnap {
                spec: SpecData {
                    schema: Schema::builder("cars")
                        .type1("make")
                        .type3("price", 500.0, 120_000.0, Some("usd"))
                        .build()
                        .unwrap(),
                    type1_values: vec![("honda".into(), "make".into())],
                    type2_values: vec![],
                    type3_keywords: vec![],
                    price_attribute: Some("price".into()),
                    year_attribute: None,
                },
                records: vec![Record::builder()
                    .text("make", "honda")
                    .number("price", 6600.0)
                    .build()],
                table_gen: 1,
                ti: TiMatrixState::default(),
                model_gen: 1,
            }],
            ws: WsMatrixState {
                entries: vec![("blue".into(), "silver".into(), 0.5)],
                max_raw: 0.5,
            },
            config: ConfigSnap {
                answer_limit: 10,
                partial_threshold: 512,
                partial_workers: 1,
                cache_capacity: 1024,
                cache_shards: 8,
                partial_exhaustive: false,
            },
        }
    }

    #[test]
    fn snapshot_round_trips() {
        let snap = sample();
        let bytes = snap.encode();
        assert_eq!(&bytes[..8], SNAPSHOT_MAGIC);
        let back = SnapshotData::decode(&bytes, Path::new("snapshot-000003.bin")).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn corruption_is_detected() {
        let snap = sample();
        let good = snap.encode();
        let path = Path::new("snapshot-000003.bin");

        // Too short.
        assert!(matches!(
            SnapshotData::decode(&good[..4], path),
            Err(StorageError::Corrupt { .. })
        ));

        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            SnapshotData::decode(&bad, path),
            Err(StorageError::Corrupt { .. })
        ));

        // Any single bit flip in the payload trips the CRC.
        let mut bad = good.clone();
        let mid = 12 + (bad.len() - 12) / 2;
        bad[mid] ^= 0x01;
        let err = SnapshotData::decode(&bad, path).unwrap_err();
        assert!(matches!(err, StorageError::Corrupt { .. }));
        assert!(err.to_string().contains("CRC"));

        // Truncated payload with a recomputed CRC is a codec error, not a panic.
        let cut = good.len() - 3;
        let mut truncated = good[..cut].to_vec();
        let crc = crc32(&truncated[12..]);
        truncated[8..12].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            SnapshotData::decode(&truncated, path),
            Err(StorageError::Codec { .. })
        ));
    }
}
