//! Concurrency-primitive facade: `std` atomics in production, miniloom shims
//! under the `miniloom` cargo feature.
//!
//! The [`CircuitBreaker`](crate::retry::CircuitBreaker) imports its atomics
//! from here. With the feature **off** (every production build) this is a
//! plain re-export of [`std::sync::atomic`]; with it **on** (the root test
//! targets — see `tests/interleavings.rs`) every atomic operation becomes a
//! `miniloom::model` yield point, so the breaker's trip/half-open/close
//! protocol is exhaustively interleaved exactly as shipped.

#[cfg(feature = "miniloom")]
pub use miniloom::sync::atomic;

#[cfg(not(feature = "miniloom"))]
pub use std::sync::atomic;
