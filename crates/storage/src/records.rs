//! WAL record model and codec.
//!
//! Every mutation of a [`CqadsSystem`](../../cqads_core) — domain registration,
//! record insert, query-log delta, WS-matrix swap — is one [`WalRecord`],
//! encoded to a frame payload ([`WalRecord::encode`]) and replayed on recovery
//! ([`WalRecord::decode`]). Audit entries ride in the same log but are not
//! mutations ([`WalRecord::is_mutation`] is false for them): they record served
//! queries so the log doubles as a replayable audit trail.
//!
//! Generation stamps are stored **with** the mutation that produced them, and
//! every frame advances any single generation counter by at most one (a batch
//! insert is written as one frame per record, appended in a single write).
//! Recovery relies on this: if `k` bytes of tail are lost, at most
//! `ceil(k / MIN_FRAME_BYTES)` generation bumps can have been handed out past
//! the recovered state, bounding the safety bump that restores the
//! generations-never-regress invariant.

use crate::codec::{DecodeResult, Decoder, Encoder};
use addb::{AttrType, Record, Schema, Value};
use cqads_querylog::{
    ClickEvent, PairState, QueryLogDelta, Session, SubmittedQuery, TiMatrixState,
};
use cqads_wordsim::WsMatrixState;

/// Serializable mirror of a `DomainSpec` (the core crate depends on this crate,
/// not vice versa, so the spec is flattened into plain data here).
#[derive(Debug, Clone, PartialEq)]
pub struct SpecData {
    /// The domain's relational schema.
    pub schema: Schema,
    /// Known Type I values → attribute name.
    pub type1_values: Vec<(String, String)>,
    /// Known Type II values → attribute name.
    pub type2_values: Vec<(String, String)>,
    /// Type III keyword synonyms → attribute name.
    pub type3_keywords: Vec<(String, String)>,
    /// Attribute targeted by "cheapest"-style superlatives.
    pub price_attribute: Option<String>,
    /// Attribute targeted by "newest"/"oldest" superlatives.
    pub year_attribute: Option<String>,
}

/// One served query, appended to the WAL as an audit entry.
#[derive(Debug, Clone, PartialEq)]
pub struct AuditRecord {
    /// The natural-language question as submitted.
    pub question: String,
    /// Domain the question was answered in.
    pub domain: String,
    /// Whether the answer came from the answer cache.
    pub hit: bool,
    /// Table generation at answer time.
    pub table_gen: u64,
    /// Model generation at answer time.
    pub model_gen: u64,
    /// Wall-clock time spent answering, in microseconds.
    pub micros: u64,
}

/// One entry in the write-ahead log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A domain was (re)registered with its table contents and TI-matrix state.
    RegisterDomain {
        /// The domain specification (boxed: this variant dwarfs the others).
        spec: Box<SpecData>,
        /// Full table contents at registration (id order).
        records: Vec<Record>,
        /// TI-matrix raw accumulators at registration.
        ti: TiMatrixState,
        /// Table generation after the registration.
        table_gen: u64,
        /// Model generation after the registration.
        model_gen: u64,
    },
    /// A record was inserted into a domain's table.
    Insert {
        /// Target domain.
        domain: String,
        /// The inserted record.
        record: Record,
        /// Table generation after the insert.
        table_gen: u64,
    },
    /// A query-log delta was applied to a domain's TI-matrix.
    LogDelta {
        /// Target domain.
        domain: String,
        /// The applied sessions.
        delta: QueryLogDelta,
        /// Model generation after the (batch) application.
        model_gen: u64,
    },
    /// The WS-matrix was swapped, refreshing every domain's model.
    SetWordSim {
        /// The new WS-matrix state.
        ws: WsMatrixState,
        /// Model generation of each registered domain after the swap.
        model_gens: Vec<(String, u64)>,
    },
    /// A served query (not a mutation; kept for the audit trail).
    Audit(AuditRecord),
    /// Generation floors persisted after a lossy recovery, so a second
    /// recovery of the same log reproduces the same (bumped) generations.
    Floors {
        /// `(domain, table_gen, model_gen)` floors.
        floors: Vec<(String, u64, u64)>,
    },
}

impl WalRecord {
    /// True if replaying this record changes system state (audit entries and
    /// generation floors do not mutate data, though floors do raise counters).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, WalRecord::Audit(_) | WalRecord::Floors { .. })
    }

    /// Encode to a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            WalRecord::RegisterDomain {
                spec,
                records,
                ti,
                table_gen,
                model_gen,
            } => {
                e.put_u8(TAG_REGISTER);
                put_spec(&mut e, spec);
                e.put_u32(records.len() as u32);
                for r in records {
                    put_record(&mut e, r);
                }
                put_ti(&mut e, ti);
                e.put_u64(*table_gen);
                e.put_u64(*model_gen);
            }
            WalRecord::Insert {
                domain,
                record,
                table_gen,
            } => {
                e.put_u8(TAG_INSERT);
                e.put_str(domain);
                put_record(&mut e, record);
                e.put_u64(*table_gen);
            }
            WalRecord::LogDelta {
                domain,
                delta,
                model_gen,
            } => {
                e.put_u8(TAG_LOG_DELTA);
                e.put_str(domain);
                e.put_u32(delta.sessions.len() as u32);
                for s in &delta.sessions {
                    put_session(&mut e, s);
                }
                e.put_u64(*model_gen);
            }
            WalRecord::SetWordSim { ws, model_gens } => {
                e.put_u8(TAG_SET_WORD_SIM);
                put_ws(&mut e, ws);
                e.put_u32(model_gens.len() as u32);
                for (domain, gen) in model_gens {
                    e.put_str(domain);
                    e.put_u64(*gen);
                }
            }
            WalRecord::Audit(a) => {
                e.put_u8(TAG_AUDIT);
                e.put_str(&a.question);
                e.put_str(&a.domain);
                e.put_bool(a.hit);
                e.put_u64(a.table_gen);
                e.put_u64(a.model_gen);
                e.put_u64(a.micros);
            }
            WalRecord::Floors { floors } => {
                e.put_u8(TAG_FLOORS);
                e.put_u32(floors.len() as u32);
                for (domain, tg, mg) in floors {
                    e.put_str(domain);
                    e.put_u64(*tg);
                    e.put_u64(*mg);
                }
            }
        }
        e.finish()
    }

    /// Decode a frame payload. The payload has already passed its CRC check,
    /// so a failure here means a codec/version mismatch, which recovery treats
    /// as corruption at the frame's offset.
    pub fn decode(payload: &[u8]) -> DecodeResult<Self> {
        let mut d = Decoder::new(payload);
        let rec = match d.get_u8("record tag")? {
            TAG_REGISTER => {
                let spec = get_spec(&mut d)?;
                let n = d.get_count("record count")?;
                let mut records = Vec::with_capacity(n);
                for _ in 0..n {
                    records.push(get_record(&mut d)?);
                }
                let ti = get_ti(&mut d)?;
                WalRecord::RegisterDomain {
                    spec: Box::new(spec),
                    records,
                    ti,
                    table_gen: d.get_u64("table generation")?,
                    model_gen: d.get_u64("model generation")?,
                }
            }
            TAG_INSERT => WalRecord::Insert {
                domain: d.get_str("domain")?,
                record: get_record(&mut d)?,
                table_gen: d.get_u64("table generation")?,
            },
            TAG_LOG_DELTA => {
                let domain = d.get_str("domain")?;
                let n = d.get_count("session count")?;
                let mut sessions = Vec::with_capacity(n);
                for _ in 0..n {
                    sessions.push(get_session(&mut d)?);
                }
                WalRecord::LogDelta {
                    domain,
                    delta: QueryLogDelta::from_sessions(sessions),
                    model_gen: d.get_u64("model generation")?,
                }
            }
            TAG_SET_WORD_SIM => {
                let ws = get_ws(&mut d)?;
                let n = d.get_count("model generation count")?;
                let mut model_gens = Vec::with_capacity(n);
                for _ in 0..n {
                    model_gens.push((d.get_str("domain")?, d.get_u64("model generation")?));
                }
                WalRecord::SetWordSim { ws, model_gens }
            }
            TAG_AUDIT => WalRecord::Audit(AuditRecord {
                question: d.get_str("question")?,
                domain: d.get_str("domain")?,
                hit: d.get_bool("cache hit")?,
                table_gen: d.get_u64("table generation")?,
                model_gen: d.get_u64("model generation")?,
                micros: d.get_u64("answer micros")?,
            }),
            TAG_FLOORS => {
                let n = d.get_count("floor count")?;
                let mut floors = Vec::with_capacity(n);
                for _ in 0..n {
                    floors.push((
                        d.get_str("domain")?,
                        d.get_u64("table generation floor")?,
                        d.get_u64("model generation floor")?,
                    ));
                }
                WalRecord::Floors { floors }
            }
            other => return Err(format!("unknown WAL record tag {other}")),
        };
        if !d.is_done() {
            return Err(format!("{} trailing bytes after WAL record", d.remaining()));
        }
        Ok(rec)
    }
}

const TAG_REGISTER: u8 = 1;
const TAG_INSERT: u8 = 2;
const TAG_LOG_DELTA: u8 = 3;
const TAG_SET_WORD_SIM: u8 = 4;
const TAG_AUDIT: u8 = 5;
const TAG_FLOORS: u8 = 6;

const VALUE_TEXT: u8 = 0;
const VALUE_NUMBER: u8 = 1;

const ATTR_TYPE1: u8 = 1;
const ATTR_TYPE2: u8 = 2;
const ATTR_TYPE3: u8 = 3;

pub(crate) fn put_record(e: &mut Encoder, record: &Record) {
    e.put_u32(record.len() as u32);
    for (name, value) in record.fields() {
        e.put_str(name);
        match value {
            Value::Text(s) => {
                e.put_u8(VALUE_TEXT);
                e.put_str(s);
            }
            Value::Number(n) => {
                e.put_u8(VALUE_NUMBER);
                e.put_f64(*n);
            }
        }
    }
}

pub(crate) fn get_record(d: &mut Decoder<'_>) -> DecodeResult<Record> {
    let n = d.get_count("record field count")?;
    let mut record = Record::default();
    for _ in 0..n {
        let name = d.get_str("attribute name")?;
        match d.get_u8("value tag")? {
            // Stored text was already normalized on the original insert, so it
            // is restored verbatim rather than re-normalized.
            VALUE_TEXT => record.set(name, Value::Text(d.get_str("text value")?)),
            VALUE_NUMBER => record.set(name, Value::Number(d.get_f64("numeric value")?)),
            other => return Err(format!("unknown value tag {other}")),
        }
    }
    Ok(record)
}

pub(crate) fn put_spec(e: &mut Encoder, spec: &SpecData) {
    put_schema(e, &spec.schema);
    for pairs in [&spec.type1_values, &spec.type2_values, &spec.type3_keywords] {
        e.put_u32(pairs.len() as u32);
        for (k, v) in pairs {
            e.put_str(k);
            e.put_str(v);
        }
    }
    e.put_opt_str(spec.price_attribute.as_deref());
    e.put_opt_str(spec.year_attribute.as_deref());
}

pub(crate) fn get_spec(d: &mut Decoder<'_>) -> DecodeResult<SpecData> {
    let schema = get_schema(d)?;
    let mut groups: [Vec<(String, String)>; 3] = [Vec::new(), Vec::new(), Vec::new()];
    for group in &mut groups {
        let n = d.get_count("value pair count")?;
        for _ in 0..n {
            group.push((d.get_str("value")?, d.get_str("attribute")?));
        }
    }
    let [type1_values, type2_values, type3_keywords] = groups;
    Ok(SpecData {
        schema,
        type1_values,
        type2_values,
        type3_keywords,
        price_attribute: d.get_opt_str("price attribute")?,
        year_attribute: d.get_opt_str("year attribute")?,
    })
}

fn put_schema(e: &mut Encoder, schema: &Schema) {
    e.put_str(&schema.name);
    e.put_u32(schema.attributes().len() as u32);
    for attr in schema.attributes() {
        e.put_str(&attr.name);
        e.put_u8(match attr.attr_type {
            AttrType::TypeI => ATTR_TYPE1,
            AttrType::TypeII => ATTR_TYPE2,
            AttrType::TypeIII => ATTR_TYPE3,
        });
        match attr.range {
            Some((lo, hi)) => {
                e.put_bool(true);
                e.put_f64(lo);
                e.put_f64(hi);
            }
            None => e.put_bool(false),
        }
        e.put_opt_str(attr.unit.as_deref());
    }
}

fn get_schema(d: &mut Decoder<'_>) -> DecodeResult<Schema> {
    let name = d.get_str("schema name")?;
    let n = d.get_count("attribute count")?;
    let mut builder = Schema::builder(name);
    for _ in 0..n {
        let attr_name = d.get_str("attribute name")?;
        let tag = d.get_u8("attribute type")?;
        let range = if d.get_bool("range presence")? {
            Some((d.get_f64("range low")?, d.get_f64("range high")?))
        } else {
            None
        };
        let unit = d.get_opt_str("attribute unit")?;
        builder = match tag {
            ATTR_TYPE1 => builder.type1(attr_name),
            ATTR_TYPE2 => builder.type2(attr_name),
            ATTR_TYPE3 => {
                let (lo, hi) =
                    range.ok_or_else(|| format!("Type III `{attr_name}` missing range"))?;
                builder.type3(attr_name, lo, hi, unit.as_deref())
            }
            other => return Err(format!("unknown attribute type tag {other}")),
        };
    }
    builder
        .build()
        .map_err(|e| format!("persisted schema failed validation: {e}"))
}

fn put_session(e: &mut Encoder, s: &Session) {
    e.put_u64(s.user_id);
    e.put_u32(s.queries.len() as u32);
    for q in &s.queries {
        e.put_str(&q.value);
        e.put_f64(q.at_seconds);
        e.put_u32(q.clicks.len() as u32);
        for c in &q.clicks {
            e.put_str(&c.ad_value);
            e.put_u32(c.rank);
            e.put_f64(c.dwell_seconds);
        }
        e.put_u32(q.shown.len() as u32);
        for shown in &q.shown {
            e.put_str(shown);
        }
    }
}

fn get_session(d: &mut Decoder<'_>) -> DecodeResult<Session> {
    let user_id = d.get_u64("user id")?;
    let n = d.get_count("query count")?;
    let mut queries = Vec::with_capacity(n);
    for _ in 0..n {
        let value = d.get_str("query value")?;
        let at_seconds = d.get_f64("query time")?;
        let n_clicks = d.get_count("click count")?;
        let mut clicks = Vec::with_capacity(n_clicks);
        for _ in 0..n_clicks {
            clicks.push(ClickEvent {
                ad_value: d.get_str("clicked ad value")?,
                rank: d.get_u32("click rank")?,
                dwell_seconds: d.get_f64("dwell seconds")?,
            });
        }
        let n_shown = d.get_count("shown count")?;
        let mut shown = Vec::with_capacity(n_shown);
        for _ in 0..n_shown {
            shown.push(d.get_str("shown value")?);
        }
        queries.push(SubmittedQuery {
            value,
            at_seconds,
            clicks,
            shown,
        });
    }
    Ok(Session { user_id, queries })
}

pub(crate) fn put_ti(e: &mut Encoder, ti: &TiMatrixState) {
    e.put_u32(ti.pairs.len() as u32);
    for p in &ti.pairs {
        e.put_str(&p.a);
        e.put_str(&p.b);
        for v in [
            p.mod_count,
            p.time_sum,
            p.time_n,
            p.ad_time_sum,
            p.ad_time_n,
            p.rank_sum,
            p.rank_n,
            p.click_count,
        ] {
            e.put_f64(v);
        }
    }
    e.put_u32(ti.manual.len() as u32);
    for (a, b, sim) in &ti.manual {
        e.put_str(a);
        e.put_str(b);
        e.put_f64(*sim);
    }
}

pub(crate) fn get_ti(d: &mut Decoder<'_>) -> DecodeResult<TiMatrixState> {
    let n = d.get_count("TI pair count")?;
    let mut pairs = Vec::with_capacity(n);
    for _ in 0..n {
        pairs.push(PairState {
            a: d.get_str("pair value a")?,
            b: d.get_str("pair value b")?,
            mod_count: d.get_f64("mod count")?,
            time_sum: d.get_f64("time sum")?,
            time_n: d.get_f64("time n")?,
            ad_time_sum: d.get_f64("ad time sum")?,
            ad_time_n: d.get_f64("ad time n")?,
            rank_sum: d.get_f64("rank sum")?,
            rank_n: d.get_f64("rank n")?,
            click_count: d.get_f64("click count")?,
        });
    }
    let n = d.get_count("manual override count")?;
    let mut manual = Vec::with_capacity(n);
    for _ in 0..n {
        manual.push((
            d.get_str("manual value a")?,
            d.get_str("manual value b")?,
            d.get_f64("manual similarity")?,
        ));
    }
    Ok(TiMatrixState { pairs, manual })
}

pub(crate) fn put_ws(e: &mut Encoder, ws: &WsMatrixState) {
    e.put_u32(ws.entries.len() as u32);
    for (a, b, raw) in &ws.entries {
        e.put_str(a);
        e.put_str(b);
        e.put_f64(*raw);
    }
    e.put_f64(ws.max_raw);
}

pub(crate) fn get_ws(d: &mut Decoder<'_>) -> DecodeResult<WsMatrixState> {
    let n = d.get_count("WS entry count")?;
    let mut entries = Vec::with_capacity(n);
    for _ in 0..n {
        entries.push((
            d.get_str("WS stem a")?,
            d.get_str("WS stem b")?,
            d.get_f64("WS raw score")?,
        ));
    }
    Ok(WsMatrixState {
        entries,
        max_raw: d.get_f64("WS max raw")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> SpecData {
        SpecData {
            schema: Schema::builder("cars")
                .type1("make")
                .type1("model")
                .type2("color")
                .type3("price", 500.0, 120_000.0, Some("usd"))
                .build()
                .unwrap(),
            type1_values: vec![
                ("accord".into(), "model".into()),
                ("honda".into(), "make".into()),
            ],
            type2_values: vec![("blue".into(), "color".into())],
            type3_keywords: vec![("cost".into(), "price".into())],
            price_attribute: Some("price".into()),
            year_attribute: None,
        }
    }

    fn sample_session() -> Session {
        Session {
            user_id: 42,
            queries: vec![SubmittedQuery {
                value: "accord".into(),
                at_seconds: 1.5,
                clicks: vec![ClickEvent {
                    ad_value: "camry".into(),
                    rank: 2,
                    dwell_seconds: 30.0,
                }],
                shown: vec!["accord".into(), "camry".into()],
            }],
        }
    }

    fn all_variants() -> Vec<WalRecord> {
        vec![
            WalRecord::RegisterDomain {
                spec: Box::new(sample_spec()),
                records: vec![Record::builder()
                    .text("make", "honda")
                    .text("model", "accord")
                    .number("price", 6600.0)
                    .build()],
                ti: TiMatrixState {
                    pairs: vec![PairState {
                        a: "accord".into(),
                        b: "camry".into(),
                        mod_count: 3.0,
                        time_sum: 12.5,
                        time_n: 2.0,
                        ad_time_sum: 60.0,
                        ad_time_n: 2.0,
                        rank_sum: 5.0,
                        rank_n: 2.0,
                        click_count: 1.0,
                    }],
                    manual: vec![("accord".into(), "civic".into(), 0.8)],
                },
                table_gen: 1,
                model_gen: 1,
            },
            WalRecord::Insert {
                domain: "cars".into(),
                record: Record::builder()
                    .text("make", "toyota")
                    .text("model", "camry")
                    .build(),
                table_gen: 2,
            },
            WalRecord::LogDelta {
                domain: "cars".into(),
                delta: QueryLogDelta::from_sessions(vec![sample_session()]),
                model_gen: 2,
            },
            WalRecord::SetWordSim {
                ws: WsMatrixState {
                    entries: vec![("blue".into(), "silver".into(), 0.4)],
                    max_raw: 0.4,
                },
                model_gens: vec![("cars".into(), 3)],
            },
            WalRecord::Audit(AuditRecord {
                question: "2004 honda accord".into(),
                domain: "cars".into(),
                hit: false,
                table_gen: 2,
                model_gen: 3,
                micros: 1234,
            }),
            WalRecord::Floors {
                floors: vec![("cars".into(), 5, 7)],
            },
        ]
    }

    #[test]
    fn every_variant_round_trips() {
        for rec in all_variants() {
            let payload = rec.encode();
            let back = WalRecord::decode(&payload).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn mutation_classification_is_correct() {
        let flags: Vec<bool> = all_variants().iter().map(WalRecord::is_mutation).collect();
        assert_eq!(flags, vec![true, true, true, true, false, false]);
    }

    #[test]
    fn truncated_or_garbled_payloads_are_rejected() {
        for rec in all_variants() {
            let payload = rec.encode();
            // Every strict prefix must fail to decode — no silent partial reads.
            for cut in 0..payload.len() {
                assert!(
                    WalRecord::decode(&payload[..cut]).is_err(),
                    "prefix of length {cut} decoded unexpectedly"
                );
            }
        }
        assert!(WalRecord::decode(&[99]).unwrap_err().contains("unknown"));
        // Trailing garbage after a complete record is rejected.
        let mut payload = all_variants()[4].encode();
        payload.push(0);
        assert!(WalRecord::decode(&payload)
            .unwrap_err()
            .contains("trailing"));
    }

    #[test]
    fn record_values_restore_verbatim() {
        let mut rec = Record::default();
        rec.set("note", Value::Text("multi word value".into()));
        rec.set("price", Value::Number(-0.0));
        let mut e = Encoder::new();
        put_record(&mut e, &rec);
        let bytes = e.finish();
        let back = get_record(&mut Decoder::new(&bytes)).unwrap();
        assert_eq!(back, rec);
        assert_eq!(
            back.get_number("price").unwrap().to_bits(),
            (-0.0f64).to_bits()
        );
    }

    #[test]
    fn persisted_schema_is_validated_on_decode() {
        // A Type III attribute without a range cannot be rebuilt.
        let mut e = Encoder::new();
        e.put_str("bad");
        e.put_u32(1);
        e.put_str("price");
        e.put_u8(ATTR_TYPE3);
        e.put_bool(false); // no range
        e.put_opt_str(None);
        let bytes = e.finish();
        let err = get_schema(&mut Decoder::new(&bytes)).unwrap_err();
        assert!(err.contains("missing range"));
    }
}
