//! Virtual filesystem behind the storage engine.
//!
//! The engine talks to storage exclusively through the [`Vfs`] trait, so the
//! same recovery code runs against the real filesystem ([`RealFs`]), an
//! in-memory store ([`MemFs`], which tests share across simulated crashes and
//! tamper with at byte granularity), and the fault-injecting wrapper
//! ([`FaultFs`](crate::FaultFs)).

use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// Filesystem operations the storage engine needs. All methods are
/// whole-file or append-oriented — the engine never seeks.
pub trait Vfs: Send + Sync + std::fmt::Debug {
    /// Read a whole file.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;
    /// Replace a file's contents atomically (write to a sibling temp file,
    /// then rename over the target).
    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Append bytes to a file, creating it if missing.
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;
    /// Force file contents to stable storage (`fsync`).
    fn sync(&self, path: &Path) -> io::Result<()>;
    /// File names (not full paths) directly inside a directory.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;
    /// Delete a file.
    fn remove_file(&self, path: &Path) -> io::Result<()>;
    /// Create a directory and its parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;
    /// Length of a file in bytes, `None` when it does not exist.
    fn file_len(&self, path: &Path) -> io::Result<Option<u64>>;
}

/// The real operating-system filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealFs;

impl Vfs for RealFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let tmp = path.with_extension("tmp");
        {
            use std::io::Write;
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, path)?;
        // Persist the rename itself; a directory fsync failing is reported, not
        // ignored — the caller decides how to degrade.
        if let Some(dir) = path.parent() {
            std::fs::File::open(dir)?.sync_all()?;
        }
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(path)?;
        f.write_all(data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .append(true)
            .open(path)?
            .sync_all()
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            if let Some(name) = entry?.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        match std::fs::metadata(path) {
            Ok(m) => Ok(Some(m.len())),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// In-memory filesystem shared behind an `Arc`.
///
/// Crash simulation: the test drops the engine (losing every in-memory
/// structure) while keeping the `Arc<MemFs>`, optionally cuts or flips bytes
/// with the tamper helpers below, and reopens the engine over the same store —
/// exactly what a process kill followed by a restart does to a real disk.
#[derive(Debug, Default)]
pub struct MemFs {
    files: Mutex<BTreeMap<PathBuf, Vec<u8>>>,
}

impl MemFs {
    /// Fresh, empty store.
    pub fn new() -> Self {
        MemFs::default()
    }

    fn with_files<T>(&self, f: impl FnOnce(&mut BTreeMap<PathBuf, Vec<u8>>) -> T) -> T {
        let mut guard = match self.files.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        f(&mut guard)
    }

    /// Tamper helper: cut a file to `len` bytes (simulates a crash mid-write /
    /// lost tail). No-op when the file is already shorter; error when missing.
    pub fn truncate_file(&self, path: &Path, len: u64) -> io::Result<()> {
        self.with_files(|files| match files.get_mut(path) {
            Some(data) => {
                data.truncate(len as usize);
                Ok(())
            }
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        })
    }

    /// Tamper helper: flip one bit of a file (simulates bit rot).
    pub fn flip_bit(&self, path: &Path, byte_offset: u64) -> io::Result<()> {
        self.with_files(|files| match files.get_mut(path) {
            Some(data) => match data.get_mut(byte_offset as usize) {
                Some(b) => {
                    *b ^= 0x01;
                    Ok(())
                }
                None => Err(io::Error::new(
                    io::ErrorKind::InvalidInput,
                    "offset past end",
                )),
            },
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        })
    }

    /// Tamper helper: current contents of a file, if present.
    pub fn file_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.with_files(|files| files.get(path).cloned())
    }

    /// Full paths of every stored file (sorted).
    pub fn paths(&self) -> Vec<PathBuf> {
        self.with_files(|files| files.keys().cloned().collect())
    }
}

impl Vfs for MemFs {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.with_files(|files| {
            files
                .get(path)
                .cloned()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "no such file"))
        })
    }

    fn write_atomic(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.with_files(|files| {
            files.insert(path.to_path_buf(), data.to_vec());
            Ok(())
        })
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.with_files(|files| {
            files
                .entry(path.to_path_buf())
                .or_default()
                .extend_from_slice(data);
            Ok(())
        })
    }

    fn sync(&self, _path: &Path) -> io::Result<()> {
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.with_files(|files| {
            let mut names: Vec<String> = files
                .keys()
                .filter(|p| p.parent() == Some(dir))
                .filter_map(|p| p.file_name().and_then(|n| n.to_str()).map(String::from))
                .collect();
            names.sort();
            Ok(names)
        })
    }

    fn remove_file(&self, path: &Path) -> io::Result<()> {
        self.with_files(|files| match files.remove(path) {
            Some(_) => Ok(()),
            None => Err(io::Error::new(io::ErrorKind::NotFound, "no such file")),
        })
    }

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn file_len(&self, path: &Path) -> io::Result<Option<u64>> {
        self.with_files(|files| Ok(files.get(path).map(|d| d.len() as u64)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_append_read_list_and_remove() {
        let fs = MemFs::new();
        let dir = Path::new("/db");
        let file = dir.join("wal-000000.log");
        fs.create_dir_all(dir).unwrap();
        assert_eq!(fs.file_len(&file).unwrap(), None);
        fs.append(&file, b"abc").unwrap();
        fs.append(&file, b"def").unwrap();
        assert_eq!(fs.read(&file).unwrap(), b"abcdef");
        assert_eq!(fs.file_len(&file).unwrap(), Some(6));
        assert_eq!(fs.list(dir).unwrap(), vec!["wal-000000.log"]);
        fs.sync(&file).unwrap();

        fs.write_atomic(&file, b"xy").unwrap();
        assert_eq!(fs.read(&file).unwrap(), b"xy");

        fs.remove_file(&file).unwrap();
        assert!(fs.read(&file).is_err());
        assert!(fs.remove_file(&file).is_err());
    }

    #[test]
    fn memfs_tamper_helpers_cut_and_flip() {
        let fs = MemFs::new();
        let file = Path::new("/db/wal-000000.log");
        fs.append(file, &[0b0000_0000, 0b1111_1111]).unwrap();
        fs.flip_bit(file, 0).unwrap();
        assert_eq!(fs.file_bytes(file).unwrap(), vec![0b0000_0001, 0b1111_1111]);
        fs.truncate_file(file, 1).unwrap();
        assert_eq!(fs.read(file).unwrap(), vec![0b0000_0001]);
        assert!(fs.flip_bit(file, 9).is_err());
        assert!(fs.truncate_file(Path::new("/nope"), 0).is_err());
        assert_eq!(fs.paths(), vec![PathBuf::from("/db/wal-000000.log")]);
    }

    #[test]
    fn realfs_round_trips_in_temp_dir() {
        let dir = std::env::temp_dir().join(format!(
            "cqads-vfs-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let fs = RealFs;
        fs.create_dir_all(&dir).unwrap();
        let file = dir.join("wal-000000.log");
        fs.append(&file, b"hello ").unwrap();
        fs.append(&file, b"world").unwrap();
        fs.sync(&file).unwrap();
        assert_eq!(fs.read(&file).unwrap(), b"hello world");
        assert_eq!(fs.file_len(&file).unwrap(), Some(11));
        assert!(fs.list(&dir).unwrap().contains(&"wal-000000.log".into()));
        fs.write_atomic(&file, b"replaced").unwrap();
        assert_eq!(fs.read(&file).unwrap(), b"replaced");
        fs.remove_file(&file).unwrap();
        assert_eq!(fs.file_len(&file).unwrap(), None);
        std::fs::remove_dir_all(&dir).ok();
    }
}
