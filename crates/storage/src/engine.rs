//! The storage engine: generational WAL files + snapshots + recovery.
//!
//! # On-disk layout
//!
//! The storage directory holds numbered *epochs*:
//!
//! ```text
//! snapshot-000002.bin   state at the START of epoch 2 (= end of wal-000001.log)
//! wal-000002.log        frames appended during epoch 2
//! ```
//!
//! Epoch 0 has no snapshot — its starting state is the implicit empty system.
//! Rotation ([`StorageEngine::install_snapshot`]) writes `snapshot-(n+1)`
//! atomically, then switches appends to `wal-(n+1)`; the previous epoch's
//! snapshot and WAL are retained as a fallback until the *next* rotation, so a
//! snapshot that turns out corrupt on reopen never strands the database.
//!
//! # Recovery
//!
//! [`StorageEngine::open`] picks the highest snapshot that decodes cleanly
//! (falling back epoch by epoch, ultimately to empty), then replays the
//! contiguous chain of WAL files from that epoch forward. The first defect —
//! torn frame, CRC mismatch, undecodable record, missing file in the chain —
//! ends the replay: the defective file is truncated to its valid prefix and
//! later files are dropped, because nothing after a hole can be trusted to be
//! causally consistent. Every dropped byte is counted, and the report's
//! [`generation_safety_bump`](RecoveryReport::generation_safety_bump) bounds
//! how many generation stamps the lost tail could have handed out: each frame
//! advances any one counter by at most 1 and occupies at least
//! [`MIN_FRAME_BYTES`] bytes.

use crate::error::{StorageError, StorageResult};
use crate::records::{AuditRecord, WalRecord};
use crate::snapshot::SnapshotData;
use crate::vfs::Vfs;
use crate::wal::{encode_frame, scan_frames, MIN_FRAME_BYTES};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// What [`StorageEngine::open`] reconstructed from disk.
#[derive(Debug)]
pub struct Recovered {
    /// The snapshot recovery started from (`None` = implicit empty state).
    pub snapshot: Option<SnapshotData>,
    /// WAL records to replay on top of the snapshot, in append order.
    pub records: Vec<WalRecord>,
    /// What recovery saw and did.
    pub report: RecoveryReport,
}

/// Diagnostic summary of one recovery.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveryReport {
    /// Epoch of the snapshot recovery started from (`None` = empty state).
    pub snapshot_seq: Option<u64>,
    /// Valid WAL frames replayed on top of the snapshot.
    pub frames_replayed: usize,
    /// Bytes discarded: torn tails plus WAL files past the first defect.
    pub dropped_bytes: u64,
    /// Human-readable description of every defect encountered (torn tails,
    /// corrupt snapshots that were skipped, dropped files).
    pub defects: Vec<String>,
    /// `ceil(dropped_bytes / MIN_FRAME_BYTES)` when any byte was dropped: an
    /// upper bound on how many generation bumps the lost tail could have
    /// produced. The system raises every recovered generation counter by this
    /// much so no stamp handed out before the crash exceeds a recovered one.
    pub generation_safety_bump: u64,
}

impl RecoveryReport {
    /// True when recovery found the directory byte-perfect.
    pub fn is_clean(&self) -> bool {
        self.defects.is_empty() && self.dropped_bytes == 0
    }
}

/// Append-side handle to the WAL + snapshot directory.
///
/// The engine is deliberately oblivious to what the records *mean* — it moves
/// validated frames in and out. Interpretation (replay, generation floors)
/// lives with the caller, which keeps this crate free of a dependency on the
/// core system and lets the fault-injection tests drive it directly.
#[derive(Debug)]
pub struct StorageEngine {
    vfs: Arc<dyn Vfs>,
    root: PathBuf,
    fsync: bool,
    seq: u64,
    mutation_frames: u64,
    /// Bytes of the current WAL file covered by *acknowledged* appends. A
    /// failed append may leave bytes past this point (a torn frame, or a whole
    /// frame whose fsync failed); [`StorageEngine::rewind_wal`] rolls the file
    /// back here so the caller can retry the same records exactly once.
    wal_len: u64,
}

fn wal_name(seq: u64) -> String {
    format!("wal-{seq:06}.log")
}

fn snapshot_name(seq: u64) -> String {
    format!("snapshot-{seq:06}.bin")
}

fn parse_seq(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(suffix)?
        .parse()
        .ok()
}

impl StorageEngine {
    /// Open (or initialize) a storage directory and recover its state.
    ///
    /// Never panics on damaged input: every defect is either repaired
    /// (truncated to the valid prefix) or reported via the recovery report,
    /// and only environmental I/O failures surface as errors.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        root: impl Into<PathBuf>,
        fsync: bool,
    ) -> StorageResult<(Self, Recovered)> {
        let root = root.into();
        vfs.create_dir_all(&root)
            .map_err(|e| StorageError::io(&root, "create_dir_all", &e))?;
        let names = vfs
            .list(&root)
            .map_err(|e| StorageError::io(&root, "list", &e))?;

        let mut snapshot_seqs: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_seq(n, "snapshot-", ".bin"))
            .collect();
        let mut wal_seqs: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_seq(n, "wal-", ".log"))
            .collect();
        snapshot_seqs.sort_unstable();
        wal_seqs.sort_unstable();

        let mut report = RecoveryReport::default();

        // Highest snapshot that decodes cleanly wins; corrupt ones are skipped
        // (the previous epoch is retained on disk exactly for this fallback).
        let mut snapshot = None;
        for &seq in snapshot_seqs.iter().rev() {
            let path = root.join(snapshot_name(seq));
            let bytes = vfs
                .read(&path)
                .map_err(|e| StorageError::io(&path, "read", &e))?;
            match SnapshotData::decode(&bytes, &path) {
                Ok(snap) if snap.seq == seq => {
                    snapshot = Some(snap);
                    break;
                }
                Ok(snap) => report.defects.push(format!(
                    "{}: sequence mismatch (file {seq}, payload {})",
                    path.display(),
                    snap.seq
                )),
                Err(e) => report.defects.push(e.to_string()),
            }
        }
        let base_seq = snapshot.as_ref().map(|s| s.seq).unwrap_or(0);
        report.snapshot_seq = snapshot.as_ref().map(|s| s.seq);

        // Replay the contiguous WAL chain from the snapshot's epoch forward.
        let mut records = Vec::new();
        let mut current_seq = base_seq;
        let mut current_mutations = 0u64;
        let mut current_len = 0u64;
        let mut stopped = false;
        for seq in base_seq.. {
            let path = root.join(wal_name(seq));
            let exists = vfs
                .file_len(&path)
                .map_err(|e| StorageError::io(&path, "stat", &e))?
                .is_some();
            if !exists {
                // End of the chain. wal-(base_seq) may simply not exist yet
                // when the snapshot was the last write before the crash.
                break;
            }
            current_seq = seq;
            current_mutations = 0;
            let bytes = vfs
                .read(&path)
                .map_err(|e| StorageError::io(&path, "read", &e))?;
            current_len = bytes.len() as u64;
            let scan = scan_frames(&bytes);
            let mut valid_len = scan.valid_len;
            let mut defect = scan
                .defect
                .map(|d| format!("{}: {d} at offset {valid_len}", path.display()));
            for (payload, offset) in scan.payloads.iter().zip(&scan.offsets) {
                match WalRecord::decode(payload) {
                    Ok(rec) => {
                        if rec.is_mutation() {
                            current_mutations += 1;
                        }
                        records.push(rec);
                        report.frames_replayed += 1;
                    }
                    Err(e) => {
                        // A CRC-valid frame that no longer decodes is
                        // corruption too; everything from it onward is cut.
                        valid_len = *offset;
                        defect = Some(format!(
                            "{}: undecodable record at offset {offset}: {e}",
                            path.display()
                        ));
                        break;
                    }
                }
            }
            if let Some(detail) = defect {
                report.dropped_bytes += bytes.len() as u64 - valid_len;
                report.defects.push(detail);
                vfs.write_atomic(&path, &bytes[..valid_len as usize])
                    .map_err(|e| StorageError::io(&path, "truncate", &e))?;
                current_len = valid_len;
                stopped = true;
                break;
            }
        }
        if stopped {
            // Nothing after a hole is causally trustworthy: drop later files.
            for &seq in wal_seqs.iter().filter(|&&s| s > current_seq) {
                let path = root.join(wal_name(seq));
                if let Some(len) = vfs
                    .file_len(&path)
                    .map_err(|e| StorageError::io(&path, "stat", &e))?
                {
                    report.dropped_bytes += len;
                    report.defects.push(format!(
                        "{}: dropped (follows a torn epoch)",
                        path.display()
                    ));
                    vfs.remove_file(&path)
                        .map_err(|e| StorageError::io(&path, "remove", &e))?;
                }
            }
        }
        if report.dropped_bytes > 0 {
            report.generation_safety_bump = report.dropped_bytes.div_ceil(MIN_FRAME_BYTES);
        }

        let engine = StorageEngine {
            vfs,
            root,
            fsync,
            seq: current_seq,
            mutation_frames: current_mutations,
            wal_len: current_len,
        };
        Ok((
            engine,
            Recovered {
                snapshot,
                records,
                report,
            },
        ))
    }

    /// Directory this engine writes to.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Current epoch sequence number.
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Mutation frames appended to the current epoch's WAL (replayed frames
    /// count too) — the auto-snapshot trigger compares this to its threshold.
    pub fn mutation_frames(&self) -> u64 {
        self.mutation_frames
    }

    fn wal_path(&self) -> PathBuf {
        self.root.join(wal_name(self.seq))
    }

    /// Append one record to the current WAL file (one frame, one write, one
    /// fsync when enabled).
    pub fn append(&mut self, record: &WalRecord) -> StorageResult<()> {
        self.append_batch(std::slice::from_ref(record))
    }

    /// Append several records as consecutive frames in a **single** write (and
    /// a single fsync when enabled). A torn write can cut the byte sequence at
    /// any point, but recovery truncates to the last whole frame, so a batch
    /// survives as a prefix of itself — never as interleaved fragments.
    pub fn append_batch(&mut self, records: &[WalRecord]) -> StorageResult<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut buf = Vec::new();
        let mut mutations = 0u64;
        for record in records {
            buf.extend_from_slice(&encode_frame(&record.encode()));
            if record.is_mutation() {
                mutations += 1;
            }
        }
        let path = self.wal_path();
        self.vfs
            .append(&path, &buf)
            .map_err(|e| StorageError::io(&path, "append", &e))?;
        if self.fsync {
            self.vfs
                .sync(&path)
                .map_err(|e| StorageError::io(&path, "fsync", &e))?;
        }
        self.mutation_frames += mutations;
        self.wal_len += buf.len() as u64;
        Ok(())
    }

    /// Bytes of the current WAL file covered by acknowledged appends.
    pub fn wal_len(&self) -> u64 {
        self.wal_len
    }

    /// Roll the current WAL file back to the end of the last acknowledged
    /// append, discarding whatever a failed append left behind (a torn frame,
    /// or whole frames whose fsync failed). After a successful rewind the same
    /// records can be re-appended without any risk of frame duplication —
    /// which is exactly what the retry layer does between attempts. A no-op
    /// when nothing dangles.
    pub fn rewind_wal(&mut self) -> StorageResult<()> {
        let path = self.wal_path();
        let on_disk = self
            .vfs
            .file_len(&path)
            .map_err(|e| StorageError::io(&path, "stat", &e))?;
        let Some(on_disk) = on_disk else {
            // The file does not exist: nothing was ever appended this epoch.
            return Ok(());
        };
        if on_disk <= self.wal_len {
            return Ok(());
        }
        let bytes = self
            .vfs
            .read(&path)
            .map_err(|e| StorageError::io(&path, "read", &e))?;
        let keep = (self.wal_len as usize).min(bytes.len());
        self.vfs
            .write_atomic(&path, &bytes[..keep])
            .map_err(|e| StorageError::io(&path, "truncate", &e))?;
        Ok(())
    }

    /// Rotate to a new epoch: atomically write `snapshot-(seq+1)`, switch
    /// appends to `wal-(seq+1)` and prune epochs older than the previous one.
    ///
    /// `snapshot.seq` is overwritten with the new epoch number; callers only
    /// provide the state.
    pub fn install_snapshot(&mut self, mut snapshot: SnapshotData) -> StorageResult<()> {
        let new_seq = self.seq + 1;
        snapshot.seq = new_seq;
        let path = self.root.join(snapshot_name(new_seq));
        self.vfs
            .write_atomic(&path, &snapshot.encode())
            .map_err(|e| StorageError::io(&path, "write_atomic", &e))?;
        self.seq = new_seq;
        self.mutation_frames = 0;
        self.wal_len = 0;

        // Retention: keep the previous epoch (snapshot + WAL) as fallback,
        // prune everything older. Pruning is best-effort cleanup — the files
        // are dead weight, not state — but errors are still surfaced.
        let names = self
            .vfs
            .list(&self.root)
            .map_err(|e| StorageError::io(&self.root, "list", &e))?;
        for name in names {
            let stale = parse_seq(&name, "snapshot-", ".bin")
                .or_else(|| parse_seq(&name, "wal-", ".log"))
                .is_some_and(|seq| seq + 1 < new_seq);
            if stale {
                let path = self.root.join(&name);
                self.vfs
                    .remove_file(&path)
                    .map_err(|e| StorageError::io(&path, "remove", &e))?;
            }
        }
        Ok(())
    }

    /// Every audit record still present in the retained WAL files, oldest
    /// first. Defective tails end the scan of their file (consistent with
    /// recovery) but do not fail the call — the audit trail is best-effort by
    /// construction.
    pub fn scan_audits(&self) -> StorageResult<Vec<AuditRecord>> {
        let names = self
            .vfs
            .list(&self.root)
            .map_err(|e| StorageError::io(&self.root, "list", &e))?;
        let mut wal_seqs: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_seq(n, "wal-", ".log"))
            .collect();
        wal_seqs.sort_unstable();

        let mut audits = Vec::new();
        for seq in wal_seqs {
            let path = self.root.join(wal_name(seq));
            let bytes = self
                .vfs
                .read(&path)
                .map_err(|e| StorageError::io(&path, "read", &e))?;
            for payload in scan_frames(&bytes).payloads {
                if let Ok(WalRecord::Audit(a)) = WalRecord::decode(&payload) {
                    audits.push(a);
                }
            }
        }
        Ok(audits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{FaultFs, FaultPlan};
    use crate::snapshot::{ConfigSnap, SnapshotData};
    use crate::vfs::MemFs;
    use crate::wal::FRAME_HEADER;
    use cqads_wordsim::WsMatrixState;

    fn audit(tag: u64) -> WalRecord {
        WalRecord::Audit(AuditRecord {
            question: format!("q{tag}"),
            domain: "cars".into(),
            hit: false,
            table_gen: tag,
            model_gen: tag,
            micros: tag,
        })
    }

    fn insert(tag: u64) -> WalRecord {
        WalRecord::Insert {
            domain: "cars".into(),
            record: addb::Record::builder()
                .text("make", format!("make{tag}"))
                .build(),
            table_gen: tag,
        }
    }

    fn empty_snapshot() -> SnapshotData {
        SnapshotData {
            seq: 0, // overwritten by install_snapshot
            domains: vec![],
            ws: WsMatrixState::default(),
            config: ConfigSnap {
                answer_limit: 10,
                partial_threshold: 512,
                partial_workers: 1,
                cache_capacity: 0,
                cache_shards: 1,
                partial_exhaustive: false,
            },
        }
    }

    fn open_mem(fs: &Arc<MemFs>) -> (StorageEngine, Recovered) {
        let vfs: Arc<dyn Vfs> = Arc::clone(fs) as Arc<dyn Vfs>;
        StorageEngine::open(vfs, "/db", false).unwrap()
    }

    #[test]
    fn empty_directory_recovers_to_empty_state() {
        let fs = Arc::new(MemFs::new());
        let (engine, rec) = open_mem(&fs);
        assert!(rec.snapshot.is_none());
        assert!(rec.records.is_empty());
        assert!(rec.report.is_clean());
        assert_eq!(rec.report.generation_safety_bump, 0);
        assert_eq!(engine.seq(), 0);
    }

    #[test]
    fn appended_records_replay_in_order() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        engine.append_batch(&[insert(2), audit(3)]).unwrap();
        assert_eq!(engine.mutation_frames(), 2);

        let (engine, rec) = open_mem(&fs);
        assert_eq!(rec.records, vec![insert(1), insert(2), audit(3)]);
        assert!(rec.report.is_clean());
        assert_eq!(rec.report.frames_replayed, 3);
        assert_eq!(engine.mutation_frames(), 2);
    }

    #[test]
    fn rewind_after_torn_append_makes_retry_exactly_once() {
        let mem = Arc::new(MemFs::new());
        let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
        let (mut engine, _) =
            StorageEngine::open(Arc::clone(&fault) as Arc<dyn Vfs>, "/db", false).unwrap();
        engine.append(&insert(1)).unwrap();
        let acked = engine.wal_len();

        // Tear the next append mid-frame: bytes land past the acknowledged
        // length, the call errors, and the counter does not advance.
        fault.set_plan(FaultPlan {
            append_budget: Some(5),
            ..FaultPlan::default()
        });
        engine.append(&insert(2)).unwrap_err();
        assert_eq!(engine.wal_len(), acked);
        let wal = Path::new("/db/wal-000000.log");
        assert_eq!(mem.read(wal).unwrap().len() as u64, acked + 5);

        // Rewind drops the torn bytes; the retried append then lands whole,
        // with no duplicate of frame 1 and exactly one copy of frame 2.
        fault.set_plan(FaultPlan::default());
        engine.rewind_wal().unwrap();
        assert_eq!(mem.read(wal).unwrap().len() as u64, acked);
        engine.append(&insert(2)).unwrap();
        let (_, rec) = open_mem(&mem);
        assert_eq!(rec.records, vec![insert(1), insert(2)]);
        assert!(rec.report.is_clean());

        // Rewind with nothing dangling is a no-op.
        let before = mem.read(wal).unwrap();
        engine.rewind_wal().unwrap();
        assert_eq!(mem.read(wal).unwrap(), before);
    }

    #[test]
    fn rewind_covers_fsync_failure_after_a_landed_append() {
        // fsync-on engine: the append lands but the sync fails, so the frame
        // is on disk yet unacknowledged. Rewind must remove it or a retry
        // would duplicate the frame.
        let mem = Arc::new(MemFs::new());
        let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
        let (mut engine, _) =
            StorageEngine::open(Arc::clone(&fault) as Arc<dyn Vfs>, "/db", true).unwrap();
        engine.append(&insert(1)).unwrap();
        fault.set_plan(FaultPlan {
            fail_sync: true,
            ..FaultPlan::default()
        });
        engine.append(&insert(2)).unwrap_err();
        fault.set_plan(FaultPlan::default());
        engine.rewind_wal().unwrap();
        engine.append(&insert(2)).unwrap();
        let (_, rec) = open_mem(&mem);
        assert_eq!(rec.records, vec![insert(1), insert(2)]);
    }

    #[test]
    fn torn_tail_is_truncated_and_bounded() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        let keep = fs.file_bytes(Path::new("/db/wal-000000.log")).unwrap();
        engine.append(&insert(2)).unwrap();

        // Crash mid-write of the second frame.
        fs.truncate_file(Path::new("/db/wal-000000.log"), keep.len() as u64 + 5)
            .unwrap();
        let (_, rec) = open_mem(&fs);
        assert_eq!(rec.records, vec![insert(1)]);
        assert_eq!(rec.report.dropped_bytes, 5);
        assert_eq!(rec.report.generation_safety_bump, 1);
        assert_eq!(rec.report.defects.len(), 1);
        // The file was repaired on disk.
        assert_eq!(
            fs.file_bytes(Path::new("/db/wal-000000.log")).unwrap(),
            keep
        );

        // Double recovery is idempotent: nothing more to drop.
        let (_, rec2) = open_mem(&fs);
        assert_eq!(rec2.records, vec![insert(1)]);
        assert!(rec2.report.is_clean());
    }

    #[test]
    fn truncated_length_prefix_is_a_torn_header() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        let full = fs.file_bytes(Path::new("/db/wal-000000.log")).unwrap();
        engine.append(&insert(2)).unwrap();
        // Keep only 3 of the next frame's 4 length bytes.
        fs.truncate_file(Path::new("/db/wal-000000.log"), full.len() as u64 + 3)
            .unwrap();
        let (_, rec) = open_mem(&fs);
        assert_eq!(rec.records, vec![insert(1)]);
        assert!(rec.report.defects[0].contains("truncated frame header"));
    }

    #[test]
    fn corrupt_crc_mid_log_cuts_everything_after() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        let first_len = fs
            .file_bytes(Path::new("/db/wal-000000.log"))
            .unwrap()
            .len() as u64;
        engine.append(&insert(2)).unwrap();
        engine.append(&insert(3)).unwrap();
        let total = fs
            .file_bytes(Path::new("/db/wal-000000.log"))
            .unwrap()
            .len() as u64;

        // Flip a payload bit of the middle frame: frames 2 AND 3 are lost —
        // replaying 3 without 2 would be causally inconsistent.
        fs.flip_bit(Path::new("/db/wal-000000.log"), first_len + FRAME_HEADER)
            .unwrap();
        let (_, rec) = open_mem(&fs);
        assert_eq!(rec.records, vec![insert(1)]);
        assert_eq!(rec.report.dropped_bytes, total - first_len);
        assert!(rec.report.defects[0].contains("crc mismatch"));
        // Bump covers both potentially-lost frames.
        assert!(rec.report.generation_safety_bump >= 2);
    }

    #[test]
    fn snapshot_rotation_prunes_and_recovers_from_latest() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        assert_eq!(engine.seq(), 1);
        assert_eq!(engine.mutation_frames(), 0);
        engine.append(&insert(2)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        engine.append(&insert(3)).unwrap();

        // Epoch 0 was pruned, epochs 1 and 2 retained.
        let names: Vec<String> = fs
            .paths()
            .iter()
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        assert_eq!(
            names,
            vec![
                "snapshot-000001.bin",
                "snapshot-000002.bin",
                "wal-000001.log",
                "wal-000002.log"
            ]
        );

        let (engine, rec) = open_mem(&fs);
        assert_eq!(rec.report.snapshot_seq, Some(2));
        assert_eq!(rec.records, vec![insert(3)]);
        assert_eq!(engine.seq(), 2);
    }

    #[test]
    fn corrupt_snapshot_falls_back_to_previous_epoch() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        engine.append(&insert(2)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        engine.append(&insert(3)).unwrap();

        // Corrupt the newest snapshot: recovery must fall back to epoch 1 and
        // replay wal-1 AND wal-2 to reach the same state.
        fs.flip_bit(Path::new("/db/snapshot-000002.bin"), 20)
            .unwrap();
        let (_, rec) = open_mem(&fs);
        assert_eq!(rec.report.snapshot_seq, Some(1));
        assert_eq!(rec.records, vec![insert(2), insert(3)]);
        assert_eq!(rec.report.defects.len(), 1);
        assert_eq!(rec.report.dropped_bytes, 0);
    }

    #[test]
    fn missing_snapshot_with_stale_wal_ignores_the_stale_epoch() {
        // snapshot-1 newer than a retained wal-0: the stale epoch is already
        // folded into the snapshot and must NOT be replayed again.
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        // No writes in epoch 1: wal-000001.log does not even exist.
        let (engine, rec) = open_mem(&fs);
        assert_eq!(rec.report.snapshot_seq, Some(1));
        assert!(rec.records.is_empty());
        assert!(rec.report.is_clean());
        assert_eq!(engine.seq(), 1);
    }

    #[test]
    fn wal_files_after_a_torn_epoch_are_dropped() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        engine.append(&insert(2)).unwrap();

        // Corrupt snapshot-1 so recovery starts from empty + wal-0, then tear
        // wal-0: wal-1 (a later epoch) must be dropped, not replayed over a
        // hole.
        fs.flip_bit(Path::new("/db/snapshot-000001.bin"), 20)
            .unwrap();
        let wal1_len = fs
            .file_bytes(Path::new("/db/wal-000001.log"))
            .unwrap()
            .len() as u64;
        fs.truncate_file(Path::new("/db/wal-000000.log"), 4)
            .unwrap();
        let (_, rec) = open_mem(&fs);
        assert_eq!(rec.report.snapshot_seq, None);
        assert!(rec.records.is_empty());
        assert_eq!(rec.report.dropped_bytes, 4 + wal1_len);
        assert!(fs.file_bytes(Path::new("/db/wal-000001.log")).is_none());
        // Idempotent second recovery: the corrupt snapshot is still reported
        // (it stays on disk), but nothing further is dropped.
        let (_, rec2) = open_mem(&fs);
        assert!(rec2.records.is_empty());
        assert_eq!(rec2.report.dropped_bytes, 0);
    }

    #[test]
    fn torn_append_through_faultfs_recovers_the_prefix() {
        let mem = Arc::new(MemFs::new());
        let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
        let (mut engine, _) =
            StorageEngine::open(Arc::clone(&fault) as Arc<dyn Vfs>, "/db", true).unwrap();
        engine.append(&insert(1)).unwrap();

        // The next append is cut 5 bytes in by the fault layer.
        fault.set_plan(FaultPlan {
            append_budget: Some(5),
            ..FaultPlan::default()
        });
        let err = engine.append(&insert(2)).unwrap_err();
        assert!(matches!(err, StorageError::Io { .. }));
        assert!(err.to_string().contains("append"));

        fault.set_plan(FaultPlan::default());
        let (_, rec) = open_mem(&mem);
        assert_eq!(rec.records, vec![insert(1)]);
        assert_eq!(rec.report.dropped_bytes, 5);
        assert_eq!(rec.report.generation_safety_bump, 1);
    }

    #[test]
    fn fsync_and_snapshot_write_failures_are_typed_errors() {
        let mem = Arc::new(MemFs::new());
        let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
        let (mut engine, _) =
            StorageEngine::open(Arc::clone(&fault) as Arc<dyn Vfs>, "/db", true).unwrap();

        fault.set_plan(FaultPlan {
            fail_sync: true,
            ..FaultPlan::default()
        });
        let err = engine.append(&insert(1)).unwrap_err();
        assert!(err.to_string().contains("fsync"));

        fault.set_plan(FaultPlan {
            fail_write_atomic: true,
            ..FaultPlan::default()
        });
        let err = engine.install_snapshot(empty_snapshot()).unwrap_err();
        assert!(err.to_string().contains("write_atomic"));
        // The failed rotation did not advance the epoch.
        assert_eq!(engine.seq(), 0);

        fault.set_plan(FaultPlan {
            fail_read: true,
            ..FaultPlan::default()
        });
        assert!(StorageEngine::open(Arc::clone(&fault) as Arc<dyn Vfs>, "/db", true).is_err());
    }

    #[test]
    fn audit_trail_survives_rotation_and_tears() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&audit(1)).unwrap();
        assert_eq!(engine.mutation_frames(), 0); // audits do not trigger snapshots
        engine.install_snapshot(empty_snapshot()).unwrap();
        engine.append_batch(&[insert(2), audit(3)]).unwrap();

        let audits = engine.scan_audits().unwrap();
        let questions: Vec<&str> = audits.iter().map(|a| a.question.as_str()).collect();
        assert_eq!(questions, vec!["q1", "q3"]);

        // A torn tail silently ends that file's audit scan.
        let wal1 = Path::new("/db/wal-000001.log");
        let len = fs.file_bytes(wal1).unwrap().len() as u64;
        fs.truncate_file(wal1, len - 2).unwrap();
        let audits = engine.scan_audits().unwrap();
        let questions: Vec<&str> = audits.iter().map(|a| a.question.as_str()).collect();
        assert_eq!(questions, vec!["q1"]);
    }

    #[test]
    fn snapshot_seq_mismatch_is_skipped() {
        let fs = Arc::new(MemFs::new());
        let (mut engine, _) = open_mem(&fs);
        engine.append(&insert(1)).unwrap();
        engine.install_snapshot(empty_snapshot()).unwrap();
        // Copy snapshot-1 over a fictitious snapshot-5: its payload still says
        // seq 1, so it must be rejected, falling back to the real snapshot-1.
        let bytes = fs.file_bytes(Path::new("/db/snapshot-000001.bin")).unwrap();
        fs.write_atomic(Path::new("/db/snapshot-000005.bin"), &bytes)
            .unwrap();
        let (_, rec) = open_mem(&fs);
        assert_eq!(rec.report.snapshot_seq, Some(1));
        assert!(rec.report.defects[0].contains("sequence mismatch"));
    }
}
