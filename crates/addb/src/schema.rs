//! Relational schemas for ads domains.
//!
//! Every ads domain (Cars-for-Sale, CS Jobs, ...) is described by one [`Schema`]
//! enumerating its attributes and their paper-defined types:
//!
//! * [`AttrType::TypeI`] — required identifiers of the advertised product or service
//!   (car Make/Model, job Title). Primary-indexed.
//! * [`AttrType::TypeII`] — optional descriptive properties (Color, Transmission).
//!   Secondary-indexed.
//! * [`AttrType::TypeIII`] — quantitative attributes (Price, Year, Mileage) with a
//!   *valid value range*. The range plays two roles in the paper: it drives the "best
//!   guess" for incomplete questions (Section 4.2.2 — a bare `2000` could be a Year,
//!   Price or Mileage only if it falls inside the respective ranges) and it is the
//!   normalization factor of `Num_Sim` (Equation 4).

use crate::error::{DbError, DbResult};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// The three attribute categories defined in Section 4.1.1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AttrType {
    /// Required identifier of the advertised product (primary-indexed).
    TypeI,
    /// Descriptive property (secondary-indexed).
    TypeII,
    /// Quantitative attribute with a valid numeric range.
    TypeIII,
}

impl AttrType {
    /// Short label used in tagged-question displays, mirroring the paper's Example 2
    /// notation (`TI`, `TII`, `TIII`).
    pub fn label(&self) -> &'static str {
        match self {
            AttrType::TypeI => "TI",
            AttrType::TypeII => "TII",
            AttrType::TypeIII => "TIII",
        }
    }
}

/// Definition of one attribute (column) in an ads domain schema.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AttributeDef {
    /// Column name, lowercase.
    pub name: String,
    /// Paper-defined attribute category.
    pub attr_type: AttrType,
    /// Valid numeric range for Type III attributes (`None` for Type I/II).
    pub range: Option<(f64, f64)>,
    /// Optional measurement unit keyword ("usd", "miles") — itself treated as a Type III
    /// attribute value by the identifiers table (Table 1).
    pub unit: Option<String>,
}

impl AttributeDef {
    /// Width of the valid range, the `Attribute_Value_Range` normalization factor of
    /// Equation 4. Returns `None` for categorical attributes.
    pub fn range_width(&self) -> Option<f64> {
        self.range.map(|(lo, hi)| (hi - lo).abs())
    }

    /// True if a numeric value falls inside this attribute's valid range (inclusive).
    /// Categorical attributes never contain numeric values.
    pub fn contains(&self, v: f64) -> bool {
        match self.range {
            Some((lo, hi)) => v >= lo && v <= hi,
            None => false,
        }
    }
}

/// Relational schema for a single ads domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schema {
    /// Domain / table name (e.g. "cars").
    pub name: String,
    attributes: Vec<AttributeDef>,
    by_name: HashMap<String, usize>,
}

impl Schema {
    /// Start building a schema for the named domain.
    pub fn builder(name: impl Into<String>) -> SchemaBuilder {
        SchemaBuilder {
            name: name.into(),
            attributes: Vec::new(),
        }
    }

    /// All attribute definitions in declaration order.
    pub fn attributes(&self) -> &[AttributeDef] {
        &self.attributes
    }

    /// Look up an attribute by (lowercase) name.
    pub fn attribute(&self, name: &str) -> Option<&AttributeDef> {
        self.by_name
            .get(&name.to_lowercase())
            .map(|&i| &self.attributes[i])
    }

    /// Like [`Schema::attribute`] but producing the crate error type.
    pub fn require(&self, name: &str) -> DbResult<&AttributeDef> {
        self.attribute(name)
            .ok_or_else(|| DbError::UnknownAttribute {
                table: self.name.clone(),
                attribute: name.to_string(),
            })
    }

    /// Names of all Type I attributes (the primary-indexed identifier columns).
    pub fn type1_names(&self) -> Vec<&str> {
        self.of_type(AttrType::TypeI)
    }

    /// Names of all Type II attributes.
    pub fn type2_names(&self) -> Vec<&str> {
        self.of_type(AttrType::TypeII)
    }

    /// Names of all Type III attributes.
    pub fn type3_names(&self) -> Vec<&str> {
        self.of_type(AttrType::TypeIII)
    }

    fn of_type(&self, t: AttrType) -> Vec<&str> {
        self.attributes
            .iter()
            .filter(|a| a.attr_type == t)
            .map(|a| a.name.as_str())
            .collect()
    }

    /// Type III attributes whose valid range contains `v` — the candidate columns for an
    /// unlabeled numeric value in an incomplete question (Section 4.2.2, Example 3).
    pub fn numeric_candidates(&self, v: f64) -> Vec<&AttributeDef> {
        self.attributes
            .iter()
            .filter(|a| a.attr_type == AttrType::TypeIII && a.contains(v))
            .collect()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attributes.len()
    }

    /// True if the schema has no attributes (never the case for a valid schema).
    pub fn is_empty(&self) -> bool {
        self.attributes.is_empty()
    }
}

/// Incremental builder for [`Schema`].
#[derive(Debug, Clone)]
pub struct SchemaBuilder {
    name: String,
    attributes: Vec<AttributeDef>,
}

impl SchemaBuilder {
    /// Add a Type I (identifier, primary-indexed) attribute.
    pub fn type1(mut self, name: impl Into<String>) -> Self {
        self.attributes.push(AttributeDef {
            name: name.into().to_lowercase(),
            attr_type: AttrType::TypeI,
            range: None,
            unit: None,
        });
        self
    }

    /// Add a Type II (descriptive, secondary-indexed) attribute.
    pub fn type2(mut self, name: impl Into<String>) -> Self {
        self.attributes.push(AttributeDef {
            name: name.into().to_lowercase(),
            attr_type: AttrType::TypeII,
            range: None,
            unit: None,
        });
        self
    }

    /// Add a Type III (quantitative) attribute with its valid range and optional unit.
    pub fn type3(
        mut self,
        name: impl Into<String>,
        low: f64,
        high: f64,
        unit: Option<&str>,
    ) -> Self {
        self.attributes.push(AttributeDef {
            name: name.into().to_lowercase(),
            attr_type: AttrType::TypeIII,
            range: Some((low.min(high), low.max(high))),
            unit: unit.map(|u| u.to_lowercase()),
        });
        self
    }

    /// Finish building, validating that the schema is well-formed: at least one Type I
    /// attribute, no duplicate names, non-degenerate Type III ranges.
    pub fn build(self) -> DbResult<Schema> {
        if self.attributes.is_empty() {
            return Err(DbError::InvalidSchema(format!(
                "schema `{}` has no attributes",
                self.name
            )));
        }
        if !self
            .attributes
            .iter()
            .any(|a| a.attr_type == AttrType::TypeI)
        {
            return Err(DbError::InvalidSchema(format!(
                "schema `{}` has no Type I attribute; every ad must have a unique identifier",
                self.name
            )));
        }
        let mut by_name = HashMap::with_capacity(self.attributes.len());
        for (i, attr) in self.attributes.iter().enumerate() {
            if by_name.insert(attr.name.clone(), i).is_some() {
                return Err(DbError::InvalidSchema(format!(
                    "schema `{}` declares attribute `{}` twice",
                    self.name, attr.name
                )));
            }
            if let Some((lo, hi)) = attr.range {
                // NaN bounds must fail validation too, so compare via partial_cmp
                // rather than `hi <= lo`.
                if hi.partial_cmp(&lo) != Some(std::cmp::Ordering::Greater) {
                    return Err(DbError::InvalidSchema(format!(
                        "attribute `{}` has a degenerate range [{lo}, {hi}]",
                        attr.name
                    )));
                }
            }
        }
        Ok(Schema {
            name: self.name,
            attributes: self.attributes,
            by_name,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_schema() -> Schema {
        Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type2("transmission")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .type3("year", 1985.0, 2011.0, None)
            .type3("mileage", 0.0, 300_000.0, Some("miles"))
            .build()
            .unwrap()
    }

    #[test]
    fn builder_produces_expected_attribute_groups() {
        let s = car_schema();
        assert_eq!(s.type1_names(), vec!["make", "model"]);
        assert_eq!(s.type2_names(), vec!["color", "transmission"]);
        assert_eq!(s.type3_names(), vec!["price", "year", "mileage"]);
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
    }

    #[test]
    fn attribute_lookup_is_case_insensitive() {
        let s = car_schema();
        assert!(s.attribute("Make").is_some());
        assert!(s.attribute("PRICE").is_some());
        assert!(s.attribute("wheels").is_none());
        assert!(s.require("wheels").is_err());
    }

    #[test]
    fn numeric_candidates_follow_ranges_like_example_3() {
        let s = car_schema();
        // 2000 is a valid year, price and mileage.
        let names: Vec<_> = s
            .numeric_candidates(2000.0)
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["price", "year", "mileage"]);
        // 4000 is not a valid year.
        let names: Vec<_> = s
            .numeric_candidates(4000.0)
            .iter()
            .map(|a| a.name.as_str())
            .collect();
        assert_eq!(names, vec!["price", "mileage"]);
        // 500000 is outside every range.
        assert!(s.numeric_candidates(500_000.0).is_empty());
    }

    #[test]
    fn range_width_is_num_sim_normalizer() {
        let s = car_schema();
        let year = s.attribute("year").unwrap();
        assert_eq!(year.range_width(), Some(2011.0 - 1985.0));
        assert_eq!(s.attribute("color").unwrap().range_width(), None);
    }

    #[test]
    fn schema_requires_type1_attribute() {
        let err = Schema::builder("bad").type2("color").build().unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
    }

    #[test]
    fn schema_rejects_duplicates_and_bad_ranges() {
        let err = Schema::builder("bad")
            .type1("make")
            .type1("make")
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
        let err = Schema::builder("bad")
            .type1("make")
            .type3("price", 10.0, 10.0, None)
            .build()
            .unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
        let err = Schema::builder("empty").build().unwrap_err();
        assert!(matches!(err, DbError::InvalidSchema(_)));
    }

    #[test]
    fn attr_type_labels_match_paper_notation() {
        assert_eq!(AttrType::TypeI.label(), "TI");
        assert_eq!(AttrType::TypeII.label(), "TII");
        assert_eq!(AttrType::TypeIII.label(), "TIII");
    }
}
