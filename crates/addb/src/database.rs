//! A database is a collection of ads tables, one per advertisement domain, exactly as
//! the paper stores "a table in the DB for each domain" (Section 4.1).

use crate::error::{DbError, DbResult};
use crate::exec::{ExecOptions, Executor, QueryAnswer};
use crate::query::Query;
use crate::schema::Schema;
use crate::table::Table;
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::Arc;

/// Collection of ads domain tables.
///
/// Tables are held behind `Arc` so that cloning a `Database` — the operation
/// the serving layer performs on every snapshot publish — costs one refcount
/// bump per domain instead of a deep copy of every record and index. Mutation
/// goes through [`Database::table_mut`]/[`Database::create_table`], which use
/// [`Arc::make_mut`]: a table still shared with a published snapshot is
/// copied on first write, an unshared one is mutated in place.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Arc<Table>>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create the table for a domain schema and return a mutable handle.
    ///
    /// If a table is already registered under the schema's name it is **replaced** by
    /// the new, empty table — an explicit reload semantic, not an accident: the old
    /// records and indexes are dropped, and the new table's [`Table::generation`]
    /// starts strictly above the old one's so any serving-layer cache entry stamped
    /// against the replaced table is invalidated.
    pub fn create_table(&mut self, schema: Schema) -> &mut Table {
        let name = schema.name.clone();
        let slot = match self.tables.entry(name) {
            Entry::Occupied(mut occupied) => {
                let floor = occupied.get().generation() + 1;
                let mut table = Table::new(schema);
                table.raise_generation(floor);
                occupied.insert(Arc::new(table));
                occupied.into_mut()
            }
            Entry::Vacant(vacant) => vacant.insert(Arc::new(Table::new(schema))),
        };
        Arc::make_mut(slot)
    }

    /// Add an already-populated table (used by the data generators). Like
    /// [`Database::create_table`], registering a name that already exists is an
    /// explicit replace, and the incoming table's generation is raised above the
    /// replaced table's so per-domain generations stay monotonic.
    pub fn add_table(&mut self, mut table: Table) {
        if let Some(old) = self.tables.get(table.name()) {
            table.raise_generation(old.generation() + 1);
        }
        self.tables
            .insert(table.name().to_string(), Arc::new(table));
    }

    /// Get a table by domain name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name).map(Arc::as_ref)
    }

    /// Get a table's shared handle by domain name. Cloning the returned
    /// `Arc` pins the table's current contents without copying them — this
    /// is how snapshot publication shares tables with detached readers.
    pub fn table_shared(&self, name: &str) -> Option<&Arc<Table>> {
        self.tables.get(name)
    }

    /// Get a mutable table by domain name. If the table is shared with a
    /// published snapshot it is copied on this first write
    /// ([`Arc::make_mut`]); otherwise this is in-place mutation as before.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name).map(Arc::make_mut)
    }

    /// Like [`Database::table`] but returns the crate error for unknown domains.
    pub fn require_table(&self, name: &str) -> DbResult<&Table> {
        self.table(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all domains, sorted.
    pub fn domain_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the database holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of records across every domain.
    pub fn total_records(&self) -> usize {
        self.tables.values().map(|t| t.len()).sum()
    }

    /// Mutation generation of one domain's table (see [`Table::generation`]).
    /// `None` when the domain has no table.
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.table(name).map(Table::generation)
    }

    /// Execute a query against the domain it names.
    pub fn execute(&self, query: &Query) -> DbResult<Vec<QueryAnswer>> {
        let table = self.require_table(&query.table)?;
        Executor::new(table).execute(query)
    }

    /// Execute a query with explicit executor options.
    pub fn execute_with(&self, query: &Query, options: ExecOptions) -> DbResult<Vec<QueryAnswer>> {
        let table = self.require_table(&query.table)?;
        Executor::with_options(table, options).execute(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Condition;
    use crate::record::Record;

    fn db() -> Database {
        let mut db = Database::new();
        let cars = Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .build()
            .unwrap();
        let jobs = Schema::builder("jobs")
            .type1("title")
            .type2("language")
            .type3("salary", 20_000.0, 300_000.0, Some("usd"))
            .build()
            .unwrap();
        let t = db.create_table(cars);
        t.insert(
            Record::builder()
                .text("make", "honda")
                .text("model", "accord")
                .text("color", "blue")
                .number("price", 6600.0)
                .build(),
        )
        .unwrap();
        let t = db.create_table(jobs);
        t.insert(
            Record::builder()
                .text("title", "software engineer")
                .text("language", "c++")
                .number("salary", 95_000.0)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn tables_are_addressable_by_domain() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.domain_names(), vec!["cars", "jobs"]);
        assert_eq!(db.total_records(), 2);
        assert!(db.table("cars").is_some());
        assert!(db.table("boats").is_none());
        assert!(db.require_table("boats").is_err());
    }

    #[test]
    fn queries_route_to_the_right_table() {
        let db = db();
        let q = Query::new("cars").with_condition(Condition::eq("make", "honda"));
        assert_eq!(db.execute(&q).unwrap().len(), 1);
        let q = Query::new("jobs").with_condition(Condition::eq("language", "c++"));
        assert_eq!(db.execute(&q).unwrap().len(), 1);
        let q = Query::new("boats");
        assert!(db.execute(&q).is_err());
    }

    #[test]
    fn table_mut_allows_incremental_loading() {
        let mut db = db();
        db.table_mut("cars")
            .unwrap()
            .insert(
                Record::builder()
                    .text("make", "ford")
                    .text("model", "focus")
                    .number("price", 5000.0)
                    .build(),
            )
            .unwrap();
        assert_eq!(db.table("cars").unwrap().len(), 2);
    }

    #[test]
    fn create_table_replace_is_explicit_and_generation_monotonic() {
        let mut db = db();
        let gen_before = db.generation("cars").unwrap();
        assert_eq!(gen_before, 1); // one record inserted by db()

        // Re-registering the same name replaces the table: records are dropped,
        // but the per-domain generation keeps rising so cached answers stamped
        // against the old table can never be mistaken for fresh ones.
        let cars_again = Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .build()
            .unwrap();
        let t = db.create_table(cars_again);
        assert!(t.is_empty());
        assert!(db.generation("cars").unwrap() > gen_before);
        assert_eq!(db.len(), 2);

        // add_table replacement carries the generation forward too.
        let replacement = Table::new(Schema::builder("jobs").type1("title").build().unwrap());
        let jobs_gen = db.generation("jobs").unwrap();
        db.add_table(replacement);
        assert!(db.generation("jobs").unwrap() > jobs_gen);
        assert!(db.table("jobs").unwrap().is_empty());
        assert_eq!(db.generation("boats"), None);
    }

    #[test]
    fn execute_with_options_matches_default_on_simple_queries() {
        let db = db();
        let q = Query::new("cars").with_condition(Condition::eq("color", "blue"));
        let a = db.execute(&q).unwrap();
        let b = db
            .execute_with(
                &q,
                ExecOptions {
                    use_indexes: false,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
