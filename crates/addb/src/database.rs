//! A database is a collection of ads tables, one per advertisement domain, exactly as
//! the paper stores "a table in the DB for each domain" (Section 4.1).

use crate::error::{DbError, DbResult};
use crate::exec::{ExecOptions, Executor, QueryAnswer};
use crate::query::Query;
use crate::schema::Schema;
use crate::table::Table;
use std::collections::BTreeMap;

/// Collection of ads domain tables.
#[derive(Debug, Clone, Default)]
pub struct Database {
    tables: BTreeMap<String, Table>,
}

impl Database {
    /// Create an empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create (or replace) the table for a domain schema and return a mutable handle.
    pub fn create_table(&mut self, schema: Schema) -> &mut Table {
        let name = schema.name.clone();
        self.tables.insert(name.clone(), Table::new(schema));
        self.tables.get_mut(&name).expect("just inserted")
    }

    /// Add an already-populated table (used by the data generators).
    pub fn add_table(&mut self, table: Table) {
        self.tables.insert(table.name().to_string(), table);
    }

    /// Get a table by domain name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.get(name)
    }

    /// Get a mutable table by domain name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.get_mut(name)
    }

    /// Like [`Database::table`] but returns the crate error for unknown domains.
    pub fn require_table(&self, name: &str) -> DbResult<&Table> {
        self.table(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// Names of all domains, sorted.
    pub fn domain_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// Number of tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if the database holds no tables.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Total number of records across every domain.
    pub fn total_records(&self) -> usize {
        self.tables.values().map(Table::len).sum()
    }

    /// Execute a query against the domain it names.
    pub fn execute(&self, query: &Query) -> DbResult<Vec<QueryAnswer>> {
        let table = self.require_table(&query.table)?;
        Executor::new(table).execute(query)
    }

    /// Execute a query with explicit executor options.
    pub fn execute_with(&self, query: &Query, options: ExecOptions) -> DbResult<Vec<QueryAnswer>> {
        let table = self.require_table(&query.table)?;
        Executor::with_options(table, options).execute(query)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Condition;
    use crate::record::Record;

    fn db() -> Database {
        let mut db = Database::new();
        let cars = Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .build()
            .unwrap();
        let jobs = Schema::builder("jobs")
            .type1("title")
            .type2("language")
            .type3("salary", 20_000.0, 300_000.0, Some("usd"))
            .build()
            .unwrap();
        let t = db.create_table(cars);
        t.insert(
            Record::builder()
                .text("make", "honda")
                .text("model", "accord")
                .text("color", "blue")
                .number("price", 6600.0)
                .build(),
        )
        .unwrap();
        let t = db.create_table(jobs);
        t.insert(
            Record::builder()
                .text("title", "software engineer")
                .text("language", "c++")
                .number("salary", 95_000.0)
                .build(),
        )
        .unwrap();
        db
    }

    #[test]
    fn tables_are_addressable_by_domain() {
        let db = db();
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.domain_names(), vec!["cars", "jobs"]);
        assert_eq!(db.total_records(), 2);
        assert!(db.table("cars").is_some());
        assert!(db.table("boats").is_none());
        assert!(db.require_table("boats").is_err());
    }

    #[test]
    fn queries_route_to_the_right_table() {
        let db = db();
        let q = Query::new("cars").with_condition(Condition::eq("make", "honda"));
        assert_eq!(db.execute(&q).unwrap().len(), 1);
        let q = Query::new("jobs").with_condition(Condition::eq("language", "c++"));
        assert_eq!(db.execute(&q).unwrap().len(), 1);
        let q = Query::new("boats");
        assert!(db.execute(&q).is_err());
    }

    #[test]
    fn table_mut_allows_incremental_loading() {
        let mut db = db();
        db.table_mut("cars")
            .unwrap()
            .insert(
                Record::builder()
                    .text("make", "ford")
                    .text("model", "focus")
                    .number("price", 5000.0)
                    .build(),
            )
            .unwrap();
        assert_eq!(db.table("cars").unwrap().len(), 2);
    }

    #[test]
    fn execute_with_options_matches_default_on_simple_queries() {
        let db = db();
        let q = Query::new("cars").with_condition(Condition::eq("color", "blue"));
        let a = db.execute(&q).unwrap();
        let b = db
            .execute_with(
                &q,
                ExecOptions {
                    use_indexes: false,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert_eq!(a, b);
    }
}
