//! Advertisement records (rows).
//!
//! A [`Record`] is a bag of attribute-name → [`Value`] pairs. Records are validated
//! against the table's [`Schema`](crate::schema::Schema) on insert: every Type I
//! attribute must be present (the paper calls these the *required* values that form the
//! ad's unique identifier) and value types must match the attribute category.

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Stable identifier of a record within a table. Assigned by the table on insert.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct RecordId(pub u32);

impl fmt::Display for RecordId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One advertisement: a mapping from attribute names to values.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Record {
    fields: BTreeMap<String, Value>,
}

impl Record {
    /// Start building a record.
    pub fn builder() -> RecordBuilder {
        RecordBuilder {
            record: Record::default(),
        }
    }

    /// Get the value stored for an attribute, if any.
    pub fn get(&self, attribute: &str) -> Option<&Value> {
        self.fields.get(&attribute.to_lowercase())
    }

    /// Get the categorical value stored for an attribute, if it is text.
    pub fn get_text(&self, attribute: &str) -> Option<&str> {
        self.get(attribute).and_then(Value::as_text)
    }

    /// Get the numeric value stored for an attribute, if it is a number.
    pub fn get_number(&self, attribute: &str) -> Option<f64> {
        self.get(attribute).and_then(Value::as_number)
    }

    /// Set (or replace) an attribute value.
    pub fn set(&mut self, attribute: impl Into<String>, value: impl Into<Value>) {
        self.fields
            .insert(attribute.into().to_lowercase(), value.into());
    }

    /// True if the record carries a value for the attribute.
    pub fn has(&self, attribute: &str) -> bool {
        self.fields.contains_key(&attribute.to_lowercase())
    }

    /// Iterate over `(attribute, value)` pairs in attribute-name order.
    pub fn fields(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.fields.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of populated attributes.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True if no attribute is populated.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Every categorical token in the record, useful for bag-of-words baselines
    /// (FAQFinder treats each ads record as a document).
    pub fn text_tokens(&self) -> Vec<&str> {
        let mut out = Vec::new();
        for (_, v) in self.fields.iter() {
            if let Value::Text(s) = v {
                out.extend(s.split_whitespace());
            }
        }
        out
    }
}

impl fmt::Display for Record {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (k, v) in &self.fields {
            if !first {
                write!(f, ", ")?;
            }
            write!(f, "{k}: {v}")?;
            first = false;
        }
        write!(f, "}}")
    }
}

/// Fluent builder for [`Record`].
#[derive(Debug, Clone, Default)]
pub struct RecordBuilder {
    record: Record,
}

impl RecordBuilder {
    /// Set a categorical attribute value.
    pub fn text(mut self, attribute: impl Into<String>, value: impl AsRef<str>) -> Self {
        self.record.set(attribute, Value::text(value.as_ref()));
        self
    }

    /// Set a quantitative attribute value.
    pub fn number(mut self, attribute: impl Into<String>, value: f64) -> Self {
        self.record.set(attribute, Value::number(value));
        self
    }

    /// Finish building.
    pub fn build(self) -> Record {
        self.record
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_round_trips_values() {
        let r = Record::builder()
            .text("Make", "Honda")
            .text("model", "Accord")
            .number("price", 6600.0)
            .build();
        assert_eq!(r.get_text("make"), Some("honda"));
        assert_eq!(r.get_text("MODEL"), Some("accord"));
        assert_eq!(r.get_number("price"), Some(6600.0));
        assert_eq!(r.get_number("make"), None);
        assert_eq!(r.len(), 3);
        assert!(r.has("price"));
        assert!(!r.has("color"));
    }

    #[test]
    fn set_replaces_existing_value() {
        let mut r = Record::builder().text("color", "red").build();
        r.set("color", Value::text("blue"));
        assert_eq!(r.get_text("color"), Some("blue"));
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn text_tokens_flatten_multi_word_values() {
        let r = Record::builder()
            .text("features", "power steering")
            .text("color", "blue")
            .number("price", 100.0)
            .build();
        let mut toks = r.text_tokens();
        toks.sort_unstable();
        assert_eq!(toks, vec!["blue", "power", "steering"]);
    }

    #[test]
    fn display_lists_fields() {
        let r = Record::builder()
            .text("make", "honda")
            .number("year", 2004.0)
            .build();
        let s = r.to_string();
        assert!(s.contains("make: honda"));
        assert!(s.contains("year: 2004"));
    }

    #[test]
    fn record_id_displays_with_hash() {
        assert_eq!(RecordId(7).to_string(), "#7");
    }

    #[test]
    fn empty_record_reports_empty() {
        let r = Record::default();
        assert!(r.is_empty());
        assert_eq!(r.fields().count(), 0);
    }
}
