//! Render a [`crate::query::Query`] as the SQL statement CQAds would ship to the
//! relational backend (the paper uses MySQL; Example 7 shows the nested
//! `SELECT ... WHERE Car_ID IN (...)` shape that this module reproduces).

use crate::query::{BoolExpr, Comparison, Condition, Query, SuperlativeKind};

/// Render a full SQL statement in the nested-subquery style of the paper's Example 7.
///
/// Every leaf condition becomes its own `Car_ID IN (SELECT ...)` sub-query; the
/// sub-queries are combined with AND/OR/NOT following the boolean expression; a
/// superlative becomes an `ORDER BY ... LIMIT` suffix (the paper writes `group by`,
/// which its MySQL layer resolves the same way).
pub fn render(query: &Query) -> String {
    let table = &query.table;
    let id_col = format!("{}_id", singular(table));
    let mut sql = format!(
        "SELECT * FROM {table} WHERE {}",
        render_expr(&query.expr, table, &id_col)
    );
    for s in &query.superlatives {
        let dir = match s.kind {
            SuperlativeKind::Min => "ASC",
            SuperlativeKind::Max => "DESC",
        };
        sql.push_str(&format!(" ORDER BY {} {dir}", s.attribute));
    }
    sql.push_str(&format!(" LIMIT {}", query.limit));
    sql
}

/// Render only the WHERE clause (used in tests and in the Boolean-interpretation survey
/// display, Figure 3 of the paper).
pub fn render_where(query: &Query) -> String {
    let id_col = format!("{}_id", singular(&query.table));
    render_expr(&query.expr, &query.table, &id_col)
}

fn render_expr(expr: &BoolExpr, table: &str, id_col: &str) -> String {
    match expr {
        BoolExpr::True => "1 = 1".to_string(),
        BoolExpr::Cond(c) => render_condition(c, table, id_col),
        BoolExpr::And(parts) => parts
            .iter()
            .map(|p| format!("({})", render_expr(p, table, id_col)))
            .collect::<Vec<_>>()
            .join(" AND "),
        BoolExpr::Or(parts) => parts
            .iter()
            .map(|p| format!("({})", render_expr(p, table, id_col)))
            .collect::<Vec<_>>()
            .join(" OR "),
        BoolExpr::Not(inner) => format!("NOT ({})", render_expr(inner, table, id_col)),
    }
}

fn render_condition(cond: &Condition, table: &str, id_col: &str) -> String {
    let inner = match &cond.comparison {
        Comparison::Eq(v) => format!("C.{} = '{}'", cond.attribute, v),
        other => format!("C.{} {}", cond.attribute, other),
    };
    let sub = format!("{id_col} IN (SELECT {id_col} FROM {table} C WHERE {inner})");
    if cond.negated {
        format!("NOT ({sub})")
    } else {
        sub
    }
}

fn singular(table: &str) -> &str {
    table.strip_suffix('s').unwrap_or(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::{Condition, Query, Superlative};

    #[test]
    fn renders_example_7_shape() {
        // "Do you have automatic blue cars?"
        let q = Query::new("cars")
            .with_condition(Condition::eq("transmission", "automatic"))
            .with_condition(Condition::eq("color", "blue"));
        let sql = render(&q);
        assert!(sql.starts_with("SELECT * FROM cars WHERE"));
        assert!(sql
            .contains("car_id IN (SELECT car_id FROM cars C WHERE C.transmission = 'automatic')"));
        assert!(sql.contains("car_id IN (SELECT car_id FROM cars C WHERE C.color = 'blue')"));
        assert!(sql.contains(" AND "));
        assert!(sql.ends_with("LIMIT 30"));
    }

    #[test]
    fn renders_negation_ranges_and_superlatives() {
        let q = Query::new("cars")
            .with_condition(Condition::eq("color", "blue").negated())
            .with_condition(Condition::new("price", Comparison::Between(2000.0, 7000.0)))
            .with_superlative(Superlative::min("price"));
        let sql = render(&q);
        assert!(sql.contains("NOT (car_id IN"));
        assert!(sql.contains("C.price BETWEEN 2000 AND 7000"));
        assert!(sql.contains("ORDER BY price ASC"));
    }

    #[test]
    fn renders_or_of_subexpressions() {
        let expr = BoolExpr::or(vec![
            BoolExpr::Cond(Condition::eq("model", "focus")),
            BoolExpr::Cond(Condition::eq("model", "corolla")),
        ]);
        let q = Query::new("cars").with_expr(expr);
        let w = render_where(&q);
        assert!(w.contains(") OR ("));
    }

    #[test]
    fn true_where_clause_and_limit() {
        let q = Query::new("cars").with_limit(5);
        assert!(render(&q).contains("WHERE 1 = 1"));
        assert!(render(&q).ends_with("LIMIT 5"));
    }
}
