//! Ads tables: record storage plus the paper's three index structures.
//!
//! * Type I attribute values are kept in a **primary index** (value → record ids).
//! * Type II attribute values are kept in a **secondary index**.
//! * All categorical values also feed the length-3 **substring index** of Section 4.5.
//! * Type III attribute values are stored in per-column sorted vectors so that range
//!   and superlative evaluation does not need to touch unrelated records.
//!
//! In addition to the indexes, every categorical value is **interned at insert time**
//! ([`TextCell`]): the normalized value and its stemmed words become integer symbols,
//! so similarity scoring during partial matching never re-normalizes or re-stems a
//! stored string. Posting lists are kept **sorted by record id** (ids are assigned in
//! insertion order and appended monotonically), which lets the executor intersect them
//! by sorted merge instead of hashing. Records themselves live behind [`Arc`] so
//! answers can share them without deep-cloning.

use crate::error::{DbError, DbResult};
use crate::record::{Record, RecordId};
use crate::schema::{AttrType, Schema};
use crate::substring::SubstringIndex;
use crate::value::Value;
use cqads_text::intern::{self, Sym};
use cqads_text::porter_stem;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Interned form of one categorical cell, computed once at insert time.
#[derive(Debug, Clone)]
pub struct TextCell {
    /// Symbol of the full normalized value (lowercase, whitespace-collapsed).
    pub sym: Sym,
    /// Symbols of the Porter-stemmed whitespace-separated words of the value.
    pub stems: Box<[Sym]>,
}

/// Per-attribute column of interned categorical cells, indexed by record id.
#[derive(Debug, Clone, Default)]
pub struct TextColumn {
    cells: Vec<Option<TextCell>>,
}

impl TextColumn {
    /// The interned cell of `id`, if the record carries this attribute.
    pub fn cell(&self, id: RecordId) -> Option<&TextCell> {
        self.cells.get(id.0 as usize).and_then(Option::as_ref)
    }
}

/// Per-attribute column of numeric values, indexed by record id (O(1) per-record
/// access; the sorted `(value, id)` vector remains the range/superlative index).
#[derive(Debug, Clone, Default)]
pub struct NumericColumn {
    values: Vec<Option<f64>>,
}

impl NumericColumn {
    /// The numeric value of `id`, if the record carries this attribute.
    pub fn value(&self, id: RecordId) -> Option<f64> {
        self.values.get(id.0 as usize).and_then(|v| *v)
    }
}

/// One ads domain table: schema, rows and indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    records: Vec<Arc<Record>>,
    /// attribute -> text value -> record ids sorted ascending (Type I).
    primary: HashMap<String, HashMap<String, Vec<RecordId>>>,
    /// attribute -> text value -> record ids sorted ascending (Type II).
    secondary: HashMap<String, HashMap<String, Vec<RecordId>>>,
    /// attribute -> (value, record id) sorted by value (Type III).
    numeric: HashMap<String, Vec<(f64, RecordId)>>,
    /// attribute -> interned cells by record id (Type I and Type II).
    text_cols: HashMap<String, TextColumn>,
    /// attribute -> numeric value by record id (Type III).
    num_cols: HashMap<String, NumericColumn>,
    substring: SubstringIndex,
}

impl Table {
    /// Create an empty table for the given schema.
    pub fn new(schema: Schema) -> Self {
        let mut primary = HashMap::new();
        let mut secondary = HashMap::new();
        let mut numeric = HashMap::new();
        let mut text_cols = HashMap::new();
        let mut num_cols = HashMap::new();
        for attr in schema.attributes() {
            match attr.attr_type {
                AttrType::TypeI => {
                    primary.insert(attr.name.clone(), HashMap::new());
                    text_cols.insert(attr.name.clone(), TextColumn::default());
                }
                AttrType::TypeII => {
                    secondary.insert(attr.name.clone(), HashMap::new());
                    text_cols.insert(attr.name.clone(), TextColumn::default());
                }
                AttrType::TypeIII => {
                    numeric.insert(attr.name.clone(), Vec::new());
                    num_cols.insert(attr.name.clone(), NumericColumn::default());
                }
            }
        }
        Table {
            schema,
            records: Vec::new(),
            primary,
            secondary,
            numeric,
            text_cols,
            num_cols,
            substring: SubstringIndex::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Domain / table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Access to the substring index (used by the shorthand-matching code path).
    pub fn substring_index(&self) -> &SubstringIndex {
        &self.substring
    }

    /// Validate a record against the schema and insert it, updating every index.
    pub fn insert(&mut self, record: Record) -> DbResult<RecordId> {
        // Validation pass: unknown attributes, type mismatches, missing Type I values.
        for (name, value) in record.fields() {
            let attr = self.schema.require(name)?;
            let ok = match attr.attr_type {
                AttrType::TypeI | AttrType::TypeII => value.is_text(),
                AttrType::TypeIII => value.is_number(),
            };
            if !ok {
                return Err(DbError::TypeMismatch {
                    attribute: name.to_string(),
                    expected: match attr.attr_type {
                        AttrType::TypeIII => "number",
                        _ => "text",
                    },
                    found: value.type_name().to_string(),
                });
            }
        }
        for t1 in self.schema.type1_names() {
            if !record.has(t1) {
                return Err(DbError::MissingRequiredAttribute {
                    attribute: t1.to_string(),
                });
            }
        }

        let id = RecordId(self.records.len() as u32);
        for (name, value) in record.fields() {
            match value {
                Value::Text(text) => {
                    self.substring.insert(name, text, id);
                    let attr = self.schema.attribute(name).expect("validated above");
                    let target = match attr.attr_type {
                        AttrType::TypeI => self.primary.get_mut(name),
                        AttrType::TypeII => self.secondary.get_mut(name),
                        AttrType::TypeIII => None,
                    };
                    if let Some(index) = target {
                        // `id` is monotonically increasing, so posting lists stay
                        // sorted ascending without an explicit sort.
                        index.entry(text.clone()).or_default().push(id);
                    }
                }
                Value::Number(n) => {
                    if let Some(col) = self.numeric.get_mut(name) {
                        let pos = col.partition_point(|(v, _)| *v < *n);
                        col.insert(pos, (*n, id));
                    }
                }
            }
        }
        // Interned column stores: one slot per record in every column, so columns stay
        // aligned with record ids. Values are already normalized (lowercased) by
        // `Value::text`; stems mirror the WS-matrix convention (stem of the lowercase
        // word), so hot-path scoring needs no further normalization.
        for (name, col) in self.text_cols.iter_mut() {
            let cell = record.get_text(name).map(|text| TextCell {
                sym: intern::intern(text),
                stems: text
                    .split_whitespace()
                    .map(|w| intern::intern(&porter_stem(w)))
                    .collect(),
            });
            col.cells.push(cell);
        }
        for (name, col) in self.num_cols.iter_mut() {
            col.values.push(record.get_number(name));
        }
        self.records.push(Arc::new(record));
        Ok(id)
    }

    /// Fetch a record by id.
    pub fn get(&self, id: RecordId) -> Option<&Record> {
        self.records.get(id.0 as usize).map(Arc::as_ref)
    }

    /// Fetch a shared handle to a record by id (answers hold this instead of cloning
    /// the whole record).
    pub fn get_shared(&self, id: RecordId) -> Option<Arc<Record>> {
        self.records.get(id.0 as usize).cloned()
    }

    /// Iterate over `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (RecordId(i as u32), r.as_ref()))
    }

    /// All record ids in the table.
    pub fn all_ids(&self) -> HashSet<RecordId> {
        (0..self.records.len() as u32).map(RecordId).collect()
    }

    /// Interned categorical column of an attribute (Type I / Type II).
    pub fn text_column(&self, attribute: &str) -> Option<&TextColumn> {
        self.text_cols.get(attribute)
    }

    /// Record-id-indexed numeric column of an attribute (Type III).
    pub fn numeric_column(&self, attribute: &str) -> Option<&NumericColumn> {
        self.num_cols.get(attribute)
    }

    /// Records whose Type I or Type II `attribute` equals `value`, via the hash indexes.
    pub fn lookup_eq(&self, attribute: &str, value: &str) -> Vec<RecordId> {
        self.posting_list(attribute, value)
            .map(<[RecordId]>::to_vec)
            .unwrap_or_default()
    }

    /// Zero-copy view of the posting list for a categorical equality: record ids
    /// sorted ascending. `None` when the attribute has no index entry for the value.
    pub fn posting_list(&self, attribute: &str, value: &str) -> Option<&[RecordId]> {
        let value = crate::value::normalize_text(value);
        self.primary
            .get(attribute)
            .or_else(|| self.secondary.get(attribute))
            .and_then(|m| m.get(&value))
            .map(Vec::as_slice)
    }

    /// Records whose numeric `attribute` lies in `[low, high]`, via the sorted column.
    pub fn lookup_range(&self, attribute: &str, low: f64, high: f64) -> Vec<RecordId> {
        let Some(col) = self.numeric.get(attribute) else {
            return Vec::new();
        };
        let start = col.partition_point(|(v, _)| *v < low);
        col[start..]
            .iter()
            .take_while(|(v, _)| *v <= high)
            .map(|(_, id)| *id)
            .collect()
    }

    /// Minimum / maximum value of a numeric column among the given candidate set.
    /// Returns the extreme value and every candidate record holding it.
    pub fn extreme(
        &self,
        attribute: &str,
        candidates: &HashSet<RecordId>,
        max: bool,
    ) -> Option<(f64, Vec<RecordId>)> {
        let col = self.numeric.get(attribute)?;
        let mut iter: Box<dyn Iterator<Item = &(f64, RecordId)>> = if max {
            Box::new(col.iter().rev())
        } else {
            Box::new(col.iter())
        };
        let (best, first) = iter
            .find(|(_, id)| candidates.contains(id))
            .map(|(v, id)| (*v, *id))?;
        // Collect every candidate sharing the extreme value.
        let mut ids = vec![first];
        for (v, id) in col.iter() {
            if (*v - best).abs() < 1e-9 && *id != first && candidates.contains(id) {
                ids.push(*id);
            }
        }
        Some((best, ids))
    }

    /// [`Table::extreme`] over a candidate slice sorted by record id (membership by
    /// binary search — no hash set needed on the executor's sorted-merge path).
    pub fn extreme_sorted(
        &self,
        attribute: &str,
        candidates: &[RecordId],
        max: bool,
    ) -> Option<(f64, Vec<RecordId>)> {
        let col = self.numeric.get(attribute)?;
        let contains = |id: &RecordId| candidates.binary_search(id).is_ok();
        let mut iter: Box<dyn Iterator<Item = &(f64, RecordId)>> = if max {
            Box::new(col.iter().rev())
        } else {
            Box::new(col.iter())
        };
        let (best, first) = iter.find(|(_, id)| contains(id)).map(|(v, id)| (*v, *id))?;
        let mut ids = vec![first];
        for (v, id) in col.iter() {
            if (*v - best).abs() < 1e-9 && *id != first && contains(id) {
                ids.push(*id);
            }
        }
        Some((best, ids))
    }

    /// Observed (min, max) of a numeric column — used as the "valid range" for the
    /// incomplete-question best guess when it is narrower than the schema range
    /// (Section 4.2.2: determined by the smallest/largest value under the column).
    pub fn observed_range(&self, attribute: &str) -> Option<(f64, f64)> {
        let col = self.numeric.get(attribute)?;
        match (col.first(), col.last()) {
            (Some((lo, _)), Some((hi, _))) => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// Distinct categorical values of an attribute (used for AIMQ supertuples and for
    /// trie construction).
    pub fn distinct_text_values(&self, attribute: &str) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if let Some(v) = r.get_text(attribute) {
                if seen.insert(v.to_string()) {
                    out.push(v.to_string());
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_schema() -> Schema {
        Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type2("transmission")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .type3("year", 1985.0, 2011.0, None)
            .build()
            .unwrap()
    }

    fn car(make: &str, model: &str, color: &str, trans: &str, price: f64, year: f64) -> Record {
        Record::builder()
            .text("make", make)
            .text("model", model)
            .text("color", color)
            .text("transmission", trans)
            .number("price", price)
            .number("year", year)
            .build()
    }

    fn sample_table() -> Table {
        let mut t = Table::new(car_schema());
        t.insert(car("honda", "accord", "blue", "automatic", 6600.0, 2004.0))
            .unwrap();
        t.insert(car("honda", "accord", "gold", "manual", 16536.0, 2009.0))
            .unwrap();
        t.insert(car("toyota", "camry", "blue", "automatic", 8561.0, 2006.0))
            .unwrap();
        t.insert(car("ford", "focus", "blue", "manual", 6795.0, 2005.0))
            .unwrap();
        t
    }

    #[test]
    fn insert_validates_required_type1_values() {
        let mut t = Table::new(car_schema());
        let missing_model = Record::builder().text("make", "honda").build();
        let err = t.insert(missing_model).unwrap_err();
        assert!(matches!(err, DbError::MissingRequiredAttribute { .. }));
    }

    #[test]
    fn insert_validates_types_and_attributes() {
        let mut t = Table::new(car_schema());
        let bad_type = Record::builder()
            .text("make", "honda")
            .text("model", "accord")
            .text("price", "cheap")
            .build();
        assert!(matches!(
            t.insert(bad_type).unwrap_err(),
            DbError::TypeMismatch { .. }
        ));
        let unknown = Record::builder()
            .text("make", "honda")
            .text("model", "accord")
            .text("wheels", "4")
            .build();
        assert!(matches!(
            t.insert(unknown).unwrap_err(),
            DbError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn primary_and_secondary_lookups_use_indexes() {
        let t = sample_table();
        assert_eq!(t.lookup_eq("make", "Honda").len(), 2);
        assert_eq!(t.lookup_eq("model", "camry").len(), 1);
        assert_eq!(t.lookup_eq("color", "blue").len(), 3);
        assert_eq!(t.lookup_eq("color", "purple").len(), 0);
        assert_eq!(t.lookup_eq("nonexistent", "x").len(), 0);
    }

    #[test]
    fn range_lookup_is_inclusive_and_sorted() {
        let t = sample_table();
        let ids = t.lookup_range("price", 6600.0, 9000.0);
        assert_eq!(ids.len(), 3);
        let ids = t.lookup_range("price", 0.0, 100.0);
        assert!(ids.is_empty());
        let ids = t.lookup_range("year", 2006.0, 2011.0);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn extreme_respects_candidate_set() {
        let t = sample_table();
        let hondas: HashSet<RecordId> = t.lookup_eq("make", "honda").into_iter().collect();
        let (cheapest, ids) = t.extreme("price", &hondas, false).unwrap();
        assert_eq!(cheapest, 6600.0);
        assert_eq!(ids.len(), 1);
        let all = t.all_ids();
        let (max_year, _) = t.extreme("year", &all, true).unwrap();
        assert_eq!(max_year, 2009.0);
        assert!(t.extreme("price", &HashSet::new(), false).is_none());
    }

    #[test]
    fn observed_range_and_distinct_values() {
        let t = sample_table();
        assert_eq!(t.observed_range("price"), Some((6600.0, 16536.0)));
        assert_eq!(t.observed_range("nonexistent"), None);
        assert_eq!(
            t.distinct_text_values("make"),
            vec!["ford", "honda", "toyota"]
        );
        assert_eq!(t.distinct_text_values("color").len(), 2);
    }

    #[test]
    fn substring_index_is_populated_on_insert() {
        let t = sample_table();
        let cands = t.substring_index().substring_candidates("model", "cord");
        assert_eq!(cands.len(), 2); // both accords
    }

    #[test]
    fn len_iter_and_get_are_consistent() {
        let t = sample_table();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.get(RecordId(0)).unwrap().get_text("make"), Some("honda"));
        assert!(t.get(RecordId(99)).is_none());
        assert_eq!(t.all_ids().len(), 4);
        assert_eq!(t.name(), "cars");
    }
}
