//! Ads tables: record storage plus the paper's three index structures.
//!
//! * Type I attribute values are kept in a **primary index** (value → record ids).
//! * Type II attribute values are kept in a **secondary index**.
//! * All categorical values also feed the length-3 **substring index** of Section 4.5.
//! * Type III attribute values are stored in per-column sorted vectors so that range
//!   and superlative evaluation does not need to touch unrelated records.
//!
//! In addition to the indexes, every categorical value is **interned at insert time**
//! ([`TextCell`]): the normalized value and its stemmed words become integer symbols,
//! so similarity scoring during partial matching never re-normalizes or re-stems a
//! stored string. Posting lists ([`PostingList`]) are kept **sorted by record id** (ids
//! are assigned in insertion order and appended monotonically), which lets the executor
//! intersect them by sorted merge instead of hashing, and carry **per-block max-id
//! metadata** (one entry per [`POSTING_BLOCK`] ids, maintained incrementally at insert)
//! so a skewed intersection can skip whole blocks without touching the ids themselves.
//! Records live behind [`Arc`] so answers can share them without deep-cloning.

use crate::error::{DbError, DbResult};
use crate::record::{Record, RecordId};
use crate::schema::{AttrType, Schema};
use crate::substring::SubstringIndex;
use crate::value::Value;
use cqads_text::intern::{self, Sym};
use cqads_text::porter_stem;
use std::collections::{HashMap, HashSet};
use std::sync::Arc;

/// Ids per block of the [`PostingList`] skip metadata. 64 ids (256 bytes) spans four
/// cache lines — small enough that a block scan stays cheap, large enough that the
/// block-max array is ~1.5% of the list and fits in cache even for huge lists.
pub const POSTING_BLOCK: usize = 64;

/// One sorted posting list (record ids ascending) plus per-block max-id skip metadata.
///
/// `block_max[b]` is the largest id in `ids[b * POSTING_BLOCK ..][..POSTING_BLOCK]`,
/// i.e. the last id of the block (lists are sorted). A seek for `target` first gallops
/// over `block_max` to find the first block that can contain `target`, then binary
/// searches only inside that one block — the ids of skipped blocks are never read.
/// Both vectors are maintained incrementally: appending a monotonically increasing id
/// either updates the last block's max or opens a new block, so inserts stay O(1).
#[derive(Debug, Clone, Default)]
pub struct PostingList {
    ids: Vec<RecordId>,
    block_max: Vec<RecordId>,
}

impl PostingList {
    /// Build a list from ids already sorted strictly ascending (test/bench helper; the
    /// table builds its lists incrementally through `push`).
    pub fn from_sorted(ids: Vec<RecordId>) -> Self {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be ascending");
        let block_max = ids
            .chunks(POSTING_BLOCK)
            // lint: allow(no-panic) — slice::chunks never yields an empty chunk
            .map(|block| *block.last().expect("chunks are non-empty"))
            .collect();
        PostingList { ids, block_max }
    }

    /// Append an id larger than every id already present.
    fn push(&mut self, id: RecordId) {
        debug_assert!(self.ids.last().is_none_or(|last| *last < id));
        if self.ids.len().is_multiple_of(POSTING_BLOCK) {
            self.block_max.push(id);
        } else {
            *self
                .block_max
                .last_mut()
                // lint: allow(no-panic) — len not a block multiple implies a started block
                .expect("non-empty list has blocks") = id;
        }
        self.ids.push(id);
    }

    /// The record ids, sorted ascending.
    pub fn ids(&self) -> &[RecordId] {
        &self.ids
    }

    /// Per-block maximum id (the last id of each [`POSTING_BLOCK`]-sized block).
    pub fn block_max(&self) -> &[RecordId] {
        &self.block_max
    }

    /// Number of ids in the list.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True when the list holds no ids.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }
}

/// Per-attribute directory of distinct categorical values: interned value symbol →
/// posting list, plus the **value directory** — every distinct value in first-seen
/// (insertion) order with its document frequency (`postings.len()`).
///
/// This is the substrate of the value-ordered (WAND-style) partial scorer: a
/// relaxed-attribute plan walks [`ValueIndex::entries`] once, scores each distinct
/// value exactly, and then drains only the posting lists whose score can still beat
/// the current top-k threshold — the ids of sub-threshold values are never touched.
/// Keying by [`Sym`] keeps the equality lookup a single integer hash probe (values
/// are normalized and interned at insert time), and the first-seen entry order makes
/// score-tie ordering deterministic across runs.
#[derive(Debug, Clone, Default)]
pub struct ValueIndex {
    /// Value symbol → slot in `entries`.
    by_sym: HashMap<Sym, u32, intern::SymHashBuilder>,
    /// Distinct values in first-seen order.
    entries: Vec<(Sym, PostingList)>,
}

impl ValueIndex {
    /// Append `id` to the posting list of `sym` (ids arrive monotonically increasing,
    /// so lists stay sorted and their block maxima current — see [`PostingList`]).
    fn push(&mut self, sym: Sym, id: RecordId) {
        let slot = match self.by_sym.get(&sym) {
            Some(&slot) => slot as usize,
            None => {
                let slot = self.entries.len();
                self.by_sym.insert(sym, slot as u32);
                self.entries.push((sym, PostingList::default()));
                slot
            }
        };
        self.entries[slot].1.push(id);
    }

    /// Posting list of one value, `None` when the value never occurs in the column.
    pub fn get(&self, sym: Sym) -> Option<&PostingList> {
        self.by_sym
            .get(&sym)
            .map(|&slot| &self.entries[slot as usize].1)
    }

    /// The value directory: every distinct value with its posting list, in first-seen
    /// order. Document frequency of a value is `postings.len()`.
    pub fn entries(&self) -> impl Iterator<Item = (Sym, &PostingList)> {
        self.entries.iter().map(|(sym, list)| (*sym, list))
    }

    /// How many records carry `sym` in this column (0 when the value never occurs).
    pub fn doc_frequency(&self, sym: Sym) -> usize {
        self.get(sym).map_or(0, PostingList::len)
    }

    /// Number of distinct values in the column.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the column holds no values at all.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Interned form of one categorical cell, computed once at insert time.
#[derive(Debug, Clone)]
pub struct TextCell {
    /// Symbol of the full normalized value (lowercase, whitespace-collapsed).
    pub sym: Sym,
    /// Symbols of the Porter-stemmed whitespace-separated words of the value.
    pub stems: Box<[Sym]>,
}

/// Per-attribute column of interned categorical cells, indexed by record id.
///
/// Stored twice, deliberately: the full [`TextCell`]s (symbol + stemmed words, ~32
/// bytes each) and a dense symbol-only mirror (8 bytes each). Batch scoring is
/// memory-bound on this column — the memoizing scorer needs *only* the value symbol
/// per record (stems are touched once per distinct value), so the dense mirror cuts
/// the cache lines touched per candidate by 4×.
#[derive(Debug, Clone, Default)]
pub struct TextColumn {
    cells: Vec<Option<TextCell>>,
    syms: Vec<Option<Sym>>,
}

impl TextColumn {
    /// The interned cell of `id`, if the record carries this attribute.
    pub fn cell(&self, id: RecordId) -> Option<&TextCell> {
        self.cells.get(id.0 as usize).and_then(Option::as_ref)
    }

    /// The value symbol of `id` alone, from the dense mirror — the batch-scoring hot
    /// path; prefer this when the stems are not needed.
    pub fn sym(&self, id: RecordId) -> Option<Sym> {
        self.syms.get(id.0 as usize).copied().flatten()
    }
}

/// Per-attribute column of numeric values, indexed by record id (O(1) per-record
/// access; the sorted `(value, id)` vector remains the range/superlative index).
/// Missing values are stored as a NaN sentinel so a cell costs 8 bytes, not 16 —
/// range predicates stream this column for every surviving candidate.
#[derive(Debug, Clone, Default)]
pub struct NumericColumn {
    values: Vec<f64>,
}

impl NumericColumn {
    /// The numeric value of `id`, if the record carries this attribute.
    pub fn value(&self, id: RecordId) -> Option<f64> {
        match self.values.get(id.0 as usize) {
            Some(v) if !v.is_nan() => Some(*v),
            _ => None,
        }
    }
}

/// One ads domain table: schema, rows and indexes.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    /// Monotonic mutation counter: bumped on every successful [`Table::insert`].
    /// Serving-layer caches stamp entries with the generation observed *before*
    /// computing an answer; a stamp that trails the current generation proves a
    /// mutation happened in between, so the entry can never be served stale.
    generation: u64,
    records: Vec<Arc<Record>>,
    /// attribute -> value directory + sym-keyed block-max posting lists (Type I).
    primary: HashMap<String, ValueIndex>,
    /// attribute -> value directory + sym-keyed block-max posting lists (Type II).
    secondary: HashMap<String, ValueIndex>,
    /// attribute -> (value, record id) sorted by value (Type III).
    numeric: HashMap<String, Vec<(f64, RecordId)>>,
    /// attribute -> interned cells by record id (Type I and Type II).
    text_cols: HashMap<String, TextColumn>,
    /// attribute -> numeric value by record id (Type III).
    num_cols: HashMap<String, NumericColumn>,
    substring: SubstringIndex,
}

impl Table {
    /// Create an empty table for the given schema.
    pub fn new(schema: Schema) -> Self {
        let mut primary = HashMap::new();
        let mut secondary = HashMap::new();
        let mut numeric = HashMap::new();
        let mut text_cols = HashMap::new();
        let mut num_cols = HashMap::new();
        for attr in schema.attributes() {
            match attr.attr_type {
                AttrType::TypeI => {
                    primary.insert(attr.name.clone(), ValueIndex::default());
                    text_cols.insert(attr.name.clone(), TextColumn::default());
                }
                AttrType::TypeII => {
                    secondary.insert(attr.name.clone(), ValueIndex::default());
                    text_cols.insert(attr.name.clone(), TextColumn::default());
                }
                AttrType::TypeIII => {
                    numeric.insert(attr.name.clone(), Vec::new());
                    num_cols.insert(attr.name.clone(), NumericColumn::default());
                }
            }
        }
        Table {
            schema,
            generation: 0,
            records: Vec::new(),
            primary,
            secondary,
            numeric,
            text_cols,
            num_cols,
            substring: SubstringIndex::new(),
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Domain / table name.
    pub fn name(&self) -> &str {
        &self.schema.name
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True if the table holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Current mutation generation: `0` for a fresh table, incremented by every
    /// successful [`Table::insert`] (failed inserts leave it untouched). Strictly
    /// monotonic for the lifetime of the table; [`crate::Database`] carries it
    /// forward when a domain's table is replaced, so a generation observed for a
    /// domain name never goes backwards either.
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Raise the generation to at least `floor`; never lowers it. Used by
    /// [`crate::Database`] to keep per-domain generations monotonic across table
    /// replacement, and by crash recovery to restore a persisted generation (and
    /// to raise it further when part of the write-ahead log was lost, so no
    /// generation stamp handed out before the crash can exceed the recovered
    /// one).
    pub fn raise_generation(&mut self, floor: u64) {
        self.generation = self.generation.max(floor);
    }

    /// Rebuild a table from records in storage order, restoring a persisted
    /// mutation generation.
    ///
    /// Every index structure (posting lists, block maxima, substring index,
    /// interned columns) is rebuilt by the ordinary [`Table::insert`] path, so
    /// a recovered table is structurally identical to one that received the
    /// same inserts live — record ids are assigned in iteration order exactly
    /// as [`Table::iter`] yields them. The resulting generation is the larger
    /// of `generation` and the insert count (each insert advances it by one;
    /// a persisted generation can exceed the count when the table replaced an
    /// earlier one, never trail it).
    pub fn from_records(
        schema: Schema,
        records: impl IntoIterator<Item = Record>,
        generation: u64,
    ) -> DbResult<Self> {
        let mut table = Table::new(schema);
        for record in records {
            table.insert(record)?;
        }
        table.raise_generation(generation);
        Ok(table)
    }

    /// Access to the substring index (used by the shorthand-matching code path).
    pub fn substring_index(&self) -> &SubstringIndex {
        &self.substring
    }

    /// Validate a record against the schema and insert it, updating every index.
    pub fn insert(&mut self, record: Record) -> DbResult<RecordId> {
        // Validation pass: unknown attributes, type mismatches, missing Type I values.
        for (name, value) in record.fields() {
            let attr = self.schema.require(name)?;
            let ok = match attr.attr_type {
                AttrType::TypeI | AttrType::TypeII => value.is_text(),
                AttrType::TypeIII => value.is_number(),
            };
            if !ok {
                return Err(DbError::TypeMismatch {
                    attribute: name.to_string(),
                    expected: match attr.attr_type {
                        AttrType::TypeIII => "number",
                        _ => "text",
                    },
                    found: value.type_name().to_string(),
                });
            }
        }
        for t1 in self.schema.type1_names() {
            if !record.has(t1) {
                return Err(DbError::MissingRequiredAttribute {
                    attribute: t1.to_string(),
                });
            }
        }

        let id = RecordId(self.records.len() as u32);
        for (name, value) in record.fields() {
            match value {
                Value::Text(text) => {
                    self.substring.insert(name, text, id);
                    // lint: allow(no-panic) — record validated against this schema at fn entry
                    let attr = self.schema.attribute(name).expect("validated above");
                    let target = match attr.attr_type {
                        AttrType::TypeI => self.primary.get_mut(name),
                        AttrType::TypeII => self.secondary.get_mut(name),
                        AttrType::TypeIII => None,
                    };
                    if let Some(index) = target {
                        // `id` is monotonically increasing, so posting lists stay
                        // sorted ascending (and their block maxima current) without an
                        // explicit sort. Values were normalized by `Value::text`, so
                        // this symbol is exactly the one the text columns store.
                        index.push(intern::intern(text), id);
                    }
                }
                Value::Number(n) => {
                    if let Some(col) = self.numeric.get_mut(name) {
                        let pos = col.partition_point(|(v, _)| *v < *n);
                        col.insert(pos, (*n, id));
                    }
                }
            }
        }
        // Interned column stores: one slot per record in every column, so columns stay
        // aligned with record ids. Values are already normalized (lowercased) by
        // `Value::text`; stems mirror the WS-matrix convention (stem of the lowercase
        // word), so hot-path scoring needs no further normalization.
        for (name, col) in self.text_cols.iter_mut() {
            let cell = record.get_text(name).map(|text| TextCell {
                sym: intern::intern(text),
                stems: text
                    .split_whitespace()
                    .map(|w| intern::intern(&porter_stem(w)))
                    .collect(),
            });
            col.syms.push(cell.as_ref().map(|c| c.sym));
            col.cells.push(cell);
        }
        for (name, col) in self.num_cols.iter_mut() {
            col.values.push(record.get_number(name).unwrap_or(f64::NAN));
        }
        self.records.push(Arc::new(record));
        self.generation += 1;
        Ok(id)
    }

    /// Fetch a record by id.
    pub fn get(&self, id: RecordId) -> Option<&Record> {
        self.records.get(id.0 as usize).map(Arc::as_ref)
    }

    /// Fetch a shared handle to a record by id (answers hold this instead of cloning
    /// the whole record).
    pub fn get_shared(&self, id: RecordId) -> Option<Arc<Record>> {
        self.records.get(id.0 as usize).cloned()
    }

    /// Iterate over `(id, record)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (RecordId, &Record)> {
        self.records
            .iter()
            .enumerate()
            .map(|(i, r)| (RecordId(i as u32), r.as_ref()))
    }

    /// All record ids in the table.
    pub fn all_ids(&self) -> HashSet<RecordId> {
        (0..self.records.len() as u32).map(RecordId).collect()
    }

    /// Interned categorical column of an attribute (Type I / Type II).
    pub fn text_column(&self, attribute: &str) -> Option<&TextColumn> {
        self.text_cols.get(attribute)
    }

    /// Record-id-indexed numeric column of an attribute (Type III).
    pub fn numeric_column(&self, attribute: &str) -> Option<&NumericColumn> {
        self.num_cols.get(attribute)
    }

    /// Records whose Type I or Type II `attribute` equals `value`, via the hash indexes.
    pub fn lookup_eq(&self, attribute: &str, value: &str) -> Vec<RecordId> {
        self.posting_list(attribute, value)
            .map(|list| list.ids().to_vec())
            .unwrap_or_default()
    }

    /// Zero-copy view of the posting list for a categorical equality: record ids
    /// sorted ascending plus block-max skip metadata. `None` when the attribute has no
    /// index entry for the value.
    pub fn posting_list(&self, attribute: &str, value: &str) -> Option<&PostingList> {
        // A value whose normalized form was never interned anywhere in the process
        // cannot occur in any column, so the lookup can fail fast without allocating
        // a map key.
        let sym = intern::lookup(&crate::value::normalize_text(value))?;
        self.value_index(attribute).and_then(|index| index.get(sym))
    }

    /// The value directory of a categorical attribute (Type I / Type II): every
    /// distinct value with its posting list and document frequency. `None` for
    /// numeric or unknown attributes.
    pub fn value_index(&self, attribute: &str) -> Option<&ValueIndex> {
        self.primary
            .get(attribute)
            .or_else(|| self.secondary.get(attribute))
    }

    /// How many records hold numeric `attribute` in `[low, high]` — two binary
    /// searches on the sorted column, no materialization. The executor uses this to
    /// decide between materializing a range's ids and streaming a lazy per-record
    /// filter.
    pub fn range_count(&self, attribute: &str, low: f64, high: f64) -> usize {
        let Some(col) = self.numeric.get(attribute) else {
            return 0;
        };
        let start = col.partition_point(|(v, _)| *v < low);
        let end = col.partition_point(|(v, _)| *v <= high);
        end.saturating_sub(start)
    }

    /// Records whose numeric `attribute` lies in `[low, high]`, via the sorted column.
    pub fn lookup_range(&self, attribute: &str, low: f64, high: f64) -> Vec<RecordId> {
        let Some(col) = self.numeric.get(attribute) else {
            return Vec::new();
        };
        let start = col.partition_point(|(v, _)| *v < low);
        col[start..]
            .iter()
            .take_while(|(v, _)| *v <= high)
            .map(|(_, id)| *id)
            .collect()
    }

    /// Minimum / maximum value of a numeric column among the given candidate set.
    /// Returns the extreme value and every candidate record holding it.
    pub fn extreme(
        &self,
        attribute: &str,
        candidates: &HashSet<RecordId>,
        max: bool,
    ) -> Option<(f64, Vec<RecordId>)> {
        let col = self.numeric.get(attribute)?;
        let mut iter: Box<dyn Iterator<Item = &(f64, RecordId)>> = if max {
            Box::new(col.iter().rev())
        } else {
            Box::new(col.iter())
        };
        let (best, first) = iter
            .find(|(_, id)| candidates.contains(id))
            .map(|(v, id)| (*v, *id))?;
        // Collect every candidate sharing the extreme value.
        let mut ids = vec![first];
        for (v, id) in col.iter() {
            if (*v - best).abs() < 1e-9 && *id != first && candidates.contains(id) {
                ids.push(*id);
            }
        }
        Some((best, ids))
    }

    /// [`Table::extreme`] over a candidate slice sorted by record id (membership by
    /// binary search — no hash set needed on the executor's sorted-merge path).
    pub fn extreme_sorted(
        &self,
        attribute: &str,
        candidates: &[RecordId],
        max: bool,
    ) -> Option<(f64, Vec<RecordId>)> {
        let col = self.numeric.get(attribute)?;
        let contains = |id: &RecordId| candidates.binary_search(id).is_ok();
        let mut iter: Box<dyn Iterator<Item = &(f64, RecordId)>> = if max {
            Box::new(col.iter().rev())
        } else {
            Box::new(col.iter())
        };
        let (best, first) = iter.find(|(_, id)| contains(id)).map(|(v, id)| (*v, *id))?;
        let mut ids = vec![first];
        for (v, id) in col.iter() {
            if (*v - best).abs() < 1e-9 && *id != first && contains(id) {
                ids.push(*id);
            }
        }
        Some((best, ids))
    }

    /// [`Table::extreme`] over the *whole* table: no candidate set is consulted (every
    /// record qualifies), so no table-sized id vector has to be materialized. Used by
    /// the superlatives-first ablation path of the executor.
    pub fn extreme_all(&self, attribute: &str, max: bool) -> Option<(f64, Vec<RecordId>)> {
        let col = self.numeric.get(attribute)?;
        let (best, first) = if max { col.last() } else { col.first() }.map(|(v, id)| (*v, *id))?;
        let mut ids = vec![first];
        for (v, id) in col.iter() {
            if (*v - best).abs() < 1e-9 && *id != first {
                ids.push(*id);
            }
        }
        Some((best, ids))
    }

    /// Observed (min, max) of a numeric column — used as the "valid range" for the
    /// incomplete-question best guess when it is narrower than the schema range
    /// (Section 4.2.2: determined by the smallest/largest value under the column).
    pub fn observed_range(&self, attribute: &str) -> Option<(f64, f64)> {
        let col = self.numeric.get(attribute)?;
        match (col.first(), col.last()) {
            (Some((lo, _)), Some((hi, _))) => Some((*lo, *hi)),
            _ => None,
        }
    }

    /// Distinct categorical values of an attribute (used for AIMQ supertuples and for
    /// trie construction).
    pub fn distinct_text_values(&self, attribute: &str) -> Vec<String> {
        let mut seen = HashSet::new();
        let mut out = Vec::new();
        for r in &self.records {
            if let Some(v) = r.get_text(attribute) {
                if seen.insert(v.to_string()) {
                    out.push(v.to_string());
                }
            }
        }
        out.sort();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn car_schema() -> Schema {
        Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type2("transmission")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .type3("year", 1985.0, 2011.0, None)
            .build()
            .unwrap()
    }

    fn car(make: &str, model: &str, color: &str, trans: &str, price: f64, year: f64) -> Record {
        Record::builder()
            .text("make", make)
            .text("model", model)
            .text("color", color)
            .text("transmission", trans)
            .number("price", price)
            .number("year", year)
            .build()
    }

    fn sample_table() -> Table {
        let mut t = Table::new(car_schema());
        t.insert(car("honda", "accord", "blue", "automatic", 6600.0, 2004.0))
            .unwrap();
        t.insert(car("honda", "accord", "gold", "manual", 16536.0, 2009.0))
            .unwrap();
        t.insert(car("toyota", "camry", "blue", "automatic", 8561.0, 2006.0))
            .unwrap();
        t.insert(car("ford", "focus", "blue", "manual", 6795.0, 2005.0))
            .unwrap();
        t
    }

    #[test]
    fn insert_validates_required_type1_values() {
        let mut t = Table::new(car_schema());
        let missing_model = Record::builder().text("make", "honda").build();
        let err = t.insert(missing_model).unwrap_err();
        assert!(matches!(err, DbError::MissingRequiredAttribute { .. }));
    }

    #[test]
    fn insert_validates_types_and_attributes() {
        let mut t = Table::new(car_schema());
        let bad_type = Record::builder()
            .text("make", "honda")
            .text("model", "accord")
            .text("price", "cheap")
            .build();
        assert!(matches!(
            t.insert(bad_type).unwrap_err(),
            DbError::TypeMismatch { .. }
        ));
        let unknown = Record::builder()
            .text("make", "honda")
            .text("model", "accord")
            .text("wheels", "4")
            .build();
        assert!(matches!(
            t.insert(unknown).unwrap_err(),
            DbError::UnknownAttribute { .. }
        ));
    }

    #[test]
    fn primary_and_secondary_lookups_use_indexes() {
        let t = sample_table();
        assert_eq!(t.lookup_eq("make", "Honda").len(), 2);
        assert_eq!(t.lookup_eq("model", "camry").len(), 1);
        assert_eq!(t.lookup_eq("color", "blue").len(), 3);
        assert_eq!(t.lookup_eq("color", "purple").len(), 0);
        assert_eq!(t.lookup_eq("nonexistent", "x").len(), 0);
    }

    #[test]
    fn range_lookup_is_inclusive_and_sorted() {
        let t = sample_table();
        let ids = t.lookup_range("price", 6600.0, 9000.0);
        assert_eq!(ids.len(), 3);
        let ids = t.lookup_range("price", 0.0, 100.0);
        assert!(ids.is_empty());
        let ids = t.lookup_range("year", 2006.0, 2011.0);
        assert_eq!(ids.len(), 2);
    }

    #[test]
    fn extreme_respects_candidate_set() {
        let t = sample_table();
        let hondas: HashSet<RecordId> = t.lookup_eq("make", "honda").into_iter().collect();
        let (cheapest, ids) = t.extreme("price", &hondas, false).unwrap();
        assert_eq!(cheapest, 6600.0);
        assert_eq!(ids.len(), 1);
        let all = t.all_ids();
        let (max_year, _) = t.extreme("year", &all, true).unwrap();
        assert_eq!(max_year, 2009.0);
        assert!(t.extreme("price", &HashSet::new(), false).is_none());
    }

    #[test]
    fn observed_range_and_distinct_values() {
        let t = sample_table();
        assert_eq!(t.observed_range("price"), Some((6600.0, 16536.0)));
        assert_eq!(t.observed_range("nonexistent"), None);
        assert_eq!(
            t.distinct_text_values("make"),
            vec!["ford", "honda", "toyota"]
        );
        assert_eq!(t.distinct_text_values("color").len(), 2);
    }

    #[test]
    fn posting_lists_carry_block_max_metadata() {
        let mut t = Table::new(car_schema());
        for i in 0..(POSTING_BLOCK * 2 + 5) {
            t.insert(car(
                "honda",
                "accord",
                if i % 2 == 0 { "blue" } else { "gold" },
                "manual",
                5000.0 + i as f64,
                2000.0,
            ))
            .unwrap();
        }
        let list = t.posting_list("make", "honda").unwrap();
        assert_eq!(list.len(), POSTING_BLOCK * 2 + 5);
        assert_eq!(list.block_max().len(), 3);
        // Every block max is the last id of its block.
        for (b, max) in list.block_max().iter().enumerate() {
            let end = ((b + 1) * POSTING_BLOCK).min(list.len());
            assert_eq!(*max, list.ids()[end - 1]);
        }
        // A sparse list (every other record) keeps the same invariant.
        let blue = t.posting_list("color", "blue").unwrap();
        assert_eq!(blue.len(), POSTING_BLOCK + 3);
        assert_eq!(blue.block_max().len(), 2);
        assert_eq!(blue.block_max()[0], blue.ids()[POSTING_BLOCK - 1]);
        assert_eq!(
            *blue.block_max().last().unwrap(),
            *blue.ids().last().unwrap()
        );
        // `from_sorted` builds identical metadata.
        let rebuilt = PostingList::from_sorted(blue.ids().to_vec());
        assert_eq!(rebuilt.block_max(), blue.block_max());
        assert!(PostingList::from_sorted(Vec::new()).is_empty());
    }

    #[test]
    fn value_index_tracks_directory_order_and_doc_frequencies() {
        let t = sample_table();
        let makes = t.value_index("make").unwrap();
        // First-seen order: honda (id 0), toyota (id 2), ford (id 3).
        let names: Vec<String> = makes
            .entries()
            .map(|(sym, _)| intern::resolve(sym))
            .collect();
        assert_eq!(names, vec!["honda", "toyota", "ford"]);
        assert_eq!(makes.len(), 3);
        assert!(!makes.is_empty());
        // Doc frequencies match the posting lists, which match lookup_eq.
        for (sym, list) in makes.entries() {
            assert_eq!(makes.doc_frequency(sym), list.len());
            let value = intern::resolve(sym);
            assert_eq!(t.lookup_eq("make", &value), list.ids().to_vec());
        }
        assert_eq!(makes.doc_frequency(intern::intern("nonexistent-make")), 0);
        // Secondary (Type II) attributes carry a directory too; numeric ones do not.
        assert!(t.value_index("color").is_some());
        assert!(t.value_index("price").is_none());
        assert!(t.value_index("wheels").is_none());
        // An empty table has an empty (but present) directory per text attribute.
        let empty = Table::new(car_schema());
        assert!(empty.value_index("make").unwrap().is_empty());
    }

    #[test]
    fn extreme_all_matches_extreme_over_all_ids() {
        let t = sample_table();
        let all = t.all_ids();
        assert_eq!(
            t.extreme_all("price", false),
            t.extreme("price", &all, false)
        );
        assert_eq!(t.extreme_all("price", true), t.extreme("price", &all, true));
        assert_eq!(t.extreme_all("nonexistent", true), None);
        let empty = Table::new(car_schema());
        assert_eq!(empty.extreme_all("price", false), None);
    }

    #[test]
    fn generation_advances_only_on_successful_inserts() {
        let mut t = Table::new(car_schema());
        assert_eq!(t.generation(), 0);
        t.insert(car("honda", "accord", "blue", "automatic", 6600.0, 2004.0))
            .unwrap();
        assert_eq!(t.generation(), 1);
        // A rejected record leaves the generation untouched.
        assert!(t
            .insert(Record::builder().text("make", "honda").build())
            .is_err());
        assert_eq!(t.generation(), 1);
        t.insert(car("ford", "focus", "blue", "manual", 6795.0, 2005.0))
            .unwrap();
        assert_eq!(t.generation(), 2);
        // raise_generation never lowers.
        t.raise_generation(1);
        assert_eq!(t.generation(), 2);
        t.raise_generation(10);
        assert_eq!(t.generation(), 10);
    }

    #[test]
    fn substring_index_is_populated_on_insert() {
        let t = sample_table();
        let cands = t.substring_index().substring_candidates("model", "cord");
        assert_eq!(cands.len(), 2); // both accords
    }

    #[test]
    fn len_iter_and_get_are_consistent() {
        let t = sample_table();
        assert_eq!(t.len(), 4);
        assert!(!t.is_empty());
        assert_eq!(t.iter().count(), 4);
        assert_eq!(t.get(RecordId(0)).unwrap().get_text("make"), Some("honda"));
        assert!(t.get(RecordId(99)).is_none());
        assert_eq!(t.all_ids().len(), 4);
        assert_eq!(t.name(), "cars");
    }

    #[test]
    fn from_records_rebuilds_ids_indexes_and_generation() {
        let original = sample_table();
        let records: Vec<Record> = original.iter().map(|(_, r)| r.clone()).collect();
        let rebuilt = Table::from_records(car_schema(), records, original.generation()).unwrap();

        assert_eq!(rebuilt.len(), original.len());
        assert_eq!(rebuilt.generation(), original.generation());
        // Record ids follow iteration order, so every record round-trips in place.
        for (id, record) in original.iter() {
            assert_eq!(rebuilt.get(id), Some(record));
        }
        // Indexes were rebuilt through the normal insert path.
        assert_eq!(
            rebuilt
                .substring_index()
                .substring_candidates("model", "cord")
                .len(),
            2
        );

        // A persisted generation above the insert count wins; one below it
        // (impossible in practice) is corrected up to the count.
        let records: Vec<Record> = original.iter().map(|(_, r)| r.clone()).collect();
        let raised = Table::from_records(car_schema(), records.clone(), 99).unwrap();
        assert_eq!(raised.generation(), 99);
        let floored = Table::from_records(car_schema(), records, 0).unwrap();
        assert_eq!(floored.generation(), original.len() as u64);

        // Invalid records surface the ordinary typed error.
        let bad = vec![Record::builder().text("make", "honda").build()];
        assert!(Table::from_records(car_schema(), bad, 1).is_err());
    }
}
