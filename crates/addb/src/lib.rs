//! # addb — the advertisements database substrate
//!
//! The CQAds paper evaluates SQL queries, translated from natural-language ads
//! questions, against a MySQL database holding one table per advertisement domain
//! (Cars-for-Sale, CS Jobs, ...). This crate is a self-contained, in-memory
//! re-implementation of everything CQAds needs from that database layer:
//!
//! * **Typed attribute model** (Section 4.1.1 of the paper): Type I attributes are the
//!   required, primary-indexed identifiers of the advertised product (car Make/Model),
//!   Type II attributes are descriptive, secondary-indexed properties (Color,
//!   Transmission), and Type III attributes are numeric quantities (Price, Year,
//!   Mileage) with a known valid range.
//! * **Tables with hash primary/secondary indexes** plus the paper's *length-3
//!   substring index* used to speed up partial string matching (Section 4.5).
//! * **A SQL-style query AST** ([`query::Query`]) with equality, range, negation,
//!   BETWEEN and superlative (`group by`/extreme value) constructs, and boolean
//!   combinations of sub-queries.
//! * **An executor** ([`exec::Executor`]) that follows the evaluation order mandated in
//!   Section 4.3: Type I conditions first (primary index), then Type II (secondary
//!   index), then Type III boundaries, and superlatives last; results are capped at 30
//!   answers as in the paper.
//! * **SQL rendering** ([`sql`]) so the translated query can be displayed exactly the
//!   way the paper shows it (Example 7).
//!
//! The engine is deliberately small but is a real query processor: the CQAds pipeline,
//! the baseline rankers and every experiment in the evaluation harness run on top of it.
//!
//! ```
//! use addb::prelude::*;
//!
//! // Build a tiny Cars-for-Sale table.
//! let schema = Schema::builder("cars")
//!     .type1("make")
//!     .type1("model")
//!     .type2("color")
//!     .type2("transmission")
//!     .type3("price", 500.0, 120_000.0, Some("usd"))
//!     .type3("year", 1985.0, 2011.0, None)
//!     .build()
//!     .unwrap();
//! let mut table = Table::new(schema);
//! table
//!     .insert(
//!         Record::builder()
//!             .text("make", "honda")
//!             .text("model", "accord")
//!             .text("color", "blue")
//!             .text("transmission", "automatic")
//!             .number("price", 6600.0)
//!             .number("year", 2004.0)
//!             .build(),
//!     )
//!     .unwrap();
//!
//! // "automatic blue cars"
//! let query = Query::new("cars")
//!     .with_condition(Condition::eq("transmission", "automatic"))
//!     .with_condition(Condition::eq("color", "blue"));
//! let executor = Executor::new(&table);
//! let answers = executor.execute(&query).unwrap();
//! assert_eq!(answers.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod database;
pub mod error;
pub mod exec;
pub mod query;
pub mod record;
pub mod schema;
pub mod sql;
pub mod substring;
pub mod table;
pub mod value;

pub use database::Database;
pub use error::{DbError, DbResult};
pub use exec::{ExecOptions, Executor, IdStream, QueryAnswer, ScoredUnion};
pub use query::{BoolExpr, Comparison, Condition, Query, Superlative, SuperlativeKind};
pub use record::{Record, RecordBuilder, RecordId};
pub use schema::{AttrType, AttributeDef, Schema, SchemaBuilder};
pub use substring::SubstringIndex;
pub use table::{
    NumericColumn, PostingList, Table, TextCell, TextColumn, ValueIndex, POSTING_BLOCK,
};
pub use value::Value;

/// Convenience re-exports for downstream crates and doctests.
pub mod prelude {
    pub use crate::database::Database;
    pub use crate::error::{DbError, DbResult};
    pub use crate::exec::{ExecOptions, Executor, QueryAnswer};
    pub use crate::query::{BoolExpr, Comparison, Condition, Query, Superlative, SuperlativeKind};
    pub use crate::record::{Record, RecordBuilder, RecordId};
    pub use crate::schema::{AttrType, AttributeDef, Schema, SchemaBuilder};
    pub use crate::table::Table;
    pub use crate::value::Value;
}

/// The paper caps retrieval at the first three result pages (30 answers), based on the
/// iProspect search-behaviour study cited in Section 4.3.1.
pub const DEFAULT_ANSWER_LIMIT: usize = 30;
