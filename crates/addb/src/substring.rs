//! Length-3 substring index.
//!
//! Section 4.5 of the paper: *"We have implemented a primary MySQL substring index of
//! length 3 on all the attributes of different ads domains ... Substring indexes are
//! shorter than their corresponding entire column values, require less disk storage,
//! and hold more keys in the cache memory for searching."*
//!
//! MySQL prefix indexes of length 3 map the first three characters of a column value to
//! the rows holding it. This module generalizes that slightly: every categorical value
//! is indexed both under its 3-character *prefix* (the MySQL behaviour) and under every
//! 3-character window (trigram), which is what the CQAds implementation needs for the
//! substring matching it uses "to speed up the process of retrieving answers" (item (iv)
//! in the introduction). Lookups return candidate record ids that still need to be
//! verified against the full value, exactly as a prefix index behaves.

use crate::record::RecordId;
use std::collections::{HashMap, HashSet};

/// Length of the indexed substring keys (the paper uses 3).
pub const SUBSTRING_KEY_LEN: usize = 3;

/// Inverted index from 3-character keys to record ids, per attribute.
#[derive(Debug, Clone, Default)]
pub struct SubstringIndex {
    /// attribute -> trigram -> record ids
    map: HashMap<String, HashMap<String, HashSet<RecordId>>>,
    /// attribute -> prefix (first 3 chars) -> record ids
    prefixes: HashMap<String, HashMap<String, HashSet<RecordId>>>,
}

impl SubstringIndex {
    /// Create an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Index a categorical value of `attribute` for the record `id`.
    pub fn insert(&mut self, attribute: &str, value: &str, id: RecordId) {
        let attribute = attribute.to_lowercase();
        let value = value.to_lowercase();
        let prefix = key_prefix(&value);
        self.prefixes
            .entry(attribute.clone())
            .or_default()
            .entry(prefix)
            .or_default()
            .insert(id);
        let grams = self.map.entry(attribute).or_default();
        for g in trigrams(&value) {
            grams.entry(g).or_default().insert(id);
        }
    }

    /// Candidate records whose `attribute` value starts with the same 3-character prefix
    /// as `value`. This mirrors a MySQL `INDEX (col(3))` lookup.
    pub fn prefix_candidates(&self, attribute: &str, value: &str) -> HashSet<RecordId> {
        let value = value.to_lowercase();
        self.prefixes
            .get(&attribute.to_lowercase())
            .and_then(|m| m.get(&key_prefix(&value)))
            .cloned()
            .unwrap_or_default()
    }

    /// Candidate records whose `attribute` value shares *all* trigrams of `value`
    /// (substring containment pre-filter). If the probe is shorter than 3 characters the
    /// prefix map is used instead.
    pub fn substring_candidates(&self, attribute: &str, value: &str) -> HashSet<RecordId> {
        let value = value.to_lowercase();
        let grams: Vec<String> = trigrams(&value).collect();
        if grams.is_empty() {
            return self.prefix_candidates(attribute, &value);
        }
        let Some(per_attr) = self.map.get(&attribute.to_lowercase()) else {
            return HashSet::new();
        };
        let mut iter = grams.iter();
        let mut acc = match iter.next().and_then(|g| per_attr.get(g)) {
            Some(set) => set.clone(),
            None => return HashSet::new(),
        };
        for g in iter {
            match per_attr.get(g) {
                Some(set) => acc.retain(|id| set.contains(id)),
                None => return HashSet::new(),
            }
            if acc.is_empty() {
                break;
            }
        }
        acc
    }

    /// Number of indexed attributes.
    pub fn attribute_count(&self) -> usize {
        self.map.len()
    }

    /// Total number of trigram postings (useful for size accounting in benches).
    pub fn posting_count(&self) -> usize {
        self.map
            .values()
            .flat_map(|m| m.values())
            .map(|s| s.len())
            .sum()
    }
}

fn key_prefix(value: &str) -> String {
    value.chars().take(SUBSTRING_KEY_LEN).collect()
}

/// Iterator over the 3-character windows of a value (whitespace included, matching how a
/// prefix index treats the raw column bytes).
fn trigrams(value: &str) -> impl Iterator<Item = String> + '_ {
    let chars: Vec<char> = value.chars().collect();
    let n = chars.len();
    (0..n.saturating_sub(SUBSTRING_KEY_LEN - 1)).map(move |i| {
        chars[i..(i + SUBSTRING_KEY_LEN).min(n)]
            .iter()
            .collect::<String>()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn id(n: u32) -> RecordId {
        RecordId(n)
    }

    #[test]
    fn prefix_lookup_matches_first_three_chars() {
        let mut idx = SubstringIndex::new();
        idx.insert("model", "accord", id(1));
        idx.insert("model", "accent", id(2));
        idx.insert("model", "civic", id(3));
        let c = idx.prefix_candidates("model", "accord");
        assert!(c.contains(&id(1)) && c.contains(&id(2)) && !c.contains(&id(3)));
    }

    #[test]
    fn substring_lookup_requires_all_trigrams() {
        let mut idx = SubstringIndex::new();
        idx.insert("model", "accord", id(1));
        idx.insert("model", "corolla", id(2));
        // "cor" appears in both accord and corolla.
        let c = idx.substring_candidates("model", "cor");
        assert!(c.contains(&id(1)) && c.contains(&id(2)));
        // "coro" only in corolla.
        let c = idx.substring_candidates("model", "coro");
        assert!(!c.contains(&id(1)) && c.contains(&id(2)));
        // unrelated probe
        assert!(idx.substring_candidates("model", "mustang").is_empty());
    }

    #[test]
    fn short_probe_falls_back_to_prefix() {
        let mut idx = SubstringIndex::new();
        idx.insert("color", "red", id(4));
        // Probe shorter than 3 characters: falls back to prefix map, which stores the
        // full first-3 key, so a 2-character probe matches nothing (same as MySQL).
        assert!(idx.substring_candidates("color", "re").is_empty());
        assert!(idx.substring_candidates("color", "red").contains(&id(4)));
    }

    #[test]
    fn missing_attribute_returns_empty() {
        let idx = SubstringIndex::new();
        assert!(idx.prefix_candidates("model", "accord").is_empty());
        assert!(idx.substring_candidates("model", "accord").is_empty());
    }

    #[test]
    fn counts_reflect_inserts() {
        let mut idx = SubstringIndex::new();
        idx.insert("model", "accord", id(1));
        idx.insert("color", "blue", id(1));
        assert_eq!(idx.attribute_count(), 2);
        assert!(idx.posting_count() >= 4);
    }

    proptest! {
        /// Every value is findable via its own substring lookup (no false negatives).
        #[test]
        fn indexed_value_is_always_a_candidate(value in "[a-z]{3,12}", n in 0u32..100) {
            let mut idx = SubstringIndex::new();
            idx.insert("attr", &value, id(n));
            prop_assert!(idx.substring_candidates("attr", &value).contains(&id(n)));
            prop_assert!(idx.prefix_candidates("attr", &value).contains(&id(n)));
        }

        /// Substring candidates are a superset of exact matches for any probe that is a
        /// substring of the stored value.
        #[test]
        fn substring_probe_finds_container(value in "[a-z]{5,12}", start in 0usize..3, len in 3usize..5) {
            let mut idx = SubstringIndex::new();
            idx.insert("attr", &value, id(1));
            let end = (start + len).min(value.len());
            if end > start && end - start >= 3 {
                let probe = &value[start..end];
                prop_assert!(idx.substring_candidates("attr", probe).contains(&id(1)));
            }
        }
    }
}
