//! Attribute values stored in advertisement records.
//!
//! The paper distinguishes categorical (alpha-numerical string) values used by Type I
//! and Type II attributes from quantitative values used by Type III attributes. A
//! [`Value`] covers both; all text is normalized to lowercase at construction time so
//! that keyword matching in the CQAds pipeline is case-insensitive, mirroring the way
//! the paper treats user questions ("BMW" and "bmw" identify the same make).

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A single attribute value inside an advertisement record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// Categorical value (Type I / Type II attributes): stored lowercase.
    Text(String),
    /// Quantitative value (Type III attributes).
    Number(f64),
}

impl Value {
    /// Create a categorical value. The text is trimmed and lowercased.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Text(normalize_text(s.as_ref()))
    }

    /// Create a quantitative value.
    pub fn number(n: f64) -> Self {
        Value::Number(n)
    }

    /// Return the categorical payload, if this is a text value.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            Value::Number(_) => None,
        }
    }

    /// Return the numeric payload, if this is a number value.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            Value::Text(_) => None,
        }
    }

    /// True if this is a categorical (text) value.
    pub fn is_text(&self) -> bool {
        matches!(self, Value::Text(_))
    }

    /// True if this is a quantitative (numeric) value.
    pub fn is_number(&self) -> bool {
        matches!(self, Value::Number(_))
    }

    /// Compare two values for ordering purposes. Numbers order numerically, text orders
    /// lexicographically; a number always sorts before text (this situation never
    /// arises for well-typed columns, but keeps the ordering total).
    pub fn partial_cmp_value(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Number(a), Value::Number(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Value::Text(a), Value::Text(b)) => a.cmp(b),
            (Value::Number(_), Value::Text(_)) => Ordering::Less,
            (Value::Text(_), Value::Number(_)) => Ordering::Greater,
        }
    }

    /// Human-readable type name used in error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Text(_) => "text",
            Value::Number(_) => "number",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Text(s) => write!(f, "{s}"),
            Value::Number(n) => {
                if (n.fract()).abs() < f64::EPSILON {
                    write!(f, "{}", *n as i64)
                } else {
                    write!(f, "{n}")
                }
            }
        }
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::text(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::text(s)
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(n)
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(n as f64)
    }
}

/// Normalize categorical text: trim, lowercase and collapse internal whitespace runs to
/// a single space. CQAds performs the same normalization on question keywords before
/// matching them against the database.
pub fn normalize_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut last_space = true;
    for ch in s.trim().chars() {
        if ch.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            for lc in ch.to_lowercase() {
                out.push(lc);
            }
            last_space = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn text_is_normalized() {
        assert_eq!(
            Value::text("  Honda   Accord "),
            Value::Text("honda accord".into())
        );
        assert_eq!(Value::text("BMW"), Value::text("bmw"));
    }

    #[test]
    fn accessors_return_expected_variants() {
        let t = Value::text("blue");
        let n = Value::number(15_000.0);
        assert_eq!(t.as_text(), Some("blue"));
        assert_eq!(t.as_number(), None);
        assert_eq!(n.as_number(), Some(15_000.0));
        assert_eq!(n.as_text(), None);
        assert!(t.is_text() && !t.is_number());
        assert!(n.is_number() && !n.is_text());
    }

    #[test]
    fn display_formats_integers_without_fraction() {
        assert_eq!(Value::number(5000.0).to_string(), "5000");
        assert_eq!(Value::number(0.75).to_string(), "0.75");
        assert_eq!(Value::text("Red").to_string(), "red");
    }

    #[test]
    fn ordering_is_numeric_for_numbers() {
        assert_eq!(
            Value::number(2.0).partial_cmp_value(&Value::number(10.0)),
            Ordering::Less
        );
        assert_eq!(
            Value::text("accord").partial_cmp_value(&Value::text("camry")),
            Ordering::Less
        );
    }

    #[test]
    fn conversions_from_primitives() {
        assert_eq!(Value::from("Blue"), Value::text("blue"));
        assert_eq!(Value::from(2004_i64), Value::number(2004.0));
        assert_eq!(Value::from(3.5_f64), Value::number(3.5));
    }

    proptest! {
        #[test]
        fn normalize_is_idempotent(s in "[ a-zA-Z0-9]{0,40}") {
            let once = normalize_text(&s);
            let twice = normalize_text(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn normalize_never_has_double_spaces(s in ".{0,60}") {
            let n = normalize_text(&s);
            prop_assert!(!n.contains("  "));
            prop_assert!(!n.starts_with(' '));
            prop_assert!(!n.ends_with(' '));
        }

        #[test]
        fn number_ordering_matches_f64(a in -1.0e6f64..1.0e6, b in -1.0e6f64..1.0e6) {
            let ord = Value::number(a).partial_cmp_value(&Value::number(b));
            prop_assert_eq!(ord, a.partial_cmp(&b).unwrap());
        }
    }
}
