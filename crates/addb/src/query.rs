//! SQL-style query AST.
//!
//! CQAds translates a tagged natural-language question into a SQL statement whose WHERE
//! clause is a boolean combination of per-attribute selection conditions (Example 7 in
//! the paper), optionally followed by a superlative (`group by price` → cheapest). This
//! module models that statement:
//!
//! * [`Condition`] — one selection criterion on a single attribute: equality for Type I
//!   and Type II values, comparison / BETWEEN for Type III values, with optional
//!   negation (the NOT of the Boolean model).
//! * [`BoolExpr`] — AND/OR/NOT tree combining conditions, produced by the implicit
//!   Boolean rules of Section 4.4.1.
//! * [`Superlative`] — min/max request evaluated *after* every other condition
//!   (Section 4.3).
//! * [`Query`] — the full statement: target table, boolean expression, superlatives and
//!   an answer limit (30 by default).

use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Comparison operator for a single selection condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Comparison {
    /// Equality on a categorical or numeric value.
    Eq(Value),
    /// Strictly less than a numeric bound.
    Lt(f64),
    /// Less than or equal to a numeric bound.
    Le(f64),
    /// Strictly greater than a numeric bound.
    Gt(f64),
    /// Greater than or equal to a numeric bound.
    Ge(f64),
    /// Between two numeric bounds (inclusive), produced by Rule 1c of the Boolean model.
    Between(f64, f64),
    /// Substring containment on a categorical value (shorthand-notation matching).
    Contains(String),
}

impl Comparison {
    /// True if this comparison constrains a numeric (Type III) value.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            Comparison::Lt(_)
                | Comparison::Le(_)
                | Comparison::Gt(_)
                | Comparison::Ge(_)
                | Comparison::Between(_, _)
        ) || matches!(self, Comparison::Eq(Value::Number(_)))
    }

    /// Evaluate the comparison against a stored value.
    pub fn matches(&self, stored: &Value) -> bool {
        match (self, stored) {
            (Comparison::Eq(Value::Text(want)), Value::Text(have)) => want == have,
            (Comparison::Eq(Value::Number(want)), Value::Number(have)) => {
                (want - have).abs() < 1e-9
            }
            (Comparison::Lt(b), Value::Number(v)) => v < b,
            (Comparison::Le(b), Value::Number(v)) => v <= b,
            (Comparison::Gt(b), Value::Number(v)) => v > b,
            (Comparison::Ge(b), Value::Number(v)) => v >= b,
            (Comparison::Between(lo, hi), Value::Number(v)) => v >= lo && v <= hi,
            (Comparison::Contains(needle), Value::Text(have)) => have.contains(needle.as_str()),
            _ => false,
        }
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Comparison::Eq(v) => write!(f, "= '{v}'"),
            Comparison::Lt(b) => write!(f, "< {b}"),
            Comparison::Le(b) => write!(f, "<= {b}"),
            Comparison::Gt(b) => write!(f, "> {b}"),
            Comparison::Ge(b) => write!(f, ">= {b}"),
            Comparison::Between(lo, hi) => write!(f, "BETWEEN {lo} AND {hi}"),
            Comparison::Contains(s) => write!(f, "LIKE '%{s}%'"),
        }
    }
}

/// One selection condition on a single attribute.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Condition {
    /// Attribute (column) the condition constrains.
    pub attribute: String,
    /// Comparison applied to the attribute value.
    pub comparison: Comparison,
    /// True if the condition is negated (NOT), e.g. "not a blue one".
    pub negated: bool,
}

impl Condition {
    /// Equality condition on a categorical value.
    pub fn eq(attribute: impl Into<String>, value: impl AsRef<str>) -> Self {
        Condition {
            attribute: attribute.into().to_lowercase(),
            comparison: Comparison::Eq(Value::text(value.as_ref())),
            negated: false,
        }
    }

    /// Equality condition on a numeric value.
    pub fn eq_number(attribute: impl Into<String>, value: f64) -> Self {
        Condition {
            attribute: attribute.into().to_lowercase(),
            comparison: Comparison::Eq(Value::number(value)),
            negated: false,
        }
    }

    /// Build a condition with an arbitrary comparison.
    pub fn new(attribute: impl Into<String>, comparison: Comparison) -> Self {
        Condition {
            attribute: attribute.into().to_lowercase(),
            comparison,
            negated: false,
        }
    }

    /// Negate this condition (Boolean NOT).
    pub fn negated(mut self) -> Self {
        self.negated = !self.negated;
        self
    }

    /// Evaluate the condition against a stored value. A missing value never matches a
    /// positive condition and always matches a negated one (the ad does not carry the
    /// excluded property).
    pub fn matches_value(&self, stored: Option<&Value>) -> bool {
        let base = match stored {
            Some(v) => self.comparison.matches(v),
            None => false,
        };
        if self.negated {
            !base
        } else {
            base
        }
    }
}

impl fmt::Display for Condition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.negated {
            write!(f, "NOT ({} {})", self.attribute, self.comparison)
        } else {
            write!(f, "{} {}", self.attribute, self.comparison)
        }
    }
}

/// Boolean combination of selection conditions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoolExpr {
    /// A single condition leaf.
    Cond(Condition),
    /// Conjunction of sub-expressions.
    And(Vec<BoolExpr>),
    /// Disjunction of sub-expressions.
    Or(Vec<BoolExpr>),
    /// Negation of a sub-expression.
    Not(Box<BoolExpr>),
    /// The always-true expression (a question with only superlatives, e.g. "cheapest").
    True,
}

impl BoolExpr {
    /// Conjunction helper that flattens nested ANDs and drops `True` operands.
    pub fn and(exprs: Vec<BoolExpr>) -> BoolExpr {
        let mut flat = Vec::new();
        for e in exprs {
            match e {
                BoolExpr::And(inner) => flat.extend(inner),
                BoolExpr::True => {}
                other => flat.push(other),
            }
        }
        match flat.pop() {
            None => BoolExpr::True,
            Some(only) if flat.is_empty() => only,
            Some(last) => {
                flat.push(last);
                BoolExpr::And(flat)
            }
        }
    }

    /// Disjunction helper that flattens nested ORs.
    pub fn or(exprs: Vec<BoolExpr>) -> BoolExpr {
        let mut flat = Vec::new();
        for e in exprs {
            match e {
                BoolExpr::Or(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.pop() {
            None => BoolExpr::True,
            Some(only) if flat.is_empty() => only,
            Some(last) => {
                flat.push(last);
                BoolExpr::Or(flat)
            }
        }
    }

    /// All condition leaves in the expression, in left-to-right order.
    pub fn conditions(&self) -> Vec<&Condition> {
        let mut out = Vec::new();
        self.collect_conditions(&mut out);
        out
    }

    fn collect_conditions<'a>(&'a self, out: &mut Vec<&'a Condition>) {
        match self {
            BoolExpr::Cond(c) => out.push(c),
            BoolExpr::And(v) | BoolExpr::Or(v) => {
                for e in v {
                    e.collect_conditions(out);
                }
            }
            BoolExpr::Not(e) => e.collect_conditions(out),
            BoolExpr::True => {}
        }
    }

    /// Number of condition leaves (the `N` of the paper's N−1 strategy).
    pub fn condition_count(&self) -> usize {
        self.conditions().len()
    }
}

impl fmt::Display for BoolExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoolExpr::Cond(c) => write!(f, "{c}"),
            BoolExpr::And(v) => {
                let parts: Vec<String> = v.iter().map(|e| format!("({e})")).collect();
                write!(f, "{}", parts.join(" AND "))
            }
            BoolExpr::Or(v) => {
                let parts: Vec<String> = v.iter().map(|e| format!("({e})")).collect();
                write!(f, "{}", parts.join(" OR "))
            }
            BoolExpr::Not(e) => write!(f, "NOT ({e})"),
            BoolExpr::True => write!(f, "TRUE"),
        }
    }
}

/// Direction of a superlative request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SuperlativeKind {
    /// Minimum value wins ("cheapest", "oldest").
    Min,
    /// Maximum value wins ("newest", "most expensive").
    Max,
}

/// A superlative evaluated after every other condition, as mandated by Section 4.3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Superlative {
    /// Numeric attribute the superlative ranges over ("price", "year").
    pub attribute: String,
    /// Whether the minimum or the maximum value is requested.
    pub kind: SuperlativeKind,
}

impl Superlative {
    /// Minimum-value superlative.
    pub fn min(attribute: impl Into<String>) -> Self {
        Superlative {
            attribute: attribute.into().to_lowercase(),
            kind: SuperlativeKind::Min,
        }
    }

    /// Maximum-value superlative.
    pub fn max(attribute: impl Into<String>) -> Self {
        Superlative {
            attribute: attribute.into().to_lowercase(),
            kind: SuperlativeKind::Max,
        }
    }
}

impl fmt::Display for Superlative {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            SuperlativeKind::Min => write!(f, "group by {} ASC", self.attribute),
            SuperlativeKind::Max => write!(f, "group by {} DESC", self.attribute),
        }
    }
}

/// A complete query statement against one ads table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Target table (ads domain) name.
    pub table: String,
    /// WHERE clause.
    pub expr: BoolExpr,
    /// Superlatives evaluated after the WHERE clause.
    pub superlatives: Vec<Superlative>,
    /// Maximum number of answers to return.
    pub limit: usize,
}

impl Query {
    /// New query against `table` with no conditions and the paper's 30-answer limit.
    pub fn new(table: impl Into<String>) -> Self {
        Query {
            table: table.into(),
            expr: BoolExpr::True,
            superlatives: Vec::new(),
            limit: crate::DEFAULT_ANSWER_LIMIT,
        }
    }

    /// AND a condition into the WHERE clause.
    pub fn with_condition(mut self, condition: Condition) -> Self {
        self.expr = BoolExpr::and(vec![self.expr, BoolExpr::Cond(condition)]);
        self
    }

    /// Replace the WHERE clause with an arbitrary boolean expression.
    pub fn with_expr(mut self, expr: BoolExpr) -> Self {
        self.expr = expr;
        self
    }

    /// Append a superlative.
    pub fn with_superlative(mut self, superlative: Superlative) -> Self {
        self.superlatives.push(superlative);
        self
    }

    /// Override the answer limit.
    pub fn with_limit(mut self, limit: usize) -> Self {
        self.limit = limit;
        self
    }

    /// Number of selection conditions, counting each superlative as one condition (the
    /// paper's N when computing Rank_Sim includes every selection criterion).
    pub fn condition_count(&self) -> usize {
        self.expr.condition_count() + self.superlatives.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comparison_matches_numeric_and_text() {
        assert!(Comparison::Eq(Value::text("blue")).matches(&Value::text("Blue")));
        assert!(Comparison::Lt(5000.0).matches(&Value::number(4999.0)));
        assert!(!Comparison::Lt(5000.0).matches(&Value::number(5000.0)));
        assert!(Comparison::Le(5000.0).matches(&Value::number(5000.0)));
        assert!(Comparison::Gt(2000.0).matches(&Value::number(2001.0)));
        assert!(Comparison::Ge(2000.0).matches(&Value::number(2000.0)));
        assert!(Comparison::Between(2000.0, 7000.0).matches(&Value::number(7000.0)));
        assert!(!Comparison::Between(2000.0, 7000.0).matches(&Value::number(7001.0)));
        assert!(Comparison::Contains("dr".into()).matches(&Value::text("2dr")));
        // type mismatches never match
        assert!(!Comparison::Lt(5.0).matches(&Value::text("five")));
        assert!(!Comparison::Eq(Value::text("blue")).matches(&Value::number(1.0)));
    }

    #[test]
    fn negated_condition_inverts_and_missing_values_behave() {
        let c = Condition::eq("color", "blue");
        assert!(c.matches_value(Some(&Value::text("blue"))));
        assert!(!c.matches_value(Some(&Value::text("red"))));
        assert!(!c.matches_value(None));
        let n = c.negated();
        assert!(!n.matches_value(Some(&Value::text("blue"))));
        assert!(n.matches_value(Some(&Value::text("red"))));
        assert!(n.matches_value(None));
        // double negation restores the original
        let nn = n.negated();
        assert!(!nn.negated);
    }

    #[test]
    fn and_or_flatten_and_simplify() {
        let a = BoolExpr::Cond(Condition::eq("make", "honda"));
        let b = BoolExpr::Cond(Condition::eq("color", "blue"));
        let c = BoolExpr::Cond(Condition::eq("model", "accord"));
        let nested = BoolExpr::and(vec![a.clone(), BoolExpr::and(vec![b.clone(), c.clone()])]);
        assert!(matches!(&nested, BoolExpr::And(v) if v.len() == 3));
        let with_true = BoolExpr::and(vec![BoolExpr::True, a.clone()]);
        assert_eq!(with_true, a);
        assert_eq!(BoolExpr::and(vec![]), BoolExpr::True);
        let or = BoolExpr::or(vec![BoolExpr::or(vec![a.clone(), b.clone()]), c.clone()]);
        assert!(matches!(&or, BoolExpr::Or(v) if v.len() == 3));
        assert_eq!(BoolExpr::or(vec![b.clone()]), b);
    }

    #[test]
    fn conditions_are_collected_in_order() {
        let expr = BoolExpr::or(vec![
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "honda")),
                BoolExpr::Cond(Condition::eq("color", "blue")),
            ]),
            BoolExpr::Not(Box::new(BoolExpr::Cond(Condition::eq(
                "transmission",
                "manual",
            )))),
        ]);
        let attrs: Vec<_> = expr
            .conditions()
            .iter()
            .map(|c| c.attribute.clone())
            .collect();
        assert_eq!(attrs, vec!["make", "color", "transmission"]);
        assert_eq!(expr.condition_count(), 3);
    }

    #[test]
    fn query_builder_accumulates_parts() {
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_condition(Condition::new("price", Comparison::Lt(15_000.0)))
            .with_superlative(Superlative::min("price"))
            .with_limit(10);
        assert_eq!(q.table, "cars");
        assert_eq!(q.limit, 10);
        assert_eq!(q.condition_count(), 3);
        assert_eq!(q.superlatives[0], Superlative::min("price"));
    }

    #[test]
    fn display_renders_sql_like_fragments() {
        let c = Condition::new("price", Comparison::Between(2000.0, 7000.0));
        assert_eq!(c.to_string(), "price BETWEEN 2000 AND 7000");
        let n = Condition::eq("color", "blue").negated();
        assert_eq!(n.to_string(), "NOT (color = 'blue')");
        assert_eq!(Superlative::max("year").to_string(), "group by year DESC");
        let expr = BoolExpr::or(vec![
            BoolExpr::Cond(Condition::eq("model", "focus")),
            BoolExpr::Cond(Condition::eq("model", "corolla")),
        ]);
        assert_eq!(expr.to_string(), "(model = 'focus') OR (model = 'corolla')");
        assert_eq!(BoolExpr::True.to_string(), "TRUE");
    }
}
