//! Error type shared by every layer of the ads database.

use std::fmt;

/// Result alias used across the crate.
pub type DbResult<T> = Result<T, DbError>;

/// Errors produced while defining schemas, inserting records or executing queries.
#[derive(Debug, Clone, PartialEq)]
pub enum DbError {
    /// The schema references an attribute twice or is otherwise malformed.
    InvalidSchema(String),
    /// An attribute named in a record or query does not exist in the schema.
    UnknownAttribute {
        /// The table whose schema was consulted.
        table: String,
        /// The attribute that could not be resolved.
        attribute: String,
    },
    /// A record is missing one of the required Type I attribute values.
    MissingRequiredAttribute {
        /// The attribute that must be present.
        attribute: String,
    },
    /// A value's type does not match the attribute's declared type.
    TypeMismatch {
        /// The attribute being assigned.
        attribute: String,
        /// Human-readable description of the expected type.
        expected: &'static str,
        /// Human-readable description of the value that was supplied.
        found: String,
    },
    /// The query referenced a table that does not exist in the database.
    UnknownTable(String),
    /// A numeric range condition is empty (e.g. BETWEEN 9 AND 2) and the paper's rules
    /// require the evaluation to terminate with "search retrieved no results".
    EmptyRange {
        /// The attribute whose bounds do not overlap.
        attribute: String,
        /// Lower bound supplied by the user.
        low: f64,
        /// Upper bound supplied by the user.
        high: f64,
    },
    /// The query is structurally invalid (e.g. a superlative over a non-numeric column).
    InvalidQuery(String),
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::InvalidSchema(msg) => write!(f, "invalid schema: {msg}"),
            DbError::UnknownAttribute { table, attribute } => {
                write!(f, "unknown attribute `{attribute}` in table `{table}`")
            }
            DbError::MissingRequiredAttribute { attribute } => {
                write!(
                    f,
                    "record is missing required Type I attribute `{attribute}`"
                )
            }
            DbError::TypeMismatch {
                attribute,
                expected,
                found,
            } => write!(
                f,
                "type mismatch for attribute `{attribute}`: expected {expected}, found {found}"
            ),
            DbError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            DbError::EmptyRange {
                attribute,
                low,
                high,
            } => write!(
                f,
                "empty range on `{attribute}`: [{low}, {high}] — search retrieved no results"
            ),
            DbError::InvalidQuery(msg) => write!(f, "invalid query: {msg}"),
        }
    }
}

impl std::error::Error for DbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_human_readable() {
        let err = DbError::UnknownAttribute {
            table: "cars".into(),
            attribute: "wheels".into(),
        };
        assert_eq!(
            err.to_string(),
            "unknown attribute `wheels` in table `cars`"
        );
        let err = DbError::EmptyRange {
            attribute: "price".into(),
            low: 9000.0,
            high: 2000.0,
        };
        assert!(err.to_string().contains("no results"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            DbError::UnknownTable("x".into()),
            DbError::UnknownTable("x".into())
        );
        assert_ne!(
            DbError::UnknownTable("x".into()),
            DbError::UnknownTable("y".into())
        );
    }
}
