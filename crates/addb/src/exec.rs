//! Query executor implementing the paper's evaluation order.
//!
//! Section 4.3 requires that, for efficiency and correctness:
//!
//! 1. Type I conditions are evaluated first (primary index),
//! 2. Type II conditions next, on the records surviving step 1 (secondary index),
//! 3. Type III boundary conditions next, on the records surviving step 2,
//! 4. superlatives last, on the records surviving step 3.
//!
//! Superlatives-last is a *correctness* requirement ("cheapest Honda" must be the
//! cheapest among Hondas, not a Honda among the globally cheapest cars); the rest is a
//! performance ordering. [`ExecOptions::superlatives_first`] exists purely so that the
//! ablation bench can demonstrate the incorrect behaviour the paper warns about.

use crate::error::{DbError, DbResult};
use crate::query::{BoolExpr, Comparison, Condition, Query, SuperlativeKind};
use crate::record::{Record, RecordId};
use crate::schema::AttrType;
use crate::table::Table;
use std::collections::HashSet;

/// Tuning knobs for the executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Evaluate superlatives before the other conditions — the incorrect order discussed
    /// in Section 4.3, kept for the ablation study.
    pub superlatives_first: bool,
    /// Use the hash / sorted-column indexes (true) or fall back to full scans (false).
    /// The substring-index ablation bench flips this to quantify the speed-up.
    pub use_indexes: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            superlatives_first: false,
            use_indexes: true,
        }
    }
}

/// One answer produced by the executor: the record id and whether it matched every
/// condition (exact) — partial answers are produced by the CQAds N−1 layer, not here.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Identifier of the matching record.
    pub id: RecordId,
}

/// Executes [`Query`] statements against a single [`Table`].
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    table: &'a Table,
    options: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Executor with default options (paper-mandated evaluation order, indexes on).
    pub fn new(table: &'a Table) -> Self {
        Executor {
            table,
            options: ExecOptions::default(),
        }
    }

    /// Executor with explicit options.
    pub fn with_options(table: &'a Table, options: ExecOptions) -> Self {
        Executor { table, options }
    }

    /// Run the query, returning at most `query.limit` answers in deterministic
    /// (record-id) order, superlative answers first when superlatives are present.
    pub fn execute(&self, query: &Query) -> DbResult<Vec<QueryAnswer>> {
        if query.table != self.table.name() {
            return Err(DbError::UnknownTable(query.table.clone()));
        }
        self.validate(query)?;

        let mut candidates: HashSet<RecordId>;
        if self.options.superlatives_first && !query.superlatives.is_empty() {
            // Ablation: superlatives applied to the whole table, then filtered.
            candidates = self.table.all_ids();
            candidates = self.apply_superlatives(query, candidates)?;
            candidates = self
                .eval_expr(&query.expr, &candidates)?
                .into_iter()
                .collect();
        } else {
            candidates = self.eval_ordered(&query.expr)?;
            candidates = self.apply_superlatives(query, candidates)?;
        }

        let mut ids: Vec<RecordId> = candidates.into_iter().collect();
        ids.sort_unstable();
        ids.truncate(query.limit);
        Ok(ids.into_iter().map(|id| QueryAnswer { id }).collect())
    }

    /// Convenience: execute and materialize the matching records.
    pub fn execute_records(&self, query: &Query) -> DbResult<Vec<(RecordId, &'a Record)>> {
        Ok(self
            .execute(query)?
            .into_iter()
            .filter_map(|a| self.table.get(a.id).map(|r| (a.id, r)))
            .collect())
    }

    fn validate(&self, query: &Query) -> DbResult<()> {
        for cond in query.expr.conditions() {
            let attr = self.table.schema().require(&cond.attribute)?;
            if let Comparison::Between(lo, hi) = cond.comparison {
                if lo > hi {
                    return Err(DbError::EmptyRange {
                        attribute: cond.attribute.clone(),
                        low: lo,
                        high: hi,
                    });
                }
            }
            if cond.comparison.is_numeric() && attr.attr_type != AttrType::TypeIII {
                return Err(DbError::InvalidQuery(format!(
                    "numeric comparison on categorical attribute `{}`",
                    cond.attribute
                )));
            }
        }
        for s in &query.superlatives {
            let attr = self.table.schema().require(&s.attribute)?;
            if attr.attr_type != AttrType::TypeIII {
                return Err(DbError::InvalidQuery(format!(
                    "superlative over non-numeric attribute `{}`",
                    s.attribute
                )));
            }
        }
        Ok(())
    }

    /// Evaluate the WHERE expression. For a pure conjunction we can follow the paper's
    /// Type I → Type II → Type III ordering exactly; for arbitrary boolean expressions we
    /// recurse with set semantics (each AND branch still orders its own conditions).
    fn eval_ordered(&self, expr: &BoolExpr) -> DbResult<HashSet<RecordId>> {
        match expr {
            BoolExpr::True => Ok(self.table.all_ids()),
            BoolExpr::Cond(c) => Ok(self.eval_condition(c, None)),
            BoolExpr::Not(inner) => {
                let matched = self.eval_ordered(inner)?;
                Ok(self
                    .table
                    .all_ids()
                    .difference(&matched)
                    .copied()
                    .collect())
            }
            BoolExpr::Or(parts) => {
                let mut acc = HashSet::new();
                for p in parts {
                    acc.extend(self.eval_ordered(p)?);
                }
                Ok(acc)
            }
            BoolExpr::And(parts) => {
                // Partition leaf conditions by attribute type so they are applied in the
                // paper's order; non-leaf sub-expressions are applied last.
                let mut t1 = Vec::new();
                let mut t2 = Vec::new();
                let mut t3 = Vec::new();
                let mut complex = Vec::new();
                for p in parts {
                    match p {
                        BoolExpr::Cond(c) => {
                            match self.table.schema().require(&c.attribute)?.attr_type {
                                AttrType::TypeI => t1.push(c),
                                AttrType::TypeII => t2.push(c),
                                AttrType::TypeIII => t3.push(c),
                            }
                        }
                        other => complex.push(other),
                    }
                }
                let mut current: Option<HashSet<RecordId>> = None;
                for c in t1.into_iter().chain(t2).chain(t3) {
                    let next = self.eval_condition(c, current.as_ref());
                    current = Some(next);
                    if current.as_ref().map(|s| s.is_empty()).unwrap_or(false) {
                        return Ok(HashSet::new());
                    }
                }
                let mut acc = current.unwrap_or_else(|| self.table.all_ids());
                for sub in complex {
                    let rhs = self.eval_ordered(sub)?;
                    acc.retain(|id| rhs.contains(id));
                    if acc.is_empty() {
                        break;
                    }
                }
                Ok(acc)
            }
        }
    }

    /// Generic (unordered) expression evaluation over an explicit candidate set; used by
    /// the superlatives-first ablation path.
    fn eval_expr(
        &self,
        expr: &BoolExpr,
        candidates: &HashSet<RecordId>,
    ) -> DbResult<Vec<RecordId>> {
        let matched = self.eval_ordered(expr)?;
        Ok(candidates.iter().filter(|id| matched.contains(id)).copied().collect())
    }

    /// Evaluate one condition, optionally restricted to a candidate set produced by the
    /// previous evaluation step.
    fn eval_condition(
        &self,
        cond: &Condition,
        candidates: Option<&HashSet<RecordId>>,
    ) -> HashSet<RecordId> {
        let matched: HashSet<RecordId> = if self.options.use_indexes && !cond.negated {
            match &cond.comparison {
                Comparison::Eq(crate::value::Value::Text(v)) => {
                    self.table.lookup_eq(&cond.attribute, v).into_iter().collect()
                }
                Comparison::Eq(crate::value::Value::Number(n)) => self
                    .table
                    .lookup_range(&cond.attribute, *n, *n)
                    .into_iter()
                    .collect(),
                Comparison::Lt(b) => self
                    .table
                    .lookup_range(&cond.attribute, f64::NEG_INFINITY, prev_float(*b))
                    .into_iter()
                    .collect(),
                Comparison::Le(b) => self
                    .table
                    .lookup_range(&cond.attribute, f64::NEG_INFINITY, *b)
                    .into_iter()
                    .collect(),
                Comparison::Gt(b) => self
                    .table
                    .lookup_range(&cond.attribute, next_float(*b), f64::INFINITY)
                    .into_iter()
                    .collect(),
                Comparison::Ge(b) => self
                    .table
                    .lookup_range(&cond.attribute, *b, f64::INFINITY)
                    .into_iter()
                    .collect(),
                Comparison::Between(lo, hi) => self
                    .table
                    .lookup_range(&cond.attribute, *lo, *hi)
                    .into_iter()
                    .collect(),
                Comparison::Contains(needle) => {
                    // Substring index pre-filter, then verify.
                    let cands = self
                        .table
                        .substring_index()
                        .substring_candidates(&cond.attribute, needle);
                    cands
                        .into_iter()
                        .filter(|id| {
                            self.table
                                .get(*id)
                                .map(|r| cond.matches_value(r.get(&cond.attribute)))
                                .unwrap_or(false)
                        })
                        .collect()
                }
            }
        } else {
            // Full scan (negated conditions and the no-index ablation).
            self.table
                .iter()
                .filter(|(_, r)| cond.matches_value(r.get(&cond.attribute)))
                .map(|(id, _)| id)
                .collect()
        };
        match candidates {
            Some(c) => matched.intersection(c).copied().collect(),
            None => matched,
        }
    }

    fn apply_superlatives(
        &self,
        query: &Query,
        mut candidates: HashSet<RecordId>,
    ) -> DbResult<HashSet<RecordId>> {
        for s in &query.superlatives {
            if candidates.is_empty() {
                return Ok(candidates);
            }
            let max = matches!(s.kind, SuperlativeKind::Max);
            match self.table.extreme(&s.attribute, &candidates, max) {
                Some((_, ids)) => candidates = ids.into_iter().collect(),
                None => candidates.clear(),
            }
        }
        Ok(candidates)
    }
}

fn next_float(x: f64) -> f64 {
    // Smallest representable value strictly greater than x, adequate for ad prices/years.
    x + x.abs().max(1.0) * 1e-12
}

fn prev_float(x: f64) -> f64 {
    x - x.abs().max(1.0) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Superlative;
    use crate::record::Record;
    use crate::schema::Schema;

    fn sample_table() -> Table {
        let schema = Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type2("transmission")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .type3("year", 1985.0, 2011.0, None)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            ("honda", "accord", "blue", "automatic", 6600.0, 2004.0),
            ("honda", "accord", "gold", "manual", 16536.0, 2009.0),
            ("honda", "civic", "red", "automatic", 4500.0, 2001.0),
            ("toyota", "camry", "blue", "automatic", 8561.0, 2006.0),
            ("toyota", "corolla", "silver", "manual", 3900.0, 1999.0),
            ("ford", "focus", "blue", "manual", 6795.0, 2005.0),
        ];
        for (make, model, color, trans, price, year) in rows {
            t.insert(
                Record::builder()
                    .text("make", make)
                    .text("model", model)
                    .text("color", color)
                    .text("transmission", trans)
                    .number("price", price)
                    .number("year", year)
                    .build(),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn conjunction_follows_type_order_and_matches() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_condition(Condition::eq("color", "blue"))
            .with_condition(Condition::new("price", Comparison::Lt(15_000.0)));
        let answers = Executor::new(&t).execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(t.get(answers[0].id).unwrap().get_text("model"), Some("accord"));
    }

    #[test]
    fn cheapest_honda_is_evaluated_after_make() {
        let t = sample_table();
        // "cheapest honda": the cheapest car overall is the toyota corolla at 3900, so
        // evaluating the superlative first would lose all Hondas (Section 4.3).
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_superlative(Superlative::min("price"));
        let answers = Executor::new(&t).execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        let r = t.get(answers[0].id).unwrap();
        assert_eq!(r.get_text("make"), Some("honda"));
        assert_eq!(r.get_number("price"), Some(4500.0));
    }

    #[test]
    fn superlatives_first_ablation_reproduces_the_paper_failure_mode() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_superlative(Superlative::min("price"));
        let wrong = Executor::with_options(
            &t,
            ExecOptions {
                superlatives_first: true,
                use_indexes: true,
            },
        );
        // Cheapest car overall is a Toyota, so filtering by Honda afterwards yields nothing.
        assert!(wrong.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn or_and_not_expressions_evaluate_with_set_semantics() {
        let t = sample_table();
        // "Toyota Corolla or a silver not manual Honda Accord" simplified:
        let expr = BoolExpr::or(vec![
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "toyota")),
                BoolExpr::Cond(Condition::eq("model", "corolla")),
            ]),
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "honda")),
                BoolExpr::Cond(Condition::eq("model", "accord")),
                BoolExpr::Cond(Condition::eq("transmission", "manual").negated()),
            ]),
        ]);
        let q = Query::new("cars").with_expr(expr);
        let answers = Executor::new(&t).execute(&q).unwrap();
        let models: Vec<_> = answers
            .iter()
            .map(|a| t.get(a.id).unwrap().get_text("model").unwrap().to_string())
            .collect();
        assert!(models.contains(&"corolla".to_string()));
        assert!(models.contains(&"accord".to_string()));
        assert_eq!(answers.len(), 2); // only the automatic accord qualifies
    }

    #[test]
    fn between_and_contains_conditions() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::new("price", Comparison::Between(4000.0, 7000.0)));
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 3);
        let q = Query::new("cars")
            .with_condition(Condition::new("model", Comparison::Contains("cord".into())));
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 2);
    }

    #[test]
    fn empty_between_range_errors_like_rule_1c() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::new("price", Comparison::Between(9000.0, 2000.0)));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::EmptyRange { .. }
        ));
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let t = sample_table();
        let q = Query::new("cars").with_condition(Condition::eq("wheels", "4"));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::UnknownAttribute { .. }
        ));
        let q = Query::new("cars").with_condition(Condition::new("color", Comparison::Lt(3.0)));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::InvalidQuery(_)
        ));
        let q = Query::new("cars").with_superlative(Superlative::min("color"));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::InvalidQuery(_)
        ));
        let q = Query::new("boats");
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::UnknownTable(_)
        ));
    }

    #[test]
    fn limit_caps_answers_and_true_returns_everything() {
        let t = sample_table();
        let q = Query::new("cars").with_limit(3);
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 3);
        let q = Query::new("cars");
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 6);
    }

    #[test]
    fn index_and_scan_paths_agree() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("color", "blue"))
            .with_condition(Condition::new("price", Comparison::Lt(8000.0)));
        let with_idx = Executor::new(&t).execute(&q).unwrap();
        let no_idx = Executor::with_options(
            &t,
            ExecOptions {
                superlatives_first: false,
                use_indexes: false,
            },
        )
        .execute(&q)
        .unwrap();
        assert_eq!(with_idx, no_idx);
    }

    #[test]
    fn execute_records_materializes_rows() {
        let t = sample_table();
        let q = Query::new("cars").with_condition(Condition::eq("make", "ford"));
        let recs = Executor::new(&t).execute_records(&q).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1.get_text("model"), Some("focus"));
    }
}
