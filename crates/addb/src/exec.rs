//! Query executor implementing the paper's evaluation order.
//!
//! Section 4.3 requires that, for efficiency and correctness:
//!
//! 1. Type I conditions are evaluated first (primary index),
//! 2. Type II conditions next, on the records surviving step 1 (secondary index),
//! 3. Type III boundary conditions next, on the records surviving step 2,
//! 4. superlatives last, on the records surviving step 3.
//!
//! Superlatives-last is a *correctness* requirement ("cheapest Honda" must be the
//! cheapest among Hondas, not a Honda among the globally cheapest cars); the rest is a
//! performance ordering. [`ExecOptions::superlatives_first`] exists purely so that the
//! ablation bench can demonstrate the incorrect behaviour the paper warns about.
//!
//! # Execution model
//!
//! Conditions evaluate to **sorted id sequences**, not hash sets. Equality conditions
//! borrow their posting list straight from the table's index (zero copy — lists are
//! kept sorted by record id at insert time); range, substring and scan conditions
//! materialize a sorted vector once. Conjunctions combine those sequences with a
//! **lazy sorted-merge intersection** ([`IdStream`]), so an AND over `k` conditions
//! with posting lists of sizes `n_1 … n_k` costs `O(n_1 + … + n_k)` comparisons and
//! zero allocation beyond the non-equality operands — there is no intermediate
//! `HashSet` per condition as in the original pipeline. Disjunction and negation
//! materialize (sorted union / complement), which matches their output size anyway.
//!
//! Callers that need *all* matching ids without a limit (the N−1 partial matcher)
//! consume [`Executor::execute_stream`] and never materialize a result vector;
//! [`Executor::execute`] collects the same stream, applies superlatives last (over a
//! sorted candidate slice, membership by binary search) and truncates to the query
//! limit.

use crate::error::{DbError, DbResult};
use crate::query::{BoolExpr, Comparison, Condition, Query, SuperlativeKind};
use crate::record::{Record, RecordId};
use crate::schema::AttrType;
use crate::table::Table;
use std::cmp::Ordering;

/// A stream of strictly ascending record ids — the executor's streaming currency.
///
/// Equality conditions stream their posting list in place; composed streams merge
/// lazily, so a consumer that stops early (bounded top-k fill, early-exit checks)
/// never pays for the tail.
#[derive(Debug)]
pub enum IdStream<'a> {
    /// No matches.
    Empty,
    /// Every record id in `[0, n)` (a `TRUE` condition).
    All(std::ops::Range<u32>),
    /// Borrowed posting list, already sorted ascending.
    Slice(std::slice::Iter<'a, RecordId>),
    /// Materialized sorted ids (ranges, unions, complements, scans).
    Owned(std::vec::IntoIter<RecordId>),
    /// Lazy sorted-merge intersection of two streams.
    Intersect(Box<IdStream<'a>>, Box<IdStream<'a>>),
    /// Per-candidate predicate over an inner stream (Type III boundaries applied to
    /// the records surviving the index-driven layers, per the paper's order — no
    /// range-sized id vector is ever materialized).
    Filter(Box<IdStream<'a>>, RangePredicate<'a>),
}

/// Numeric range check against a record-id-indexed column.
#[derive(Debug)]
pub struct RangePredicate<'a> {
    column: Option<&'a crate::table::NumericColumn>,
    low: f64,
    high: f64,
}

impl RangePredicate<'_> {
    fn matches(&self, id: RecordId) -> bool {
        self.column
            .and_then(|c| c.value(id))
            .is_some_and(|v| v >= self.low && v <= self.high)
    }
}

impl Iterator for IdStream<'_> {
    type Item = RecordId;

    fn next(&mut self) -> Option<RecordId> {
        match self {
            IdStream::Empty => None,
            IdStream::All(range) => range.next().map(RecordId),
            IdStream::Slice(iter) => iter.next().copied(),
            IdStream::Owned(iter) => iter.next(),
            IdStream::Intersect(a, b) => {
                let mut x = a.next()?;
                let mut y = b.next()?;
                loop {
                    match x.cmp(&y) {
                        Ordering::Equal => return Some(x),
                        Ordering::Less => x = a.next()?,
                        Ordering::Greater => y = b.next()?,
                    }
                }
            }
            IdStream::Filter(inner, predicate) => {
                for id in inner.by_ref() {
                    if predicate.matches(id) {
                        return Some(id);
                    }
                }
                None
            }
        }
    }
}

impl<'a> IdStream<'a> {
    /// True when the stream can be proven empty without consuming it.
    fn is_trivially_empty(&self) -> bool {
        match self {
            IdStream::Empty => true,
            IdStream::All(r) => r.is_empty(),
            IdStream::Slice(iter) => iter.len() == 0,
            IdStream::Owned(iter) => iter.len() == 0,
            IdStream::Intersect(a, b) => a.is_trivially_empty() || b.is_trivially_empty(),
            IdStream::Filter(inner, _) => inner.is_trivially_empty(),
        }
    }

    /// Lazy intersection; collapses to [`IdStream::Empty`] when either side is
    /// trivially empty.
    fn intersect(self, other: IdStream<'a>) -> IdStream<'a> {
        if self.is_trivially_empty() || other.is_trivially_empty() {
            return IdStream::Empty;
        }
        match (self, other) {
            // `TRUE` is the identity of conjunction.
            (IdStream::All(r), s) if r.start == 0 => s,
            (s, IdStream::All(r)) if r.start == 0 => s,
            (a, b) => IdStream::Intersect(Box::new(a), Box::new(b)),
        }
    }
}

/// Tuning knobs for the executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Evaluate superlatives before the other conditions — the incorrect order discussed
    /// in Section 4.3, kept for the ablation study.
    pub superlatives_first: bool,
    /// Use the hash / sorted-column indexes (true) or fall back to full scans (false).
    /// The substring-index ablation bench flips this to quantify the speed-up.
    pub use_indexes: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            superlatives_first: false,
            use_indexes: true,
        }
    }
}

/// One answer produced by the executor: the record id and whether it matched every
/// condition (exact) — partial answers are produced by the CQAds N−1 layer, not here.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Identifier of the matching record.
    pub id: RecordId,
}

/// Executes [`Query`] statements against a single [`Table`].
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    table: &'a Table,
    options: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Executor with default options (paper-mandated evaluation order, indexes on).
    pub fn new(table: &'a Table) -> Self {
        Executor {
            table,
            options: ExecOptions::default(),
        }
    }

    /// Executor with explicit options.
    pub fn with_options(table: &'a Table, options: ExecOptions) -> Self {
        Executor { table, options }
    }

    /// Run the query, returning at most `query.limit` answers in deterministic
    /// (record-id) order, superlative answers first when superlatives are present.
    pub fn execute(&self, query: &Query) -> DbResult<Vec<QueryAnswer>> {
        if query.table != self.table.name() {
            return Err(DbError::UnknownTable(query.table.clone()));
        }
        self.validate(query)?;

        let mut ids: Vec<RecordId>;
        if self.options.superlatives_first && !query.superlatives.is_empty() {
            // Ablation: superlatives applied to the whole table, then filtered.
            let all: Vec<RecordId> = (0..self.table.len() as u32).map(RecordId).collect();
            let extremes = self.apply_superlatives_sorted(query, all)?;
            let matched: Vec<RecordId> = self.stream_ordered(&query.expr)?.collect();
            ids = intersect_sorted(&extremes, &matched);
        } else {
            ids = self.stream_ordered(&query.expr)?.collect();
            ids = self.apply_superlatives_sorted(query, ids)?;
        }

        ids.truncate(query.limit);
        Ok(ids.into_iter().map(|id| QueryAnswer { id }).collect())
    }

    /// Streaming execution: ascending record ids matching the WHERE expression and
    /// superlatives. `query.limit` is **not** applied — streaming consumers (the N−1
    /// partial matcher) decide themselves when to stop pulling.
    pub fn execute_stream(&self, query: &Query) -> DbResult<IdStream<'a>> {
        if query.table != self.table.name() {
            return Err(DbError::UnknownTable(query.table.clone()));
        }
        self.validate(query)?;
        if query.superlatives.is_empty() {
            self.stream_ordered(&query.expr)
        } else {
            // Superlatives need the full candidate set; materialize, filter, re-stream.
            let ids: Vec<RecordId> = self.stream_ordered(&query.expr)?.collect();
            let ids = self.apply_superlatives_sorted(query, ids)?;
            Ok(IdStream::Owned(ids.into_iter()))
        }
    }

    /// Convenience: execute and materialize the matching records.
    pub fn execute_records(&self, query: &Query) -> DbResult<Vec<(RecordId, &'a Record)>> {
        Ok(self
            .execute(query)?
            .into_iter()
            .filter_map(|a| self.table.get(a.id).map(|r| (a.id, r)))
            .collect())
    }

    fn validate(&self, query: &Query) -> DbResult<()> {
        for cond in query.expr.conditions() {
            let attr = self.table.schema().require(&cond.attribute)?;
            if let Comparison::Between(lo, hi) = cond.comparison {
                if lo > hi {
                    return Err(DbError::EmptyRange {
                        attribute: cond.attribute.clone(),
                        low: lo,
                        high: hi,
                    });
                }
            }
            if cond.comparison.is_numeric() && attr.attr_type != AttrType::TypeIII {
                return Err(DbError::InvalidQuery(format!(
                    "numeric comparison on categorical attribute `{}`",
                    cond.attribute
                )));
            }
        }
        for s in &query.superlatives {
            let attr = self.table.schema().require(&s.attribute)?;
            if attr.attr_type != AttrType::TypeIII {
                return Err(DbError::InvalidQuery(format!(
                    "superlative over non-numeric attribute `{}`",
                    s.attribute
                )));
            }
        }
        Ok(())
    }

    /// Evaluate the WHERE expression into a sorted id stream. For a pure conjunction we
    /// follow the paper's Type I → Type II → Type III ordering exactly (equality
    /// posting lists merge lazily, most selective layer first); for arbitrary boolean
    /// expressions we recurse, materializing at OR/NOT boundaries where the output is a
    /// genuinely new set.
    fn stream_ordered(&self, expr: &BoolExpr) -> DbResult<IdStream<'a>> {
        match expr {
            BoolExpr::True => Ok(IdStream::All(0..self.table.len() as u32)),
            BoolExpr::Cond(c) => Ok(self.stream_condition(c)),
            BoolExpr::Not(inner) => {
                let matched: Vec<RecordId> = self.stream_ordered(inner)?.collect();
                let complement: Vec<RecordId> = (0..self.table.len() as u32)
                    .map(RecordId)
                    .filter(|id| matched.binary_search(id).is_err())
                    .collect();
                Ok(IdStream::Owned(complement.into_iter()))
            }
            BoolExpr::Or(parts) => {
                // Sorted union: k-way merge by collect + sort + dedup (output-sized).
                let mut acc: Vec<RecordId> = Vec::new();
                for p in parts {
                    acc.extend(self.stream_ordered(p)?);
                }
                acc.sort_unstable();
                acc.dedup();
                Ok(IdStream::Owned(acc.into_iter()))
            }
            BoolExpr::And(parts) => {
                // Partition leaf conditions by attribute type so they are applied in the
                // paper's order; non-leaf sub-expressions are applied last.
                let mut t1 = Vec::new();
                let mut t2 = Vec::new();
                let mut t3 = Vec::new();
                let mut complex = Vec::new();
                for p in parts {
                    match p {
                        BoolExpr::Cond(c) => {
                            match self.table.schema().require(&c.attribute)?.attr_type {
                                AttrType::TypeI => t1.push(c),
                                AttrType::TypeII => t2.push(c),
                                AttrType::TypeIII => t3.push(c),
                            }
                        }
                        other => complex.push(other),
                    }
                }
                let mut stream: Option<IdStream<'a>> = None;
                for c in t1.into_iter().chain(t2) {
                    let next = self.stream_condition(c);
                    stream = Some(match stream {
                        Some(acc) => acc.intersect(next),
                        None => next,
                    });
                    if stream.as_ref().is_some_and(IdStream::is_trivially_empty) {
                        return Ok(IdStream::Empty);
                    }
                }
                for c in t3 {
                    // Type III boundaries run on the records surviving the index-driven
                    // layers (the paper's step 3): when an equality stream exists, the
                    // boundary becomes a per-candidate column check instead of a
                    // materialized (and sorted) range-sized id vector.
                    let next = match (&stream, self.range_predicate(c)) {
                        (Some(_), Some(predicate)) => {
                            let inner = stream.take().expect("checked above");
                            IdStream::Filter(Box::new(inner), predicate)
                        }
                        _ => {
                            let next = self.stream_condition(c);
                            match stream.take() {
                                Some(acc) => acc.intersect(next),
                                None => next,
                            }
                        }
                    };
                    stream = Some(next);
                    if stream.as_ref().is_some_and(IdStream::is_trivially_empty) {
                        return Ok(IdStream::Empty);
                    }
                }
                let mut acc = stream.unwrap_or_else(|| IdStream::All(0..self.table.len() as u32));
                for sub in complex {
                    acc = acc.intersect(self.stream_ordered(sub)?);
                }
                Ok(acc)
            }
        }
    }

    /// Inclusive numeric bounds of an indexable boundary comparison, `None` when the
    /// condition is not a plain numeric range (negated, no-index mode, text equality,
    /// substring).
    fn range_predicate(&self, cond: &Condition) -> Option<RangePredicate<'a>> {
        if !self.options.use_indexes || cond.negated {
            return None;
        }
        let (low, high) = match &cond.comparison {
            Comparison::Eq(crate::value::Value::Number(n)) => (*n, *n),
            Comparison::Lt(b) => (f64::NEG_INFINITY, prev_float(*b)),
            Comparison::Le(b) => (f64::NEG_INFINITY, *b),
            Comparison::Gt(b) => (next_float(*b), f64::INFINITY),
            Comparison::Ge(b) => (*b, f64::INFINITY),
            Comparison::Between(lo, hi) => (*lo, *hi),
            _ => return None,
        };
        Some(RangePredicate {
            column: self.table.numeric_column(&cond.attribute),
            low,
            high,
        })
    }

    /// Evaluate one condition into a sorted id stream. Equality conditions borrow their
    /// posting list; everything else materializes one sorted vector.
    fn stream_condition(&self, cond: &Condition) -> IdStream<'a> {
        if self.options.use_indexes && !cond.negated {
            let sorted_range = |low: f64, high: f64| {
                let mut ids = self.table.lookup_range(&cond.attribute, low, high);
                ids.sort_unstable();
                IdStream::Owned(ids.into_iter())
            };
            match &cond.comparison {
                Comparison::Eq(crate::value::Value::Text(v)) => self
                    .table
                    .posting_list(&cond.attribute, v)
                    .map(|list| IdStream::Slice(list.iter()))
                    .unwrap_or(IdStream::Empty),
                Comparison::Eq(crate::value::Value::Number(n)) => sorted_range(*n, *n),
                Comparison::Lt(b) => sorted_range(f64::NEG_INFINITY, prev_float(*b)),
                Comparison::Le(b) => sorted_range(f64::NEG_INFINITY, *b),
                Comparison::Gt(b) => sorted_range(next_float(*b), f64::INFINITY),
                Comparison::Ge(b) => sorted_range(*b, f64::INFINITY),
                Comparison::Between(lo, hi) => sorted_range(*lo, *hi),
                Comparison::Contains(needle) => {
                    // Substring index pre-filter, then verify.
                    let mut ids: Vec<RecordId> = self
                        .table
                        .substring_index()
                        .substring_candidates(&cond.attribute, needle)
                        .into_iter()
                        .filter(|id| {
                            self.table
                                .get(*id)
                                .map(|r| cond.matches_value(r.get(&cond.attribute)))
                                .unwrap_or(false)
                        })
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    IdStream::Owned(ids.into_iter())
                }
            }
        } else {
            // Full scan (negated conditions and the no-index ablation); table iteration
            // yields ids in ascending order already.
            let ids: Vec<RecordId> = self
                .table
                .iter()
                .filter(|(_, r)| cond.matches_value(r.get(&cond.attribute)))
                .map(|(id, _)| id)
                .collect();
            IdStream::Owned(ids.into_iter())
        }
    }

    /// Apply superlatives over an ascending candidate vector, returning the surviving
    /// ids ascending. Membership tests inside [`Table::extreme_sorted`] are binary
    /// searches — no hash set is ever built.
    fn apply_superlatives_sorted(
        &self,
        query: &Query,
        mut candidates: Vec<RecordId>,
    ) -> DbResult<Vec<RecordId>> {
        for s in &query.superlatives {
            if candidates.is_empty() {
                return Ok(candidates);
            }
            let max = matches!(s.kind, SuperlativeKind::Max);
            match self.table.extreme_sorted(&s.attribute, &candidates, max) {
                Some((_, ids)) => {
                    candidates = ids;
                    candidates.sort_unstable();
                }
                None => candidates.clear(),
            }
        }
        Ok(candidates)
    }
}

/// Two-pointer intersection of two ascending id slices.
fn intersect_sorted(a: &[RecordId], b: &[RecordId]) -> Vec<RecordId> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
            Ordering::Less => i += 1,
            Ordering::Greater => j += 1,
        }
    }
    out
}

fn next_float(x: f64) -> f64 {
    // Smallest representable value strictly greater than x, adequate for ad prices/years.
    x + x.abs().max(1.0) * 1e-12
}

fn prev_float(x: f64) -> f64 {
    x - x.abs().max(1.0) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Superlative;
    use crate::record::Record;
    use crate::schema::Schema;

    fn sample_table() -> Table {
        let schema = Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type2("transmission")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .type3("year", 1985.0, 2011.0, None)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            ("honda", "accord", "blue", "automatic", 6600.0, 2004.0),
            ("honda", "accord", "gold", "manual", 16536.0, 2009.0),
            ("honda", "civic", "red", "automatic", 4500.0, 2001.0),
            ("toyota", "camry", "blue", "automatic", 8561.0, 2006.0),
            ("toyota", "corolla", "silver", "manual", 3900.0, 1999.0),
            ("ford", "focus", "blue", "manual", 6795.0, 2005.0),
        ];
        for (make, model, color, trans, price, year) in rows {
            t.insert(
                Record::builder()
                    .text("make", make)
                    .text("model", model)
                    .text("color", color)
                    .text("transmission", trans)
                    .number("price", price)
                    .number("year", year)
                    .build(),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn conjunction_follows_type_order_and_matches() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_condition(Condition::eq("color", "blue"))
            .with_condition(Condition::new("price", Comparison::Lt(15_000.0)));
        let answers = Executor::new(&t).execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            t.get(answers[0].id).unwrap().get_text("model"),
            Some("accord")
        );
    }

    #[test]
    fn cheapest_honda_is_evaluated_after_make() {
        let t = sample_table();
        // "cheapest honda": the cheapest car overall is the toyota corolla at 3900, so
        // evaluating the superlative first would lose all Hondas (Section 4.3).
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_superlative(Superlative::min("price"));
        let answers = Executor::new(&t).execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        let r = t.get(answers[0].id).unwrap();
        assert_eq!(r.get_text("make"), Some("honda"));
        assert_eq!(r.get_number("price"), Some(4500.0));
    }

    #[test]
    fn superlatives_first_ablation_reproduces_the_paper_failure_mode() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_superlative(Superlative::min("price"));
        let wrong = Executor::with_options(
            &t,
            ExecOptions {
                superlatives_first: true,
                use_indexes: true,
            },
        );
        // Cheapest car overall is a Toyota, so filtering by Honda afterwards yields nothing.
        assert!(wrong.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn or_and_not_expressions_evaluate_with_set_semantics() {
        let t = sample_table();
        // "Toyota Corolla or a silver not manual Honda Accord" simplified:
        let expr = BoolExpr::or(vec![
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "toyota")),
                BoolExpr::Cond(Condition::eq("model", "corolla")),
            ]),
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "honda")),
                BoolExpr::Cond(Condition::eq("model", "accord")),
                BoolExpr::Cond(Condition::eq("transmission", "manual").negated()),
            ]),
        ]);
        let q = Query::new("cars").with_expr(expr);
        let answers = Executor::new(&t).execute(&q).unwrap();
        let models: Vec<_> = answers
            .iter()
            .map(|a| t.get(a.id).unwrap().get_text("model").unwrap().to_string())
            .collect();
        assert!(models.contains(&"corolla".to_string()));
        assert!(models.contains(&"accord".to_string()));
        assert_eq!(answers.len(), 2); // only the automatic accord qualifies
    }

    #[test]
    fn between_and_contains_conditions() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::new("price", Comparison::Between(4000.0, 7000.0)));
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 3);
        let q = Query::new("cars")
            .with_condition(Condition::new("model", Comparison::Contains("cord".into())));
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 2);
    }

    #[test]
    fn empty_between_range_errors_like_rule_1c() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::new("price", Comparison::Between(9000.0, 2000.0)));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::EmptyRange { .. }
        ));
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let t = sample_table();
        let q = Query::new("cars").with_condition(Condition::eq("wheels", "4"));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::UnknownAttribute { .. }
        ));
        let q = Query::new("cars").with_condition(Condition::new("color", Comparison::Lt(3.0)));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::InvalidQuery(_)
        ));
        let q = Query::new("cars").with_superlative(Superlative::min("color"));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::InvalidQuery(_)
        ));
        let q = Query::new("boats");
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::UnknownTable(_)
        ));
    }

    #[test]
    fn limit_caps_answers_and_true_returns_everything() {
        let t = sample_table();
        let q = Query::new("cars").with_limit(3);
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 3);
        let q = Query::new("cars");
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 6);
    }

    #[test]
    fn index_and_scan_paths_agree() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("color", "blue"))
            .with_condition(Condition::new("price", Comparison::Lt(8000.0)));
        let with_idx = Executor::new(&t).execute(&q).unwrap();
        let no_idx = Executor::with_options(
            &t,
            ExecOptions {
                superlatives_first: false,
                use_indexes: false,
            },
        )
        .execute(&q)
        .unwrap();
        assert_eq!(with_idx, no_idx);
    }

    #[test]
    fn execute_records_materializes_rows() {
        let t = sample_table();
        let q = Query::new("cars").with_condition(Condition::eq("make", "ford"));
        let recs = Executor::new(&t).execute_records(&q).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1.get_text("model"), Some("focus"));
    }
}
