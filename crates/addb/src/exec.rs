//! Query executor implementing the paper's evaluation order.
//!
//! Section 4.3 requires that, for efficiency and correctness:
//!
//! 1. Type I conditions are evaluated first (primary index),
//! 2. Type II conditions next, on the records surviving step 1 (secondary index),
//! 3. Type III boundary conditions next, on the records surviving step 2,
//! 4. superlatives last, on the records surviving step 3.
//!
//! Superlatives-last is a *correctness* requirement ("cheapest Honda" must be the
//! cheapest among Hondas, not a Honda among the globally cheapest cars); the rest is a
//! performance ordering. [`ExecOptions::superlatives_first`] exists purely so that the
//! ablation bench can demonstrate the incorrect behaviour the paper warns about.
//!
//! # Execution model
//!
//! Conditions evaluate to **sorted id sequences**, not hash sets. Equality conditions
//! borrow their posting list straight from the table's index (zero copy — lists are
//! kept sorted by record id at insert time); range, substring and scan conditions
//! materialize a sorted vector once. Conjunctions combine those sequences with a
//! **lazy intersection** ([`IdStream`]), Disjunction and negation materialize (sorted
//! union / complement), which matches their output size anyway.
//!
//! ## Galloping advance and block-max skipping
//!
//! Every stream supports [`IdStream::seek_ge`]: *yield the next id `≥ target`*.
//! Intersections advance their operands through `seek_ge` instead of one id at a time,
//! so the stream positioned on id `x` jumps straight to the first candidate `≥ x` in
//! the other operand. Seeks over cursors use **galloping** (exponential search from
//! the current position, then binary search inside the bracketed window), which costs
//! `O(log d)` for a jump of distance `d` — adaptive: nearly-aligned lists degrade to
//! the linear merge, heavily skewed lists cost the small side times a logarithm.
//! Posting-list cursors first gallop over the table's **per-block max-id metadata**
//! ([`addb::PostingList::block_max`](crate::table::PostingList::block_max), one entry
//! per 64 ids), so the ids of skipped blocks are never touched; only the single block
//! that can contain the target is binary-searched. Equality streams inside a
//! conjunction are additionally ordered **most-selective first** (shortest posting
//! list drives), which maximizes the skew the galloping exploits. The intersection
//! output is a set, so neither reordering nor skipping changes any result.
//!
//! [`ExecOptions::linear_intersect`] restores the PR 1 behaviour — declaration-order
//! operands, one-id-at-a-time sorted merge — as an ablation baseline for the
//! `parallel_topk` bench.
//!
//! Callers that need *all* matching ids without a limit (the N−1 partial matcher)
//! consume [`Executor::execute_stream`] and never materialize a result vector; they
//! can also [`IdStream::restrict`] the stream to an id range, which is how the
//! parallel partial matcher shards one query across worker threads (each worker seeks
//! to its shard in `O(log n)` and stops at its upper bound). [`Executor::execute`]
//! collects the same stream, applies superlatives last (over a sorted candidate
//! slice, membership by binary search) and truncates to the query limit.
//!
//! ## Scored unions
//!
//! The value-ordered (WAND-style) partial scorer additionally merges *tagged*
//! per-value posting streams through [`ScoredUnion`]: a k-way `seek_ge`-capable merge
//! whose yielded tag identifies the constituent — and therefore the pre-computed
//! score — an id came from. Because it exposes the same skip primitive, a union
//! leapfrogs against galloping conjunctions and id-range shards exactly like any
//! other stream; see `cqads::partial` for the traversal, its threshold pruning and
//! the upper-bound contract that makes the pruning lossless.

use crate::error::{DbError, DbResult};
use crate::query::{BoolExpr, Comparison, Condition, Query, Superlative, SuperlativeKind};
use crate::record::{Record, RecordId};
use crate::schema::AttrType;
use crate::table::{PostingList, Table, POSTING_BLOCK};
use std::cmp::Ordering;

/// Index of the first element of `xs` that is `>= target`, assuming `xs` ascending.
///
/// Exponential (galloping) search from the front: doubling probes bracket the answer
/// in `O(log d)` steps for an answer at distance `d`, then a binary search finishes
/// inside the bracket. Cheap when the answer is near (the common case when two
/// streams advance in lockstep), still logarithmic when it is far.
#[inline]
fn gallop_lower_bound(xs: &[RecordId], target: RecordId) -> usize {
    let n = xs.len();
    if n == 0 || xs[0] >= target {
        return 0;
    }
    // Invariant: xs[lo] < target.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < n && xs[lo + step] < target {
        lo += step;
        step *= 2;
    }
    let upper = (lo + step).min(n);
    lo + 1 + xs[lo + 1..upper].partition_point(|&x| x < target)
}

/// Cursor over a table posting list with block-max skip metadata.
#[derive(Debug)]
pub struct PostingsCursor<'a> {
    list: &'a PostingList,
    pos: usize,
}

impl<'a> PostingsCursor<'a> {
    fn new(list: &'a PostingList) -> Self {
        PostingsCursor { list, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.list.len().saturating_sub(self.pos)
    }

    /// Yield the next id `>= target`, skipping whole blocks via the block-max array.
    fn seek_ge(&mut self, target: RecordId) -> Option<RecordId> {
        let ids = self.list.ids();
        if self.pos >= ids.len() {
            return None;
        }
        if ids[self.pos] >= target {
            // Lockstep fast path: the very next id already qualifies.
            let id = ids[self.pos];
            self.pos += 1;
            return Some(id);
        }
        // Gallop over block maxima to find the first block that can hold `target`;
        // the ids of every skipped block are never read.
        let block_max = self.list.block_max();
        let cur_block = self.pos / POSTING_BLOCK;
        let block = cur_block + gallop_lower_bound(&block_max[cur_block..], target);
        if block >= block_max.len() {
            self.pos = ids.len();
            return None;
        }
        // `target <= block_max[block]` (the block's last id), so the binary search
        // inside the block always lands on a qualifying id.
        let start = (block * POSTING_BLOCK).max(self.pos + 1);
        let end = ((block + 1) * POSTING_BLOCK).min(ids.len());
        let idx = start + ids[start..end].partition_point(|&x| x < target);
        debug_assert!(idx < end, "block max promised an id >= target");
        self.pos = idx + 1;
        Some(ids[idx])
    }
}

/// Cursor over materialized sorted ids (ranges, unions, complements, scans).
#[derive(Debug)]
pub struct OwnedCursor {
    ids: Vec<RecordId>,
    pos: usize,
}

impl OwnedCursor {
    fn remaining(&self) -> usize {
        self.ids.len().saturating_sub(self.pos)
    }

    fn seek_ge(&mut self, target: RecordId) -> Option<RecordId> {
        let idx = self.pos + gallop_lower_bound(&self.ids[self.pos..], target);
        let id = *self.ids.get(idx)?;
        self.pos = idx + 1;
        Some(id)
    }
}

/// How an [`IdStream::Intersect`] node advances its operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IntersectMode {
    /// Skip-based advance: each operand is positioned with [`IdStream::seek_ge`]
    /// (galloping + block-max skipping).
    Gallop,
    /// PR 1 ablation: one-id-at-a-time sorted merge, no skipping.
    Linear,
}

/// A stream of strictly ascending record ids — the executor's streaming currency.
///
/// Equality conditions stream their posting list in place; composed streams merge
/// lazily, so a consumer that stops early (bounded top-k fill, early-exit checks)
/// never pays for the tail. All variants support [`IdStream::seek_ge`], so nested
/// intersections compose: an outer intersection seeking the whole subtree makes every
/// leaf cursor gallop.
///
/// ```
/// use addb::{IdStream, RecordId};
///
/// let evens = IdStream::from_sorted_ids((0..10).map(|i| RecordId(i * 2)).collect());
/// let tail = IdStream::from_sorted_ids((5..15).map(RecordId).collect());
/// let mut both = evens.intersect(tail);
/// assert_eq!(both.seek_ge(RecordId(0)), Some(RecordId(6)));  // first common id
/// assert_eq!(both.seek_ge(RecordId(11)), Some(RecordId(12))); // skip ahead
/// let rest: Vec<RecordId> = both.collect();                   // drain the remainder
/// assert_eq!(rest, vec![RecordId(14)]);
/// ```
#[derive(Debug)]
pub enum IdStream<'a> {
    /// No matches.
    Empty,
    /// Every record id in `[start, end)` (a `TRUE` condition, or a shard restriction).
    All(std::ops::Range<u32>),
    /// Borrowed posting list with block-max skip metadata.
    Postings(PostingsCursor<'a>),
    /// Materialized sorted ids (ranges, unions, complements, scans).
    Owned(OwnedCursor),
    /// Lazy intersection of two streams.
    Intersect(Box<IdStream<'a>>, Box<IdStream<'a>>, IntersectMode),
    /// Per-candidate predicate over an inner stream (Type III boundaries applied to
    /// the records surviving the index-driven layers, per the paper's order — no
    /// range-sized id vector is ever materialized).
    Filter(Box<IdStream<'a>>, RangePredicate<'a>),
}

/// Numeric range check against a record-id-indexed column.
#[derive(Debug)]
pub struct RangePredicate<'a> {
    column: Option<&'a crate::table::NumericColumn>,
    low: f64,
    high: f64,
}

impl RangePredicate<'_> {
    fn matches(&self, id: RecordId) -> bool {
        self.column
            .and_then(|c| c.value(id))
            .is_some_and(|v| v >= self.low && v <= self.high)
    }
}

impl Iterator for IdStream<'_> {
    type Item = RecordId;

    fn next(&mut self) -> Option<RecordId> {
        // Plain advance is a seek with the trivial bound: every cursor's fast path
        // makes this O(1) per element, exactly like a dedicated `next` would be.
        self.seek_ge(RecordId(0))
    }

    /// Bulk consumption (`for_each`, `count`, `collect` all funnel through `fold`)
    /// bypasses the per-element `seek_ge` dispatch: nested filters are peeled into a
    /// flat predicate list first (no recursive fold, which would also make
    /// monomorphization diverge on the closure types), then the base stream runs as
    /// one tight loop — straight slice iteration for cursor tails, a counted loop for
    /// `TRUE`/restriction ranges. On the partial-match hot path most candidates come
    /// from single posting lists and wide-range filters, so this removes the dominant
    /// per-candidate cost.
    fn fold<B, F>(mut self, init: B, mut f: F) -> B
    where
        F: FnMut(B, RecordId) -> B,
    {
        if !self.gallop_flattenable() {
            // Linear-mode intersections keep their PR 1 element-at-a-time cost
            // profile: consume through `next` exactly as a `for` loop would.
            let mut acc = init;
            for id in self.by_ref() {
                acc = f(acc, id);
            }
            return acc;
        }
        let mut flat = FlatConjunction::default();
        flat.absorb(self);
        flat.run(init, &mut f)
    }
}

/// A galloping conjunction flattened out of an [`IdStream`] tree for bulk
/// consumption: sorted-id operands as raw slices, `TRUE`/restriction ranges reduced
/// to one `[lo, hi)` window, boundary filters as a flat predicate list. Running it is
/// one tight loop over the *shortest* operand — no per-element enum dispatch, no
/// recursive seeks — with every other operand advanced by slice galloping.
#[derive(Default)]
struct FlatConjunction<'a> {
    operands: Vec<FlatOperand<'a>>,
    predicates: Vec<RangePredicate<'a>>,
    lo: u32,
    hi: Option<u32>,
    empty: bool,
}

/// One sorted-id operand of a [`FlatConjunction`]; owned vectors are kept alive here
/// and borrowed as slices only once flattening is complete.
enum FlatOperand<'a> {
    Borrowed(&'a [RecordId]),
    Owned(Vec<RecordId>, usize),
}

impl FlatOperand<'_> {
    fn as_slice(&self) -> &[RecordId] {
        match self {
            FlatOperand::Borrowed(ids) => ids,
            FlatOperand::Owned(ids, pos) => &ids[(*pos).min(ids.len())..],
        }
    }
}

impl<'a> FlatConjunction<'a> {
    /// Flatten `stream` into this conjunction (checked flattenable by the caller; a
    /// linear-mode node reached anyway is drained element-wise, staying correct).
    fn absorb(&mut self, stream: IdStream<'a>) {
        match stream {
            IdStream::Empty => self.empty = true,
            IdStream::All(range) => {
                self.lo = self.lo.max(range.start);
                self.hi = Some(self.hi.map_or(range.end, |hi| hi.min(range.end)));
            }
            IdStream::Postings(cursor) => {
                self.operands.push(FlatOperand::Borrowed(
                    &cursor.list.ids()[cursor.pos.min(cursor.list.len())..],
                ));
            }
            IdStream::Owned(cursor) => {
                self.operands
                    .push(FlatOperand::Owned(cursor.ids, cursor.pos));
            }
            IdStream::Filter(inner, predicate) => {
                self.predicates.push(predicate);
                self.absorb(*inner);
            }
            IdStream::Intersect(a, b, IntersectMode::Gallop) => {
                self.absorb(*a);
                self.absorb(*b);
            }
            linear @ IdStream::Intersect(_, _, IntersectMode::Linear) => {
                debug_assert!(false, "caller checks gallop_flattenable first");
                self.operands.push(FlatOperand::Owned(linear.collect(), 0));
            }
        }
    }

    /// Drive the flattened conjunction, folding every surviving id into `f`.
    fn run<B>(self, init: B, f: &mut impl FnMut(B, RecordId) -> B) -> B {
        let mut acc = init;
        if self.empty {
            return acc;
        }
        let (lo, hi) = (self.lo, self.hi);
        let mut slices: Vec<&[RecordId]> =
            self.operands.iter().map(FlatOperand::as_slice).collect();
        // Shortest operand drives: it bounds the work and maximizes the skew every
        // other operand gallops across.
        slices.sort_by_key(|s| s.len());
        let predicates = &self.predicates;
        macro_rules! emit {
            ($id:expr) => {
                let id = $id;
                if predicates.iter().all(|p| p.matches(id)) {
                    acc = f(acc, id);
                }
            };
        }
        match slices.split_first() {
            None => {
                // Pure range scan (`TRUE` / restriction window, possibly filtered).
                let Some(hi) = hi else { return acc };
                for v in lo..hi {
                    emit!(RecordId(v));
                }
            }
            Some((driver, rest)) => {
                // Narrow the driver to the window once; gallop the rest per candidate.
                let start = driver.partition_point(|id| id.0 < lo);
                let end = hi.map_or(driver.len(), |hi| driver.partition_point(|id| id.0 < hi));
                let mut cursors = vec![0usize; rest.len()];
                'driver: for &id in &driver[start.min(end)..end] {
                    for (slice, cursor) in rest.iter().zip(cursors.iter_mut()) {
                        *cursor = hybrid_advance(slice, *cursor, id);
                        match slice.get(*cursor) {
                            Some(found) if *found == id => {}
                            Some(_) => continue 'driver,
                            None => break 'driver,
                        }
                    }
                    emit!(id);
                }
            }
        }
        acc
    }
}

impl<'a> IdStream<'a> {
    /// A stream over an already-sorted, deduplicated id vector.
    pub fn from_sorted_ids(ids: Vec<RecordId>) -> IdStream<'static> {
        debug_assert!(ids.windows(2).all(|w| w[0] < w[1]), "ids must be ascending");
        IdStream::Owned(OwnedCursor { ids, pos: 0 })
    }

    /// A stream borrowing a table posting list (block-max skipping enabled).
    pub fn postings(list: &'a PostingList) -> IdStream<'a> {
        IdStream::Postings(PostingsCursor::new(list))
    }

    /// Yield the next id `>= target`, consuming it.
    ///
    /// This is the skip primitive the whole executor is built on: cursors gallop
    /// (posting lists additionally skip whole blocks via their block-max metadata),
    /// `All` jumps in O(1), intersections seek both operands, filters seek the inner
    /// stream and verify candidates forward. `seek_ge(RecordId(0))` is a plain
    /// `next()`.
    pub fn seek_ge(&mut self, target: RecordId) -> Option<RecordId> {
        match self {
            IdStream::Empty => None,
            IdStream::All(range) => {
                range.start = range.start.max(target.0);
                if range.start < range.end {
                    let id = range.start;
                    range.start += 1;
                    Some(RecordId(id))
                } else {
                    None
                }
            }
            IdStream::Postings(cursor) => cursor.seek_ge(target),
            IdStream::Owned(cursor) => cursor.seek_ge(target),
            IdStream::Intersect(a, b, IntersectMode::Gallop) => {
                // Leapfrog: whichever operand is ahead sets the bar for the other.
                let mut x = a.seek_ge(target)?;
                loop {
                    let y = b.seek_ge(x)?;
                    if y == x {
                        return Some(x);
                    }
                    let x2 = a.seek_ge(y)?;
                    if x2 == y {
                        return Some(y);
                    }
                    x = x2;
                }
            }
            IdStream::Intersect(a, b, IntersectMode::Linear) => {
                // PR 1 ablation: advance one id at a time, never skip.
                let mut x = a.next()?;
                let mut y = b.next()?;
                loop {
                    match x.cmp(&y) {
                        Ordering::Equal if x >= target => return Some(x),
                        Ordering::Equal => {
                            x = a.next()?;
                            y = b.next()?;
                        }
                        Ordering::Less => x = a.next()?,
                        Ordering::Greater => y = b.next()?,
                    }
                }
            }
            IdStream::Filter(inner, predicate) => {
                let mut id = inner.seek_ge(target)?;
                loop {
                    if predicate.matches(id) {
                        return Some(id);
                    }
                    id = inner.seek_ge(RecordId(0))?;
                }
            }
        }
    }

    /// True when the stream can be proven empty without consuming it.
    ///
    /// Exact for cursors (including a fully-seeked cursor whose remaining tail is
    /// empty and a posting list with no ids); conservative for compositions: an
    /// intersection is trivially empty when either operand is, a filter when its
    /// inner stream is.
    fn is_trivially_empty(&self) -> bool {
        self.len_estimate() == 0
    }

    /// Can bulk consumption flatten this tree into a [`FlatConjunction`]? True for
    /// every shape the executor builds in galloping mode; false as soon as a
    /// linear-mode (PR 1 ablation) intersection appears anywhere.
    fn gallop_flattenable(&self) -> bool {
        match self {
            IdStream::Empty | IdStream::All(_) | IdStream::Postings(_) | IdStream::Owned(_) => true,
            IdStream::Filter(inner, _) => inner.gallop_flattenable(),
            IdStream::Intersect(a, b, IntersectMode::Gallop) => {
                a.gallop_flattenable() && b.gallop_flattenable()
            }
            IdStream::Intersect(_, _, IntersectMode::Linear) => false,
        }
    }

    /// Upper bound on how many ids the stream can still yield. Exact for leaves,
    /// `min` over intersections — used to order conjunctions most-selective first.
    fn len_estimate(&self) -> usize {
        match self {
            IdStream::Empty => 0,
            IdStream::All(r) => r.len(),
            IdStream::Postings(cursor) => cursor.remaining(),
            IdStream::Owned(cursor) => cursor.remaining(),
            IdStream::Intersect(a, b, _) => a.len_estimate().min(b.len_estimate()),
            IdStream::Filter(inner, _) => inner.len_estimate(),
        }
    }

    /// Lazy intersection (galloping advance); collapses to [`IdStream::Empty`] when
    /// either side is trivially empty.
    pub fn intersect(self, other: IdStream<'a>) -> IdStream<'a> {
        self.intersect_with(other, IntersectMode::Gallop)
    }

    /// [`IdStream::intersect`] with an explicit advance mode.
    fn intersect_with(self, other: IdStream<'a>, mode: IntersectMode) -> IdStream<'a> {
        if self.is_trivially_empty() || other.is_trivially_empty() {
            return IdStream::Empty;
        }
        match (self, other) {
            // A full-universe `TRUE` range is the identity of conjunction (every id
            // of the other operand lies inside it; partial ranges built through
            // `restrict` never take this arm because their `start` is non-zero or the
            // construction below is used directly).
            (IdStream::All(r), s) if r.start == 0 && max_possible_id_below(&s, r.end) => s,
            (s, IdStream::All(r)) if r.start == 0 && max_possible_id_below(&s, r.end) => s,
            (a, b) => IdStream::Intersect(Box::new(a), Box::new(b), mode),
        }
    }

    /// Restrict the stream to ids in `[bounds.start, bounds.end)`.
    ///
    /// The restriction is itself lazy: the first pull seeks the stream to
    /// `bounds.start` (galloping — `O(log n)` into a posting list), and pulling stops
    /// at the upper bound without visiting the tail. This is the sharding primitive of
    /// the parallel partial matcher: `k` workers restrict the same query to `k`
    /// disjoint id ranges and each pays only for its own shard.
    pub fn restrict(self, bounds: std::ops::Range<u32>) -> IdStream<'a> {
        if self.is_trivially_empty() || bounds.is_empty() {
            return IdStream::Empty;
        }
        // The range drives: it advances in O(1) and bounds both sides of the leapfrog.
        IdStream::Intersect(
            Box::new(IdStream::All(bounds)),
            Box::new(self),
            IntersectMode::Gallop,
        )
    }
}

/// A k-way merge over *tagged* sorted id streams: yields `(id, tag)` with ids
/// strictly ascending, where `tag` is the index of the constituent stream the id came
/// from. Built by the value-ordered (WAND-style) partial scorer to merge the
/// **surviving per-value posting streams** of a relaxed attribute — each constituent
/// carries the (pre-computed, exact) score of its value, so the consumer scores a
/// candidate by `tag` lookup instead of a matrix probe.
///
/// Like every [`IdStream`], it exposes [`ScoredUnion::seek_ge`], so it composes with
/// the galloping machinery: the partial matcher leapfrogs a union against the
/// conjunction stream of the remaining conditions and against the id-range shards of
/// the parallel workers, and each `seek_ge` lets every constituent skip whole
/// posting-list blocks via their block-max metadata.
///
/// Constituents drawn from one column's [`crate::table::ValueIndex`] are disjoint by
/// construction (a record holds one value per attribute). Should overlapping streams
/// ever be merged, a duplicate id is yielded **once**, with the smallest tag — tags
/// are assigned in descending score order, so the best score wins.
#[derive(Debug)]
pub struct ScoredUnion<'a> {
    branches: Vec<IdStream<'a>>,
    /// Min-heap over `(next undelivered id, tag)` of each non-exhausted branch.
    heads: std::collections::BinaryHeap<std::cmp::Reverse<(RecordId, u32)>>,
}

impl<'a> ScoredUnion<'a> {
    /// Merge `parts`; the tag of each yielded id is its stream's index in `parts`.
    pub fn new(parts: Vec<IdStream<'a>>) -> Self {
        let mut branches = parts;
        let mut heads = std::collections::BinaryHeap::with_capacity(branches.len());
        for (tag, branch) in branches.iter_mut().enumerate() {
            if let Some(id) = branch.seek_ge(RecordId(0)) {
                heads.push(std::cmp::Reverse((id, tag as u32)));
            }
        }
        ScoredUnion { branches, heads }
    }

    /// Yield the next `(id, tag)` with `id >= target`, consuming it. Constituents
    /// positioned before `target` are advanced with their own galloping `seek_ge`
    /// first, so skipped ids are never touched.
    pub fn seek_ge(&mut self, target: RecordId) -> Option<(RecordId, u32)> {
        loop {
            let std::cmp::Reverse((id, tag)) = self.heads.peek().copied()?;
            self.heads.pop();
            if id < target {
                // Behind the bar: gallop this branch forward and re-enter it.
                if let Some(next) = self.branches[tag as usize].seek_ge(target) {
                    self.heads.push(std::cmp::Reverse((next, tag)));
                }
                continue;
            }
            // Deliver `id`: advance its branch, and drain any other branch holding
            // the same id (duplicates collapse onto the smallest tag, popped first).
            if let Some(next) = self.branches[tag as usize].seek_ge(RecordId(0)) {
                self.heads.push(std::cmp::Reverse((next, tag)));
            }
            while let Some(&std::cmp::Reverse((dup, dup_tag))) = self.heads.peek() {
                if dup != id {
                    break;
                }
                self.heads.pop();
                if let Some(next) = self.branches[dup_tag as usize].seek_ge(RecordId(0)) {
                    self.heads.push(std::cmp::Reverse((next, dup_tag)));
                }
            }
            return Some((id, tag));
        }
    }

    /// True when every constituent is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.heads.is_empty()
    }
}

impl Iterator for ScoredUnion<'_> {
    type Item = (RecordId, u32);

    fn next(&mut self) -> Option<(RecordId, u32)> {
        self.seek_ge(RecordId(0))
    }
}

/// First index `>= cursor` whose element is `>= target`: a few linear probes first
/// (free when two lists advance in near-lockstep, the common case for similar-sized
/// operands), then a gallop for genuinely skewed jumps. Strictly an advance policy —
/// the returned index is always the exact lower bound.
#[inline]
fn hybrid_advance(slice: &[RecordId], mut cursor: usize, target: RecordId) -> usize {
    let mut probes = 0u32;
    while let Some(id) = slice.get(cursor) {
        if *id >= target {
            return cursor;
        }
        cursor += 1;
        probes += 1;
        if probes == 8 {
            return cursor + gallop_lower_bound(&slice[cursor..], target);
        }
    }
    cursor
}

/// Can every id the stream may yield be proven `< bound` without consuming it?
/// (Cursor tails know their last id; used for the conjunction-identity shortcut.)
fn max_possible_id_below(stream: &IdStream<'_>, bound: u32) -> bool {
    let below = |ids: &[RecordId]| ids.last().is_none_or(|last| last.0 < bound);
    match stream {
        IdStream::Empty => true,
        IdStream::All(r) => r.end <= bound,
        IdStream::Postings(cursor) => below(cursor.list.ids()),
        IdStream::Owned(cursor) => below(&cursor.ids),
        IdStream::Intersect(a, b, _) => {
            max_possible_id_below(a, bound) || max_possible_id_below(b, bound)
        }
        IdStream::Filter(inner, _) => max_possible_id_below(inner, bound),
    }
}

/// Tuning knobs for the executor.
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Evaluate superlatives before the other conditions — the incorrect order discussed
    /// in Section 4.3, kept for the ablation study.
    pub superlatives_first: bool,
    /// Use the hash / sorted-column indexes (true) or fall back to full scans (false).
    /// The substring-index ablation bench flips this to quantify the speed-up.
    pub use_indexes: bool,
    /// Advance intersections one id at a time in declaration order (the PR 1
    /// behaviour) instead of galloping with block-max skipping and most-selective-
    /// first ordering. Kept for the `parallel_topk` ablation bench; results are
    /// identical either way.
    pub linear_intersect: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            superlatives_first: false,
            use_indexes: true,
            linear_intersect: false,
        }
    }
}

/// One answer produced by the executor: the record id and whether it matched every
/// condition (exact) — partial answers are produced by the CQAds N−1 layer, not here.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryAnswer {
    /// Identifier of the matching record.
    pub id: RecordId,
}

/// Executes [`Query`] statements against a single [`Table`].
#[derive(Debug, Clone, Copy)]
pub struct Executor<'a> {
    table: &'a Table,
    options: ExecOptions,
}

impl<'a> Executor<'a> {
    /// Executor with default options (paper-mandated evaluation order, indexes on).
    pub fn new(table: &'a Table) -> Self {
        Executor {
            table,
            options: ExecOptions::default(),
        }
    }

    /// Executor with explicit options.
    pub fn with_options(table: &'a Table, options: ExecOptions) -> Self {
        Executor { table, options }
    }

    /// Run the query, returning at most `query.limit` answers in deterministic
    /// (record-id) order, superlative answers first when superlatives are present.
    pub fn execute(&self, query: &Query) -> DbResult<Vec<QueryAnswer>> {
        if query.table != self.table.name() {
            return Err(DbError::UnknownTable(query.table.clone()));
        }
        self.validate(query)?;

        let mut ids: Vec<RecordId>;
        if let Some((first, rest)) = query
            .superlatives
            .split_first()
            .filter(|_| self.options.superlatives_first)
        {
            // Ablation: superlatives applied to the whole table, then filtered. The
            // first extreme is computed straight off the sorted column — no
            // table-sized id vector — and the (small) extreme set is then lazily
            // intersected with the WHERE stream, which gallops past everything else.
            let mut extremes = self
                .table
                .extreme_all(&first.attribute, matches!(first.kind, SuperlativeKind::Max))
                .map(|(_, ids)| ids)
                .unwrap_or_default();
            extremes.sort_unstable();
            extremes = self.apply_superlative_slice(rest, extremes)?;
            let matched = self.stream_ordered(&query.expr)?;
            ids = IdStream::from_sorted_ids(extremes)
                .intersect(matched)
                .collect();
        } else {
            ids = self.stream_ordered(&query.expr)?.collect();
            ids = self.apply_superlatives_sorted(query, ids)?;
        }

        ids.truncate(query.limit);
        Ok(ids.into_iter().map(|id| QueryAnswer { id }).collect())
    }

    /// Streaming execution: ascending record ids matching the WHERE expression and
    /// superlatives. `query.limit` is **not** applied — streaming consumers (the N−1
    /// partial matcher) decide themselves when to stop pulling.
    pub fn execute_stream(&self, query: &Query) -> DbResult<IdStream<'a>> {
        if query.table != self.table.name() {
            return Err(DbError::UnknownTable(query.table.clone()));
        }
        self.validate(query)?;
        if query.superlatives.is_empty() {
            self.stream_ordered(&query.expr)
        } else {
            // Superlatives need the full candidate set; materialize, filter, re-stream.
            let ids: Vec<RecordId> = self.stream_ordered(&query.expr)?.collect();
            let ids = self.apply_superlatives_sorted(query, ids)?;
            Ok(IdStream::from_sorted_ids(ids))
        }
    }

    /// Convenience: execute and materialize the matching records.
    pub fn execute_records(&self, query: &Query) -> DbResult<Vec<(RecordId, &'a Record)>> {
        Ok(self
            .execute(query)?
            .into_iter()
            .filter_map(|a| self.table.get(a.id).map(|r| (a.id, r)))
            .collect())
    }

    fn validate(&self, query: &Query) -> DbResult<()> {
        for cond in query.expr.conditions() {
            let attr = self.table.schema().require(&cond.attribute)?;
            if let Comparison::Between(lo, hi) = cond.comparison {
                if lo > hi {
                    return Err(DbError::EmptyRange {
                        attribute: cond.attribute.clone(),
                        low: lo,
                        high: hi,
                    });
                }
            }
            if cond.comparison.is_numeric() && attr.attr_type != AttrType::TypeIII {
                return Err(DbError::InvalidQuery(format!(
                    "numeric comparison on categorical attribute `{}`",
                    cond.attribute
                )));
            }
        }
        for s in &query.superlatives {
            let attr = self.table.schema().require(&s.attribute)?;
            if attr.attr_type != AttrType::TypeIII {
                return Err(DbError::InvalidQuery(format!(
                    "superlative over non-numeric attribute `{}`",
                    s.attribute
                )));
            }
        }
        Ok(())
    }

    /// Evaluate the WHERE expression into a sorted id stream. For a pure conjunction,
    /// the Type I / Type II equality streams are intersected **most selective first**
    /// (shortest posting list drives the galloping leapfrog) — the paper's
    /// Type I → Type II order is a performance heuristic, and posting-list lengths are
    /// the exact statistic it approximates; the intersection result is identical
    /// either way. Type III boundaries still run after the equality layers as
    /// per-candidate filters (the paper's step 3). For arbitrary boolean expressions
    /// we recurse, materializing at OR/NOT boundaries where the output is a genuinely
    /// new set. Under [`ExecOptions::linear_intersect`] the declaration order and the
    /// one-id-at-a-time merge of PR 1 are preserved.
    fn stream_ordered(&self, expr: &BoolExpr) -> DbResult<IdStream<'a>> {
        let mode = if self.options.linear_intersect {
            IntersectMode::Linear
        } else {
            IntersectMode::Gallop
        };
        match expr {
            BoolExpr::True => Ok(IdStream::All(0..self.table.len() as u32)),
            BoolExpr::Cond(c) => Ok(self.stream_condition(c)),
            BoolExpr::Not(inner) => {
                let matched: Vec<RecordId> = self.stream_ordered(inner)?.collect();
                let complement: Vec<RecordId> = (0..self.table.len() as u32)
                    .map(RecordId)
                    .filter(|id| matched.binary_search(id).is_err())
                    .collect();
                Ok(IdStream::from_sorted_ids(complement))
            }
            BoolExpr::Or(parts) => {
                // Sorted union: k-way merge by collect + sort + dedup (output-sized).
                let mut acc: Vec<RecordId> = Vec::new();
                for p in parts {
                    acc.extend(self.stream_ordered(p)?);
                }
                acc.sort_unstable();
                acc.dedup();
                Ok(IdStream::from_sorted_ids(acc))
            }
            BoolExpr::And(parts) => {
                // Partition leaf conditions by attribute type so boundaries run after
                // the index layers; non-leaf sub-expressions are applied last.
                let mut t1 = Vec::new();
                let mut t2 = Vec::new();
                let mut t3 = Vec::new();
                let mut complex = Vec::new();
                for p in parts {
                    match p {
                        BoolExpr::Cond(c) => {
                            match self.table.schema().require(&c.attribute)?.attr_type {
                                AttrType::TypeI => t1.push(c),
                                AttrType::TypeII => t2.push(c),
                                AttrType::TypeIII => t3.push(c),
                            }
                        }
                        other => complex.push(other),
                    }
                }
                let mut equality_streams: Vec<IdStream<'a>> = Vec::new();
                for c in t1.into_iter().chain(t2) {
                    let next = self.stream_condition(c);
                    if next.is_trivially_empty() {
                        return Ok(IdStream::Empty);
                    }
                    equality_streams.push(next);
                }
                if !self.options.linear_intersect {
                    // Shortest list first: the driver of the leapfrog sets the skew
                    // every other operand gallops across. (Stable sort: declaration
                    // order breaks ties, keeping plans deterministic.)
                    equality_streams.sort_by_key(IdStream::len_estimate);
                }
                let mut stream: Option<IdStream<'a>> = None;
                for next in equality_streams {
                    stream = Some(match stream {
                        Some(acc) => acc.intersect_with(next, mode),
                        None => next,
                    });
                    if stream.as_ref().is_some_and(IdStream::is_trivially_empty) {
                        return Ok(IdStream::Empty);
                    }
                }
                for c in t3 {
                    // Type III boundaries run on the records surviving the index-driven
                    // layers (the paper's step 3): when an equality stream exists, the
                    // boundary becomes a per-candidate column check instead of a
                    // materialized (and sorted) range-sized id vector.
                    let next = match (stream.take(), self.range_predicate(c)) {
                        (Some(inner), Some(predicate)) => {
                            IdStream::Filter(Box::new(inner), predicate)
                        }
                        (taken, _) => {
                            let next = self.stream_condition(c);
                            match taken {
                                Some(acc) => acc.intersect_with(next, mode),
                                None => next,
                            }
                        }
                    };
                    stream = Some(next);
                    if stream.as_ref().is_some_and(IdStream::is_trivially_empty) {
                        return Ok(IdStream::Empty);
                    }
                }
                let mut acc = stream.unwrap_or_else(|| IdStream::All(0..self.table.len() as u32));
                for sub in complex {
                    acc = acc.intersect_with(self.stream_ordered(sub)?, mode);
                }
                Ok(acc)
            }
        }
    }

    /// Inclusive numeric bounds of an indexable boundary comparison, `None` when the
    /// condition is not a plain numeric range (negated, no-index mode, text equality,
    /// substring).
    fn range_predicate(&self, cond: &Condition) -> Option<RangePredicate<'a>> {
        if !self.options.use_indexes || cond.negated {
            return None;
        }
        let (low, high) = match &cond.comparison {
            Comparison::Eq(crate::value::Value::Number(n)) => (*n, *n),
            Comparison::Lt(b) => (f64::NEG_INFINITY, prev_float(*b)),
            Comparison::Le(b) => (f64::NEG_INFINITY, *b),
            Comparison::Gt(b) => (next_float(*b), f64::INFINITY),
            Comparison::Ge(b) => (*b, f64::INFINITY),
            Comparison::Between(lo, hi) => (*lo, *hi),
            _ => return None,
        };
        Some(RangePredicate {
            column: self.table.numeric_column(&cond.attribute),
            low,
            high,
        })
    }

    /// Evaluate one condition into a sorted id stream. Equality conditions borrow their
    /// posting list; everything else materializes one sorted vector.
    fn stream_condition(&self, cond: &Condition) -> IdStream<'a> {
        if self.options.use_indexes && !cond.negated {
            let sorted_range = |low: f64, high: f64| {
                // A wide range (most of the table qualifies) is cheaper as a lazy
                // per-record filter over the id space than as a range-sized id vector
                // that must be collected *and re-sorted* from value order into id
                // order — and the lazy form costs nothing to build, which also
                // matters when parallel workers each plan the same query. Narrow
                // ranges still materialize: their sort is small and the resulting
                // cursor gallops. The id *set* is identical either way. The linear
                // ablation keeps PR 1's always-materialize behaviour.
                let count = self.table.range_count(&cond.attribute, low, high);
                let wide = count.saturating_mul(4) >= self.table.len() && count > 256;
                if wide && !self.options.linear_intersect {
                    IdStream::Filter(
                        Box::new(IdStream::All(0..self.table.len() as u32)),
                        RangePredicate {
                            column: self.table.numeric_column(&cond.attribute),
                            low,
                            high,
                        },
                    )
                } else {
                    let mut ids = self.table.lookup_range(&cond.attribute, low, high);
                    ids.sort_unstable();
                    IdStream::from_sorted_ids(ids)
                }
            };
            match &cond.comparison {
                Comparison::Eq(crate::value::Value::Text(v)) => self
                    .table
                    .posting_list(&cond.attribute, v)
                    .map(IdStream::postings)
                    .unwrap_or(IdStream::Empty),
                Comparison::Eq(crate::value::Value::Number(n)) => sorted_range(*n, *n),
                Comparison::Lt(b) => sorted_range(f64::NEG_INFINITY, prev_float(*b)),
                Comparison::Le(b) => sorted_range(f64::NEG_INFINITY, *b),
                Comparison::Gt(b) => sorted_range(next_float(*b), f64::INFINITY),
                Comparison::Ge(b) => sorted_range(*b, f64::INFINITY),
                Comparison::Between(lo, hi) => sorted_range(*lo, *hi),
                Comparison::Contains(needle) => {
                    // Substring index pre-filter, then verify.
                    let mut ids: Vec<RecordId> = self
                        .table
                        .substring_index()
                        .substring_candidates(&cond.attribute, needle)
                        .into_iter()
                        .filter(|id| {
                            self.table
                                .get(*id)
                                .map(|r| cond.matches_value(r.get(&cond.attribute)))
                                .unwrap_or(false)
                        })
                        .collect();
                    ids.sort_unstable();
                    ids.dedup();
                    IdStream::from_sorted_ids(ids)
                }
            }
        } else {
            // Full scan (negated conditions and the no-index ablation); table iteration
            // yields ids in ascending order already.
            let ids: Vec<RecordId> = self
                .table
                .iter()
                .filter(|(_, r)| cond.matches_value(r.get(&cond.attribute)))
                .map(|(id, _)| id)
                .collect();
            IdStream::from_sorted_ids(ids)
        }
    }

    /// Apply superlatives over an ascending candidate vector, returning the surviving
    /// ids ascending. Membership tests inside [`Table::extreme_sorted`] are binary
    /// searches — no hash set is ever built.
    fn apply_superlatives_sorted(
        &self,
        query: &Query,
        candidates: Vec<RecordId>,
    ) -> DbResult<Vec<RecordId>> {
        self.apply_superlative_slice(&query.superlatives, candidates)
    }

    /// Apply a run of superlatives over an ascending candidate vector.
    fn apply_superlative_slice(
        &self,
        superlatives: &[Superlative],
        mut candidates: Vec<RecordId>,
    ) -> DbResult<Vec<RecordId>> {
        for s in superlatives {
            if candidates.is_empty() {
                return Ok(candidates);
            }
            let max = matches!(s.kind, SuperlativeKind::Max);
            match self.table.extreme_sorted(&s.attribute, &candidates, max) {
                Some((_, ids)) => {
                    candidates = ids;
                    candidates.sort_unstable();
                }
                None => candidates.clear(),
            }
        }
        Ok(candidates)
    }
}

fn next_float(x: f64) -> f64 {
    // Smallest representable value strictly greater than x, adequate for ad prices/years.
    x + x.abs().max(1.0) * 1e-12
}

fn prev_float(x: f64) -> f64 {
    x - x.abs().max(1.0) * 1e-12
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::query::Superlative;
    use crate::record::Record;
    use crate::schema::Schema;

    fn sample_table() -> Table {
        let schema = Schema::builder("cars")
            .type1("make")
            .type1("model")
            .type2("color")
            .type2("transmission")
            .type3("price", 500.0, 120_000.0, Some("usd"))
            .type3("year", 1985.0, 2011.0, None)
            .build()
            .unwrap();
        let mut t = Table::new(schema);
        let rows = [
            ("honda", "accord", "blue", "automatic", 6600.0, 2004.0),
            ("honda", "accord", "gold", "manual", 16536.0, 2009.0),
            ("honda", "civic", "red", "automatic", 4500.0, 2001.0),
            ("toyota", "camry", "blue", "automatic", 8561.0, 2006.0),
            ("toyota", "corolla", "silver", "manual", 3900.0, 1999.0),
            ("ford", "focus", "blue", "manual", 6795.0, 2005.0),
        ];
        for (make, model, color, trans, price, year) in rows {
            t.insert(
                Record::builder()
                    .text("make", make)
                    .text("model", model)
                    .text("color", color)
                    .text("transmission", trans)
                    .number("price", price)
                    .number("year", year)
                    .build(),
            )
            .unwrap();
        }
        t
    }

    #[test]
    fn conjunction_follows_type_order_and_matches() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_condition(Condition::eq("color", "blue"))
            .with_condition(Condition::new("price", Comparison::Lt(15_000.0)));
        let answers = Executor::new(&t).execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        assert_eq!(
            t.get(answers[0].id).unwrap().get_text("model"),
            Some("accord")
        );
    }

    #[test]
    fn cheapest_honda_is_evaluated_after_make() {
        let t = sample_table();
        // "cheapest honda": the cheapest car overall is the toyota corolla at 3900, so
        // evaluating the superlative first would lose all Hondas (Section 4.3).
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_superlative(Superlative::min("price"));
        let answers = Executor::new(&t).execute(&q).unwrap();
        assert_eq!(answers.len(), 1);
        let r = t.get(answers[0].id).unwrap();
        assert_eq!(r.get_text("make"), Some("honda"));
        assert_eq!(r.get_number("price"), Some(4500.0));
    }

    #[test]
    fn superlatives_first_ablation_reproduces_the_paper_failure_mode() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("make", "honda"))
            .with_superlative(Superlative::min("price"));
        let wrong = Executor::with_options(
            &t,
            ExecOptions {
                superlatives_first: true,
                ..ExecOptions::default()
            },
        );
        // Cheapest car overall is a Toyota, so filtering by Honda afterwards yields nothing.
        assert!(wrong.execute(&q).unwrap().is_empty());
    }

    #[test]
    fn or_and_not_expressions_evaluate_with_set_semantics() {
        let t = sample_table();
        // "Toyota Corolla or a silver not manual Honda Accord" simplified:
        let expr = BoolExpr::or(vec![
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "toyota")),
                BoolExpr::Cond(Condition::eq("model", "corolla")),
            ]),
            BoolExpr::and(vec![
                BoolExpr::Cond(Condition::eq("make", "honda")),
                BoolExpr::Cond(Condition::eq("model", "accord")),
                BoolExpr::Cond(Condition::eq("transmission", "manual").negated()),
            ]),
        ]);
        let q = Query::new("cars").with_expr(expr);
        let answers = Executor::new(&t).execute(&q).unwrap();
        let models: Vec<_> = answers
            .iter()
            .map(|a| t.get(a.id).unwrap().get_text("model").unwrap().to_string())
            .collect();
        assert!(models.contains(&"corolla".to_string()));
        assert!(models.contains(&"accord".to_string()));
        assert_eq!(answers.len(), 2); // only the automatic accord qualifies
    }

    #[test]
    fn between_and_contains_conditions() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::new("price", Comparison::Between(4000.0, 7000.0)));
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 3);
        let q = Query::new("cars")
            .with_condition(Condition::new("model", Comparison::Contains("cord".into())));
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 2);
    }

    #[test]
    fn empty_between_range_errors_like_rule_1c() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::new("price", Comparison::Between(9000.0, 2000.0)));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::EmptyRange { .. }
        ));
    }

    #[test]
    fn invalid_queries_are_rejected() {
        let t = sample_table();
        let q = Query::new("cars").with_condition(Condition::eq("wheels", "4"));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::UnknownAttribute { .. }
        ));
        let q = Query::new("cars").with_condition(Condition::new("color", Comparison::Lt(3.0)));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::InvalidQuery(_)
        ));
        let q = Query::new("cars").with_superlative(Superlative::min("color"));
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::InvalidQuery(_)
        ));
        let q = Query::new("boats");
        assert!(matches!(
            Executor::new(&t).execute(&q).unwrap_err(),
            DbError::UnknownTable(_)
        ));
    }

    #[test]
    fn limit_caps_answers_and_true_returns_everything() {
        let t = sample_table();
        let q = Query::new("cars").with_limit(3);
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 3);
        let q = Query::new("cars");
        assert_eq!(Executor::new(&t).execute(&q).unwrap().len(), 6);
    }

    #[test]
    fn index_and_scan_paths_agree() {
        let t = sample_table();
        let q = Query::new("cars")
            .with_condition(Condition::eq("color", "blue"))
            .with_condition(Condition::new("price", Comparison::Lt(8000.0)));
        let with_idx = Executor::new(&t).execute(&q).unwrap();
        let no_idx = Executor::with_options(
            &t,
            ExecOptions {
                use_indexes: false,
                ..ExecOptions::default()
            },
        )
        .execute(&q)
        .unwrap();
        assert_eq!(with_idx, no_idx);
    }

    #[test]
    fn execute_records_materializes_rows() {
        let t = sample_table();
        let q = Query::new("cars").with_condition(Condition::eq("make", "ford"));
        let recs = Executor::new(&t).execute_records(&q).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].1.get_text("model"), Some("focus"));
    }

    // -----------------------------------------------------------------------
    // seek_ge / galloping / block-max edge cases
    // -----------------------------------------------------------------------

    fn rec(ids: &[u32]) -> Vec<RecordId> {
        ids.iter().copied().map(RecordId).collect()
    }

    #[test]
    fn gallop_lower_bound_agrees_with_partition_point() {
        let xs = rec(&[1, 3, 5, 7, 9, 40, 41, 100, 1000]);
        for target in 0..=1001u32 {
            let t = RecordId(target);
            assert_eq!(
                gallop_lower_bound(&xs, t),
                xs.partition_point(|&x| x < t),
                "target {target}"
            );
        }
        assert_eq!(gallop_lower_bound(&[], RecordId(5)), 0);
    }

    #[test]
    fn postings_cursor_seeks_across_blocks() {
        // Three full blocks plus a tail, with a gap the seek must jump over.
        let mut ids: Vec<RecordId> = (0..POSTING_BLOCK as u32 * 3).map(RecordId).collect();
        ids.extend((10_000..10_010).map(RecordId));
        let list = PostingList::from_sorted(ids.clone());
        let mut stream = IdStream::postings(&list);
        assert_eq!(stream.seek_ge(RecordId(0)), Some(RecordId(0)));
        // Jump into the middle of block 1.
        let mid = POSTING_BLOCK as u32 + 7;
        assert_eq!(stream.seek_ge(RecordId(mid)), Some(RecordId(mid)));
        // Jump over the gap: lands on the first tail id.
        assert_eq!(stream.seek_ge(RecordId(9_999)), Some(RecordId(10_000)));
        // Seeking past the end exhausts the stream, and it knows it is empty.
        assert_eq!(stream.seek_ge(RecordId(20_000)), None);
        assert!(stream.is_trivially_empty(), "all ids skipped => empty");
        assert_eq!(stream.next(), None);
    }

    #[test]
    fn single_block_and_empty_posting_lists_are_handled() {
        let single = PostingList::from_sorted(rec(&[4, 8, 15]));
        assert_eq!(single.block_max(), rec(&[15]).as_slice());
        let mut stream = IdStream::postings(&single);
        assert!(!stream.is_trivially_empty());
        assert_eq!(stream.seek_ge(RecordId(5)), Some(RecordId(8)));
        assert_eq!(stream.seek_ge(RecordId(16)), None);

        let empty = PostingList::from_sorted(Vec::new());
        assert!(empty.block_max().is_empty());
        let mut stream = IdStream::postings(&empty);
        assert!(stream.is_trivially_empty());
        assert_eq!(stream.seek_ge(RecordId(0)), None);
        assert_eq!(stream.next(), None);
    }

    #[test]
    fn trivial_emptiness_is_exact_for_leaves_and_conservative_for_compositions() {
        assert!(IdStream::Empty.is_trivially_empty());
        assert!(IdStream::All(3..3).is_trivially_empty());
        assert!(!IdStream::All(0..1).is_trivially_empty());
        assert!(IdStream::from_sorted_ids(Vec::new()).is_trivially_empty());
        // Intersecting with a trivially-empty stream collapses to Empty.
        let list = PostingList::from_sorted(rec(&[1, 2, 3]));
        let joined = IdStream::postings(&list).intersect(IdStream::Empty);
        assert!(matches!(joined, IdStream::Empty));
        // Restriction to an empty id range collapses too.
        let restricted = IdStream::postings(&list).restrict(5..5);
        assert!(matches!(restricted, IdStream::Empty));
    }

    #[test]
    fn restrict_yields_exactly_the_ids_inside_the_bounds() {
        let list = PostingList::from_sorted(rec(&[2, 5, 9, 11, 40, 41, 90]));
        let collect = |bounds: std::ops::Range<u32>| -> Vec<RecordId> {
            IdStream::postings(&list).restrict(bounds).collect()
        };
        assert_eq!(collect(0..100), rec(&[2, 5, 9, 11, 40, 41, 90]));
        assert_eq!(collect(5..41), rec(&[5, 9, 11, 40]));
        assert_eq!(collect(12..40), Vec::<RecordId>::new());
        assert_eq!(collect(91..1000), Vec::<RecordId>::new());
    }

    #[test]
    fn scored_union_merges_tagged_streams_in_id_order() {
        let a = PostingList::from_sorted(rec(&[1, 5, 9]));
        let b = PostingList::from_sorted(rec(&[2, 5, 40]));
        let c = PostingList::from_sorted(rec(&[0, 100]));
        let union = ScoredUnion::new(vec![
            IdStream::postings(&a),
            IdStream::postings(&b),
            IdStream::postings(&c),
        ]);
        let merged: Vec<(u32, u32)> = union.map(|(id, tag)| (id.0, tag)).collect();
        // Ascending ids; the duplicate id 5 collapses onto the smallest tag (0).
        assert_eq!(
            merged,
            vec![(0, 2), (1, 0), (2, 1), (5, 0), (9, 0), (40, 1), (100, 2)]
        );
    }

    #[test]
    fn scored_union_seek_ge_skips_and_exhausts() {
        let a = PostingList::from_sorted(rec(&[1, 5, 9, 300]));
        let b = PostingList::from_sorted(rec(&[2, 7, 200]));
        let mut union = ScoredUnion::new(vec![IdStream::postings(&a), IdStream::postings(&b)]);
        assert_eq!(union.seek_ge(RecordId(4)), Some((RecordId(5), 0)));
        assert_eq!(union.seek_ge(RecordId(6)), Some((RecordId(7), 1)));
        // Seeking past both tails leaves only the far ids.
        assert_eq!(union.seek_ge(RecordId(150)), Some((RecordId(200), 1)));
        assert!(!union.is_exhausted());
        assert_eq!(union.seek_ge(RecordId(301)), None);
        assert!(union.is_exhausted());
        assert_eq!(union.next(), None);

        // Empty constituents and an empty union are handled.
        let empty = PostingList::from_sorted(Vec::new());
        let mut union = ScoredUnion::new(vec![IdStream::postings(&empty)]);
        assert!(union.is_exhausted());
        assert_eq!(union.seek_ge(RecordId(0)), None);
        let mut union = ScoredUnion::new(Vec::new());
        assert_eq!(union.next(), None);
    }

    #[test]
    fn scored_union_matches_naive_union_of_disjoint_lists() {
        // The shape the WAND scorer builds: disjoint per-value posting lists.
        let lists: Vec<PostingList> = (0..5)
            .map(|k| PostingList::from_sorted((0..200u32).map(|i| RecordId(i * 5 + k)).collect()))
            .collect();
        let union = ScoredUnion::new(lists.iter().map(IdStream::postings).collect());
        let got: Vec<RecordId> = union.map(|(id, _)| id).collect();
        let mut expected: Vec<RecordId> = lists.iter().flat_map(|l| l.ids().to_vec()).collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn intersection_modes_and_orders_agree_everywhere() {
        let t = sample_table();
        let queries = [
            Query::new("cars")
                .with_condition(Condition::eq("make", "honda"))
                .with_condition(Condition::eq("color", "blue")),
            Query::new("cars")
                .with_condition(Condition::eq("color", "blue"))
                .with_condition(Condition::eq("transmission", "manual"))
                .with_condition(Condition::new("price", Comparison::Lt(10_000.0))),
            Query::new("cars")
                .with_condition(Condition::eq("make", "toyota"))
                .with_superlative(Superlative::min("price")),
            Query::new("cars").with_condition(Condition::eq("make", "nosuchmake")),
        ];
        let gallop = Executor::new(&t);
        let linear = Executor::with_options(
            &t,
            ExecOptions {
                linear_intersect: true,
                ..ExecOptions::default()
            },
        );
        for q in &queries {
            assert_eq!(gallop.execute(q).unwrap(), linear.execute(q).unwrap());
            let g: Vec<RecordId> = gallop.execute_stream(q).unwrap().collect();
            let l: Vec<RecordId> = linear.execute_stream(q).unwrap().collect();
            assert_eq!(g, l);
        }
    }

    #[test]
    fn superlatives_first_stays_lazy_and_correct_on_empty_tables() {
        let empty = Table::new(
            Schema::builder("cars")
                .type1("make")
                .type3("price", 0.0, 1000.0, None)
                .build()
                .unwrap(),
        );
        let q = Query::new("cars").with_superlative(Superlative::min("price"));
        let wrong = Executor::with_options(
            &empty,
            ExecOptions {
                superlatives_first: true,
                ..ExecOptions::default()
            },
        );
        assert!(wrong.execute(&q).unwrap().is_empty());
        // On a populated table the rewritten path matches the paper's failure mode
        // demonstration *and* the plain path when no WHERE clause filters anything.
        let t = sample_table();
        let both = Query::new("cars").with_superlative(Superlative::max("year"));
        let a = Executor::new(&t).execute(&both).unwrap();
        let b = Executor::with_options(
            &t,
            ExecOptions {
                superlatives_first: true,
                ..ExecOptions::default()
            },
        )
        .execute(&both)
        .unwrap();
        assert_eq!(a, b);
        assert_eq!(a.len(), 1);
    }
}
