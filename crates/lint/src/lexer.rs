//! A hand-rolled, line-oriented Rust lexer: just enough to tell *code* from
//! *comments* and *literals*, which is all the rules need.
//!
//! For every source line the lexer produces the code text with comments and
//! string/char-literal **contents** blanked to spaces (so column positions
//! survive), plus the raw comment text found on that line. The rules then
//! match plain substrings against `code` without ever being fooled by a
//! pattern inside a string literal or a commented-out line — and read
//! suppressions/justifications out of `comment` without being fooled by code.
//!
//! Handled: line comments, nested block comments, doc comments, string
//! literals with escapes, raw (and byte-raw) strings with `#` fences, char
//! literals vs. lifetimes (heuristically: `'x'` / `'\..'` is a char,
//! anything else after `'` is a lifetime).

/// One source line, split into its code and comment parts.
#[derive(Debug, Clone)]
pub struct Line {
    /// 1-based line number.
    pub number: usize,
    /// The line's code with comments and literal contents blanked to spaces.
    /// Quotes themselves are kept, so `"…"` shows up as `"   "`.
    pub code: String,
    /// Raw text of every comment on the line, **including** its `//`, `///`,
    /// `//!` or `/*` delimiter, concatenated in order.
    pub comment: String,
}

impl Line {
    /// Does this line carry any non-whitespace code?
    pub fn has_code(&self) -> bool {
        !self.code.trim().is_empty()
    }

    /// Is the comment on this line a doc comment (`///` or `//!`)?
    pub fn has_doc_comment(&self) -> bool {
        let c = self.comment.trim_start();
        c.starts_with("///") || c.starts_with("//!")
    }
}

/// What the cursor is inside of, carried across lines.
enum State {
    Code,
    /// Nested block comment, with its current depth.
    BlockComment(u32),
    /// A normal `"…"` string.
    Str,
    /// A raw string terminated by `"` followed by this many `#`s.
    RawStr(u32),
}

/// Lex `source` into per-line code/comment splits.
pub fn lex(source: &str) -> Vec<Line> {
    let mut out = Vec::new();
    let mut state = State::Code;
    for (idx, raw) in source.lines().enumerate() {
        let mut code = String::with_capacity(raw.len());
        let mut comment = String::new();
        let chars: Vec<char> = raw.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars[i];
            match state {
                State::Code => {
                    if c == '/' && chars.get(i + 1) == Some(&'/') {
                        // Line comment: the rest of the line, delimiter and all.
                        comment.push_str(&chars[i..].iter().collect::<String>());
                        code.extend(std::iter::repeat_n(' ', chars.len() - i));
                        i = chars.len();
                        continue;
                    }
                    if c == '/' && chars.get(i + 1) == Some(&'*') {
                        comment.push_str("/*");
                        code.push_str("  ");
                        state = State::BlockComment(1);
                        i += 2;
                        continue;
                    }
                    if c == '"' {
                        // Raw string? Look back over `r` / `br` plus `#` fences.
                        let fences = raw_fences(&chars, i);
                        state = match fences {
                            Some(n) => State::RawStr(n),
                            None => State::Str,
                        };
                        code.push('"');
                        i += 1;
                        continue;
                    }
                    if c == '\'' {
                        // Char literal or lifetime?
                        if chars.get(i + 1) == Some(&'\\') {
                            // `'\..'`: skip to the closing quote.
                            code.push('\'');
                            i += 2;
                            while i < chars.len() && chars[i] != '\'' {
                                code.push(' ');
                                i += 1;
                            }
                            if i < chars.len() {
                                code.push('\'');
                                i += 1;
                            }
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') {
                            // `'x'`: a plain char literal.
                            code.push_str("' '");
                            i += 3;
                            continue;
                        }
                        // A lifetime — plain code.
                        code.push('\'');
                        i += 1;
                        continue;
                    }
                    code.push(c);
                    i += 1;
                }
                State::BlockComment(depth) => {
                    if c == '*' && chars.get(i + 1) == Some(&'/') {
                        comment.push_str("*/");
                        code.push_str("  ");
                        state = if depth == 1 {
                            State::Code
                        } else {
                            State::BlockComment(depth - 1)
                        };
                        i += 2;
                    } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                        comment.push_str("/*");
                        code.push_str("  ");
                        state = State::BlockComment(depth + 1);
                        i += 2;
                    } else {
                        comment.push(c);
                        code.push(' ');
                        i += 1;
                    }
                }
                State::Str => {
                    if c == '\\' {
                        code.push_str("  ");
                        i += 2; // skip the escaped char, whatever it is
                    } else if c == '"' {
                        code.push('"');
                        state = State::Code;
                        i += 1;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
                State::RawStr(fences) => {
                    if c == '"' && closes_raw(&chars, i, fences) {
                        code.push('"');
                        code.extend(std::iter::repeat_n(' ', fences as usize));
                        state = State::Code;
                        i += 1 + fences as usize;
                    } else {
                        code.push(' ');
                        i += 1;
                    }
                }
            }
        }
        // A normal string can't span lines without a trailing `\`; treat an
        // unterminated one as continuing (the blanking stays conservative).
        out.push(Line {
            number: idx + 1,
            code,
            comment,
        });
    }
    out
}

/// If the `"` at `chars[at]` opens a raw string (`r"`, `br##"` …), the number
/// of `#` fences; `None` for a normal string.
fn raw_fences(chars: &[char], at: usize) -> Option<u32> {
    let mut j = at;
    let mut fences = 0u32;
    while j > 0 && chars[j - 1] == '#' {
        fences += 1;
        j -= 1;
    }
    if j == 0 {
        return None;
    }
    let intro = j - 1;
    let is_r = chars[intro] == 'r';
    let is_br = is_r && intro > 0 && chars[intro - 1] == 'b';
    if !is_r {
        return None;
    }
    // `r` must start the `r"…"` token, not end an identifier like `var"…`.
    let before = if is_br {
        intro.checked_sub(2)
    } else {
        intro.checked_sub(1)
    };
    match before {
        Some(b) if chars[b].is_alphanumeric() || chars[b] == '_' => None,
        _ => Some(fences),
    }
}

/// Does the `"` at `chars[at]` close a raw string with `fences` `#`s?
fn closes_raw(chars: &[char], at: usize, fences: u32) -> bool {
    (1..=fences as usize).all(|k| chars.get(at + k) == Some(&'#'))
}

/// Mark every line that lives inside test-only code: a `#[cfg(test)]` /
/// `#[cfg(all(test…))]` / `#[test]` attribute and the braced item it gates.
///
/// The tracker is a light parser, not a full one: it watches brace depth in
/// the lexed code, arms on a test attribute, latches the depth where the
/// gated item's block opens and stays "in test" until that block closes. A
/// brace-less gated item (e.g. `#[cfg(test)] use …;`) disarms at its `;`.
pub fn test_mask(lines: &[Line]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut depth: i32 = 0;
    // Depth above which everything is test code (latched block start).
    let mut test_floor: Option<i32> = None;
    let mut armed = false;
    for (idx, line) in lines.iter().enumerate() {
        let code = &line.code;
        if test_floor.is_none()
            && (code.contains("#[cfg(test)]")
                || code.contains("#[cfg(all(test")
                || code.contains("#[test]"))
        {
            armed = true;
        }
        if armed || test_floor.is_some() {
            mask[idx] = true;
        }
        for c in code.chars() {
            match c {
                '{' => {
                    if armed {
                        test_floor = Some(depth);
                        armed = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_floor.is_some_and(|floor| depth <= floor) {
                        test_floor = None;
                    }
                }
                ';'
                    // `#[cfg(test)] use foo;` — gated item without a block.
                    if armed && test_floor.is_none() => {
                        armed = false;
                    }
                _ => {}
            }
        }
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_blanked_out_of_code() {
        let lines = lex("let x = \"panic!()\"; // ordering: fine\nlet y = 1;");
        assert!(!lines[0].code.contains("panic"));
        assert!(lines[0].comment.contains("ordering:"));
        assert!(lines[0].code.contains("let x ="));
        assert_eq!(lines[1].code, "let y = 1;");
    }

    #[test]
    fn raw_strings_and_chars_are_blanked() {
        let lines = lex("let p = r#\"Instant::now\"#; let c = '\"'; let l: &'a str = s;");
        assert!(!lines[0].code.contains("Instant"));
        assert!(lines[0].code.contains("let c ="));
        assert!(lines[0].code.contains("&'a str"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let lines = lex("a /* one /* two */ still */ b\n/* open\nunwrap() */ c");
        assert!(lines[0].code.contains('a') && lines[0].code.contains('b'));
        assert!(!lines[0].code.contains("still"));
        assert!(!lines[2].code.contains("unwrap"));
        assert!(lines[2].code.contains('c'));
    }

    #[test]
    fn test_mask_latches_over_cfg_test_modules() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn prod2() {}";
        let lines = lex(src);
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn braceless_gated_item_disarms_at_semicolon() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn prod() {}";
        let mask = test_mask(&lex(src));
        assert_eq!(mask, vec![true, true, false]);
    }
}
