//! # cqads-lint — the workspace invariant linter
//!
//! A small, dependency-free static checker for the invariants this workspace
//! cares about but `rustc`/`clippy` cannot express: atomic-ordering
//! justifications, panic-free serving hot paths, injectable time, explicit
//! answer quality and documented atomic protocol surfaces. See [`Rule`] for
//! the rule catalogue and `crates/lint/fixtures/` for golden files each rule
//! must flag (the linter is self-tested against them).
//!
//! Entry points: [`lint_workspace`] walks the repo and applies each rule in
//! its path scope ([`rules_for_path`]); [`lint_fixture`] applies **every**
//! rule to one file (fixtures stand in for hot-path code wherever they
//! live); `cargo xtask lint` is the CLI over both.
//!
//! The checker is a hand-rolled lexer plus line rules — not a parser. It is
//! deliberately conservative: patterns inside strings/comments never match
//! ([`lexer`]), test code is exempted by a brace-tracking `#[cfg(test)]`
//! mask, and any false positive can be silenced *with a written reason* via
//! `// lint: allow(rule) — reason`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

pub use rules::{Rule, Violation};

use lexer::{lex, test_mask};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Which rules apply to a file, as decided by [`rules_for_path`].
#[derive(Debug, Clone, Default)]
pub struct RuleSet {
    rules: Vec<Rule>,
}

impl RuleSet {
    /// Every rule — the fixture scope.
    pub fn all() -> Self {
        RuleSet {
            rules: Rule::ALL.to_vec(),
        }
    }

    /// No rules (file out of scope).
    pub fn empty() -> Self {
        RuleSet::default()
    }

    fn with(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Does this set contain `rule`?
    pub fn contains(&self, rule: Rule) -> bool {
        self.rules.contains(&rule)
    }

    /// Is this set empty?
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// The rules that apply to a workspace-relative path.
///
/// * Everything under `crates/*/src` and the root `src/` is production code:
///   ordering justifications, wall-clock bans, answer-quality and
///   atomic-field docs apply.
/// * `no-panic` additionally applies on the serving hot paths —
///   `crates/core`, `crates/storage` and `crates/addb` sources.
/// * `hot-path-lock` additionally applies to the hot *read* path — the
///   `crates/core` files that serve `answer*` calls ([`HOT_READ_PATH`]):
///   reads there go through the published snapshot, so every residual lock
///   acquisition must justify its O(1) critical section with `// lock:`.
/// * `cross-shard-state` additionally applies to the sharding and handle
///   layers ([`CROSS_SHARD_SCOPE`]): cross-shard coordination goes through
///   a `SharedThreshold` or snapshot publication, so any `static` item or
///   `Mutex`/`RwLock` construction there must argue itself with `// shard:`.
/// * Test trees (`tests/`), examples, benches (`crates/bench`), generated
///   `target/`, vendored code and the lint fixtures are out of scope; the
///   `#[cfg(test)]` mask exempts inline test modules inside scoped files.
pub fn rules_for_path(rel: &Path) -> RuleSet {
    let p = rel.to_string_lossy().replace('\\', "/");
    let out_of_scope = [
        "vendor/",
        "target/",
        "crates/bench/",
        "crates/lint/fixtures/",
    ];
    if out_of_scope.iter().any(|d| p.starts_with(d)) || !p.ends_with(".rs") {
        return RuleSet::empty();
    }
    let in_crate_src = (p.starts_with("crates/") && p.contains("/src/")) || p.starts_with("src/");
    if !in_crate_src {
        return RuleSet::empty();
    }
    let mut set = RuleSet::empty()
        .with(Rule::OrderingJustification)
        .with(Rule::WallClock)
        .with(Rule::AnswersetQuality)
        .with(Rule::PubAtomicField);
    let hot_path = [
        "crates/core/src/",
        "crates/storage/src/",
        "crates/addb/src/",
    ];
    if hot_path.iter().any(|d| p.starts_with(d)) {
        set = set.with(Rule::NoPanic);
    }
    if HOT_READ_PATH.contains(&p.as_str()) {
        set = set.with(Rule::HotPathLock);
    }
    if CROSS_SHARD_SCOPE.contains(&p.as_str()) {
        set = set.with(Rule::CrossShardState);
    }
    set
}

/// The files on the hot *read* path: everything an `answer`/`answer_batch`
/// call touches between loading the published snapshot and returning. The
/// `hot-path-lock` rule holds these to the wait-free-reads invariant
/// (ARCHITECTURE.md #8) — any lock acquired here must argue its O(1) bound.
pub const HOT_READ_PATH: [&str; 7] = [
    "crates/core/src/cache.rs",
    "crates/core/src/handle.rs",
    "crates/core/src/partial.rs",
    "crates/core/src/pipeline.rs",
    "crates/core/src/ranking.rs",
    "crates/core/src/resilience.rs",
    "crates/core/src/shard.rs",
];

/// The files where cross-shard mutable state can appear: the sharding layer
/// itself and the handle layer its scatter path is built on. The
/// `cross-shard-state` rule holds these to the sharded-serving invariant
/// (ARCHITECTURE.md #9) — coordination between shards goes through a
/// `SharedThreshold` or snapshot publication, and any ad-hoc `static` or
/// `Mutex`/`RwLock` construction must argue itself with `// shard:`.
pub const CROSS_SHARD_SCOPE: [&str; 2] = ["crates/core/src/handle.rs", "crates/core/src/shard.rs"];

/// Lint one file's source under a rule scope. `path` is only used for
/// reporting.
pub fn lint_source(path: &str, source: &str, scope: &RuleSet) -> Vec<Violation> {
    if scope.is_empty() {
        return Vec::new();
    }
    let lines = lex(source);
    let tests = test_mask(&lines);
    let mut out = Vec::new();
    for idx in 0..lines.len() {
        if tests[idx] || !lines[idx].has_code() {
            continue;
        }
        let suppressed = rules::suppressed_at(&lines, idx);
        let mut push = |rule: Rule, message: Option<String>| {
            if let Some(message) = message {
                if scope.contains(rule) && !suppressed.contains(&rule) {
                    out.push(Violation {
                        path: path.to_string(),
                        line: lines[idx].number,
                        rule,
                        message,
                    });
                }
            }
        };
        push(
            Rule::OrderingJustification,
            rules::check_ordering(&lines, idx),
        );
        push(Rule::NoPanic, rules::check_no_panic(&lines, idx));
        push(Rule::WallClock, rules::check_wall_clock(&lines, idx));
        push(
            Rule::AnswersetQuality,
            rules::check_answerset_quality(&lines, idx),
        );
        push(
            Rule::PubAtomicField,
            rules::check_pub_atomic_field(&lines, idx),
        );
        push(Rule::HotPathLock, rules::check_hot_path_lock(&lines, idx));
        push(
            Rule::CrossShardState,
            rules::check_cross_shard_state(&lines, idx),
        );
    }
    out
}

/// Lint a fixture (or any explicit file) with **every** rule; the
/// `#[cfg(test)]` mask still applies, path scoping does not.
pub fn lint_fixture(path: &str, source: &str) -> Vec<Violation> {
    lint_source(path, source, &RuleSet::all())
}

/// Walk the workspace rooted at `root` and lint every in-scope file.
/// Violations come back sorted by path then line.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Violation>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut out = Vec::new();
    for rel in files {
        let scope = rules_for_path(&rel);
        if scope.is_empty() {
            continue;
        }
        let source = std::fs::read_to_string(root.join(&rel))?;
        out.extend(lint_source(&rel.to_string_lossy(), &source, &scope));
    }
    Ok(out)
}

/// Directories never worth descending into.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", "fixtures", "node_modules"];

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel.to_path_buf());
            }
        }
    }
    Ok(())
}

/// An expectation parsed from a fixture `//~ ERROR rule-name` marker
/// (`//~^` points at the line above, one `^` per line).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Expected {
    /// 1-based line the violation must be reported on.
    pub line: usize,
    /// The rule that must fire there.
    pub rule: Rule,
}

/// Parse a fixture's `//~ ERROR` markers into expectations.
///
/// # Panics
///
/// On a malformed marker (unknown rule name, missing `ERROR`) — fixtures are
/// part of the linter's own test suite, so a bad marker is a bug here.
pub fn expected_fixture_errors(source: &str) -> Vec<Expected> {
    let mut out = Vec::new();
    for (idx, line) in source.lines().enumerate() {
        let Some(pos) = line.find("//~") else {
            continue;
        };
        let marker = &line[pos + 3..];
        let carets = marker.chars().take_while(|&c| c == '^').count();
        let rest = marker[carets..].trim_start();
        let rest = rest
            .strip_prefix("ERROR")
            .unwrap_or_else(|| panic!("malformed fixture marker on line {}: {line}", idx + 1));
        let name = rest.split_whitespace().next().unwrap_or_default();
        let rule = Rule::from_name(name)
            .unwrap_or_else(|| panic!("unknown rule `{name}` in fixture marker: {line}"));
        out.push(Expected {
            line: idx + 1 - carets,
            rule,
        });
    }
    out
}

/// Compare a fixture's actual violations against its markers; `Err` holds a
/// human-readable diff. Both sides are treated as sets of `(line, rule)`.
pub fn verify_fixture(path: &str, source: &str) -> Result<usize, String> {
    let expected: BTreeSet<Expected> = expected_fixture_errors(source).into_iter().collect();
    let actual: BTreeSet<Expected> = lint_fixture(path, source)
        .iter()
        .map(|v| Expected {
            line: v.line,
            rule: v.rule,
        })
        .collect();
    if expected == actual {
        return Ok(actual.len());
    }
    let mut diff = String::new();
    for miss in expected.difference(&actual) {
        diff.push_str(&format!(
            "{path}:{}: expected [{}] but the linter stayed quiet\n",
            miss.line, miss.rule
        ));
    }
    for extra in actual.difference(&expected) {
        diff.push_str(&format!(
            "{path}:{}: unexpected [{}] (no //~ marker)\n",
            extra.line, extra.rule
        ));
    }
    Err(diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scoping_matches_the_tree_layout() {
        assert!(rules_for_path(Path::new("crates/core/src/cache.rs")).contains(Rule::NoPanic));
        assert!(rules_for_path(Path::new("crates/core/src/cache.rs")).contains(Rule::HotPathLock));
        assert!(rules_for_path(Path::new("crates/core/src/handle.rs")).contains(Rule::HotPathLock));
        assert!(rules_for_path(Path::new("crates/core/src/shard.rs")).contains(Rule::HotPathLock));
        assert!(
            rules_for_path(Path::new("crates/core/src/shard.rs")).contains(Rule::CrossShardState)
        );
        assert!(
            rules_for_path(Path::new("crates/core/src/handle.rs")).contains(Rule::CrossShardState)
        );
        assert!(
            !rules_for_path(Path::new("crates/core/src/cache.rs")).contains(Rule::CrossShardState),
            "the serving cache is per-system state, not cross-shard coordination"
        );
        assert!(
            !rules_for_path(Path::new("crates/core/src/storage.rs")).contains(Rule::HotPathLock),
            "the write/recovery path may lock freely"
        );
        assert!(
            !rules_for_path(Path::new("crates/eval/src/main.rs")).contains(Rule::NoPanic),
            "eval is not a hot path"
        );
        assert!(rules_for_path(Path::new("crates/eval/src/main.rs")).contains(Rule::WallClock));
        assert!(rules_for_path(Path::new("tests/serving_cache.rs")).is_empty());
        assert!(rules_for_path(Path::new("vendor/miniloom/src/lib.rs")).is_empty());
        assert!(rules_for_path(Path::new("crates/bench/src/lib.rs")).is_empty());
        assert!(rules_for_path(Path::new("crates/lint/fixtures/no_panic.rs")).is_empty());
    }

    #[test]
    fn lint_source_respects_suppressions_and_test_mask() {
        let src = "\
fn hot() {
    let v = x.lock().unwrap();
}
#[cfg(test)]
mod tests {
    fn t() { x.unwrap(); }
}
";
        let scope = rules_for_path(Path::new("crates/core/src/foo.rs"));
        let violations = lint_source("foo.rs", src, &scope);
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].line, 2);
        let suppressed = src.replace(
            "x.lock().unwrap();",
            "x.lock().unwrap(); // lint: allow(no-panic) — lock poisoning is fatal by design",
        );
        assert!(lint_source("foo.rs", &suppressed, &scope).is_empty());
    }

    #[test]
    fn fixture_markers_round_trip() {
        let src = "\
fn f() {
    a.unwrap(); //~ ERROR no-panic
    b.load(Ordering::Relaxed);
    //~^ ERROR ordering-justification
}
";
        let expected = expected_fixture_errors(src);
        assert_eq!(expected.len(), 2);
        assert_eq!(expected[0].line, 2);
        assert_eq!(expected[1].line, 3);
        verify_fixture("fixture.rs", src).expect("fixture should verify");
    }
}
