//! The named rules and their per-line checks.
//!
//! Every rule is individually suppressible at a site with
//!
//! ```text
//! // lint: allow(rule-name) — why this site is exempt
//! ```
//!
//! on the offending line or the line above. The reason text after the
//! closing parenthesis is **required**: a bare `allow(...)` does not
//! suppress anything, so every exemption in the tree documents itself.

use crate::lexer::Line;
use std::fmt;

/// A workspace invariant the linter enforces. See each variant's doc for the
/// exact predicate; [`Rule::name`] is the string used in suppressions,
/// fixture markers and reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// `ordering-justification` — every `Ordering::Relaxed` / `Acquire` /
    /// `Release` / `AcqRel` use needs an adjacent `// ordering:` comment
    /// (same line or within the 4 lines above) arguing why that strength is
    /// sufficient. `SeqCst` needs no argument: it is the conservative default.
    OrderingJustification,
    /// `no-panic` — no `.unwrap()` / `.expect(…)` / `panic!` in non-test
    /// code of the serving hot paths (`crates/core`, `crates/storage`,
    /// `crates/addb`). Errors there must flow through `Result`.
    NoPanic,
    /// `wall-clock` — no `Instant::now` / `SystemTime::now` /
    /// `thread::sleep` outside the injectable-clock implementations: time a
    /// test cannot control is time a test cannot cover.
    WallClock,
    /// `answerset-quality` — every `AnswerSet { … }` literal must set its
    /// `quality` field (or build on another set with `..`): an answer whose
    /// quality is defaulted silently masquerades as complete.
    AnswersetQuality,
    /// `pub-atomic-field` — a `pub` atomic struct field is a concurrency
    /// protocol surface; it must carry a doc comment stating its protocol.
    PubAtomicField,
    /// `hot-path-lock` — no `.lock()` acquisition or `RwLock` use in the hot
    /// *read* path (the files serving `answer*` calls) without an adjacent
    /// `// lock:` comment (same line or within the 4 lines above) justifying
    /// the critical section's O(1) bound. Reads are supposed to go through
    /// the published snapshot (`ArcSwap`), never block on a writer's work —
    /// an unjustified lock here is how that invariant erodes.
    HotPathLock,
    /// `cross-shard-state` — in the sharding and handle layers, mutable
    /// state visible to more than one shard must go through the two blessed
    /// channels: a `SharedThreshold` or snapshot publication. A `static`
    /// item declaration or a `Mutex::new(…)` / `RwLock::new(…)` construction
    /// there needs an adjacent `// shard:` comment (same line or within the
    /// 4 lines above) arguing why ad-hoc shared state does not break the
    /// byte-identity merge or the per-snapshot consistency bracket.
    CrossShardState,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 7] = [
        Rule::OrderingJustification,
        Rule::NoPanic,
        Rule::WallClock,
        Rule::AnswersetQuality,
        Rule::PubAtomicField,
        Rule::HotPathLock,
        Rule::CrossShardState,
    ];

    /// The rule's kebab-case name, as used in `lint: allow(...)` and
    /// `//~ ERROR ...` markers.
    pub fn name(self) -> &'static str {
        match self {
            Rule::OrderingJustification => "ordering-justification",
            Rule::NoPanic => "no-panic",
            Rule::WallClock => "wall-clock",
            Rule::AnswersetQuality => "answerset-quality",
            Rule::PubAtomicField => "pub-atomic-field",
            Rule::HotPathLock => "hot-path-lock",
            Rule::CrossShardState => "cross-shard-state",
        }
    }

    /// Parse a rule name (exact match).
    pub fn from_name(name: &str) -> Option<Rule> {
        Rule::ALL.into_iter().find(|r| r.name() == name)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One rule violation at one source line.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// The violated rule.
    pub rule: Rule,
    /// Human-readable description of the specific site.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Is `pattern` present in `code` starting at a non-identifier boundary?
/// (Plain `contains` would let `dont_panic!` match `panic!`.)
fn matches_word(code: &str, pattern: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find(pattern) {
        let at = from + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if boundary {
            return true;
        }
        from = at + pattern.len();
    }
    false
}

/// How many lines above a site an `// ordering:` justification may sit.
const ORDERING_LOOKBACK: usize = 4;

/// Check `ordering-justification` at line `idx`.
pub fn check_ordering(lines: &[Line], idx: usize) -> Option<String> {
    const NEEDS_ARGUMENT: [&str; 4] = [
        "Ordering::Relaxed",
        "Ordering::Acquire",
        "Ordering::Release",
        "Ordering::AcqRel",
    ];
    let used: Vec<&str> = NEEDS_ARGUMENT
        .iter()
        .filter(|p| lines[idx].code.contains(*p))
        .copied()
        .collect();
    if used.is_empty() {
        return None;
    }
    let justified = (idx.saturating_sub(ORDERING_LOOKBACK)..=idx)
        .any(|j| lines[j].comment.contains("ordering:"));
    if justified {
        return None;
    }
    Some(format!(
        "{} without an adjacent `// ordering:` justification",
        used.join(" and ")
    ))
}

/// Check `no-panic` at line `idx`.
pub fn check_no_panic(lines: &[Line], idx: usize) -> Option<String> {
    let code = &lines[idx].code;
    let hit = if code.contains(".unwrap()") {
        ".unwrap()"
    } else if code.contains(".expect(") {
        ".expect(…)"
    } else if matches_word(code, "panic!") {
        "panic!"
    } else {
        return None;
    };
    Some(format!(
        "{hit} on a serving hot path — return a Result instead"
    ))
}

/// Check `wall-clock` at line `idx`.
pub fn check_wall_clock(lines: &[Line], idx: usize) -> Option<String> {
    const SOURCES: [&str; 3] = ["Instant::now", "SystemTime::now", "thread::sleep"];
    let code = &lines[idx].code;
    SOURCES
        .iter()
        .find(|p| matches_word(code, p))
        .map(|hit| format!("{hit} outside an injectable-clock module"))
}

/// How many lines above a lock acquisition a `// lock:` justification may sit.
const LOCK_LOOKBACK: usize = 4;

/// Check `hot-path-lock` at line `idx`: a `.lock()` call or `RwLock` use
/// without an adjacent `// lock:` comment bounding the critical section.
pub fn check_hot_path_lock(lines: &[Line], idx: usize) -> Option<String> {
    let code = &lines[idx].code;
    let hit = if code.contains(".lock()") {
        ".lock()"
    } else if matches_word(code, "RwLock") {
        "RwLock"
    } else {
        return None;
    };
    let justified =
        (idx.saturating_sub(LOCK_LOOKBACK)..=idx).any(|j| lines[j].comment.contains("lock:"));
    if justified {
        return None;
    }
    Some(format!(
        "{hit} on the hot read path without an adjacent `// lock:` justification — \
         serve reads from the published snapshot, or argue the critical section is O(1)"
    ))
}

/// How many lines above a site a `// shard:` justification may sit.
const SHARD_LOOKBACK: usize = 4;

/// Does `code` declare a `static` item? The word must not be the `'static`
/// lifetime (the generic word-boundary check treats `'` as a boundary, so it
/// is excluded explicitly) and must be followed by whitespace, as in a
/// declaration — `static NAME: Type`.
fn declares_static_item(code: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = code[from..].find("static") {
        let at = from + pos;
        let before_ok = !code[..at]
            .chars()
            .next_back()
            .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '\'');
        let after = &code[at + "static".len()..];
        let after_ok = after.chars().next().is_some_and(char::is_whitespace);
        if before_ok && after_ok {
            return true;
        }
        from = at + "static".len();
    }
    false
}

/// Check `cross-shard-state` at line `idx`: a `static` item declaration or a
/// `Mutex`/`RwLock` construction without an adjacent `// shard:` comment.
pub fn check_cross_shard_state(lines: &[Line], idx: usize) -> Option<String> {
    let code = &lines[idx].code;
    let hit = if declares_static_item(code) {
        "`static` item"
    } else if matches_word(code, "Mutex::new(") {
        "Mutex::new(…)"
    } else if matches_word(code, "RwLock::new(") {
        "RwLock::new(…)"
    } else {
        return None;
    };
    let justified =
        (idx.saturating_sub(SHARD_LOOKBACK)..=idx).any(|j| lines[j].comment.contains("shard:"));
    if justified {
        return None;
    }
    Some(format!(
        "{hit} creates ad-hoc cross-shard state — route coordination through a \
         SharedThreshold or snapshot publication, or argue the site with `// shard:`"
    ))
}

/// Check `pub-atomic-field` at line `idx`: a `pub … : …Atomic…` field whose
/// preceding line carries no doc comment.
pub fn check_pub_atomic_field(lines: &[Line], idx: usize) -> Option<String> {
    let code = lines[idx].code.trim_start();
    let is_pub = code.starts_with("pub ") || code.starts_with("pub(");
    if !is_pub || code.contains("fn ") {
        return None;
    }
    // A field line: `pub name: Type,` — the type must be atomic.
    let colon = code.find(':')?;
    // Skip `pub(crate)`-style visibility paths (`::` inside the parens).
    let after_vis = code.find(')').map_or(0, |p| p + 1);
    if colon < after_vis {
        return None;
    }
    let ty = &code[colon + 1..];
    if !ty.contains("Atomic") {
        return None;
    }
    if lines[idx].has_doc_comment()
        || (idx > 0 && lines[idx - 1].has_doc_comment())
        || code.contains("#[doc")
    {
        return None;
    }
    Some("pub atomic field without a doc comment stating its protocol".to_string())
}

/// Check `answerset-quality` for a literal *opening* at line `idx`: scans
/// forward to the matching close brace and requires a `quality` field or a
/// `..` functional-update base inside.
pub fn check_answerset_quality(lines: &[Line], idx: usize) -> Option<String> {
    let code = &lines[idx].code;
    let at = find_answerset_literal(code)?;
    // The span starts at the literal's `{`.
    let open = code[at..].find('{').map(|p| at + p)?;
    let mut depth = 0i32;
    // Text of the literal at brace depth 1 only: fields of *this* literal,
    // not of anything nested inside a field value.
    let mut top = String::new();
    let mut col = open;
    for (j, line) in lines.iter().enumerate().skip(idx) {
        let body = if j == idx {
            &line.code[col..]
        } else {
            &line.code
        };
        for c in body.chars() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        return (!has_quality_field(&top))
                            .then(|| missing_quality_message().to_string());
                    }
                }
                _ if depth == 1 => top.push(c),
                _ => {}
            }
        }
        top.push('\n');
        col = 0;
    }
    // Unterminated literal (end of file) — flag it conservatively.
    (!has_quality_field(&top)).then(|| missing_quality_message().to_string())
}

fn has_quality_field(top: &str) -> bool {
    matches_word(top, "quality") || top.contains("..")
}

fn missing_quality_message() -> &'static str {
    "AnswerSet literal without an explicit `quality` field"
}

/// Position of an `AnswerSet {` literal in `code`, if one opens here.
/// Definitions (`struct AnswerSet`), paths (`AnswerSet::`) and mere type
/// mentions don't count.
fn find_answerset_literal(code: &str) -> Option<usize> {
    if code.contains("struct AnswerSet") || code.contains("impl AnswerSet") {
        return None;
    }
    let mut from = 0;
    while let Some(pos) = code[from..].find("AnswerSet") {
        let at = from + pos;
        let boundary = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_' || c == ':');
        let rest = &code[at + "AnswerSet".len()..];
        // `fn f(...) -> AnswerSet {` is a signature whose body happens to
        // open here, not a literal.
        let is_return_type = code[..at].trim_end().ends_with("->");
        if boundary && !is_return_type && rest.trim_start().starts_with('{') {
            return Some(at);
        }
        from = at + "AnswerSet".len();
    }
    None
}

/// Rules suppressed at line `idx` by `// lint: allow(rule) — reason`
/// comments on this line or the line above. Reason-less allows suppress
/// nothing.
pub fn suppressed_at(lines: &[Line], idx: usize) -> Vec<Rule> {
    let mut rules = Vec::new();
    for line in &lines[idx.saturating_sub(1)..=idx] {
        collect_allows(&line.comment, &mut rules);
    }
    rules
}

fn collect_allows(comment: &str, rules: &mut Vec<Rule>) {
    let mut rest = comment;
    while let Some(pos) = rest.find("lint: allow(") {
        rest = &rest[pos + "lint: allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        let name = rest[..close].trim();
        let reason = rest[close + 1..]
            .trim_start_matches([' ', '—', '-', '–', ':'])
            .trim();
        if reason.len() >= 3 {
            if let Some(rule) = Rule::from_name(name) {
                rules.push(rule);
            }
        }
        rest = &rest[close + 1..];
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    #[test]
    fn ordering_requires_adjacent_justification() {
        let lines = lex("x.load(Ordering::Relaxed);");
        assert!(check_ordering(&lines, 0).is_some());
        let lines = lex("// ordering: counter, no sync needed\nx.load(Ordering::Relaxed);");
        assert!(check_ordering(&lines, 1).is_none());
        let lines = lex("x.load(Ordering::SeqCst);");
        assert!(check_ordering(&lines, 0).is_none());
    }

    #[test]
    fn no_panic_catches_the_three_forms_only() {
        for bad in ["a.unwrap();", "a.expect(\"m\");", "panic!(\"boom\")"] {
            assert!(check_no_panic(&lex(bad), 0).is_some(), "{bad}");
        }
        for ok in [
            "a.unwrap_or(0);",
            "should_panic!();",
            "a.expect_err(\"m\");",
        ] {
            assert!(check_no_panic(&lex(ok), 0).is_none(), "{ok}");
        }
    }

    #[test]
    fn suppression_requires_a_reason() {
        let lines = lex("a.unwrap(); // lint: allow(no-panic) — startup, config is static");
        assert_eq!(suppressed_at(&lines, 0), vec![Rule::NoPanic]);
        let lines = lex("a.unwrap(); // lint: allow(no-panic)");
        assert!(suppressed_at(&lines, 0).is_empty());
    }

    #[test]
    fn answerset_literal_needs_quality() {
        let src = "let s = AnswerSet {\n    domain,\n    answers,\n};";
        assert!(check_answerset_quality(&lex(src), 0).is_some());
        let src = "let s = AnswerSet {\n    quality: AnswerQuality::Complete,\n};";
        assert!(check_answerset_quality(&lex(src), 0).is_none());
        let src = "let s = AnswerSet { answers, ..base };";
        assert!(check_answerset_quality(&lex(src), 0).is_none());
        assert!(check_answerset_quality(&lex("pub struct AnswerSet {"), 0).is_none());
    }

    #[test]
    fn hot_path_lock_requires_adjacent_justification() {
        let lines = lex("let shard = self.shard(key).lock();");
        assert!(check_hot_path_lock(&lines, 0).is_some());
        let lines = lex("let map = RwLock::new(BTreeMap::new());");
        assert!(check_hot_path_lock(&lines, 0).is_some());
        // Same-line and lookback justifications both clear it.
        let lines = lex("let shard = self.shard(key).lock(); // lock: O(1) Arc clone");
        assert!(check_hot_path_lock(&lines, 0).is_none());
        let lines = lex("// lock: sharded stripe, O(1) critical section\nlet s = m.lock();");
        assert!(check_hot_path_lock(&lines, 1).is_none());
        // Identifier suffixes don't match the RwLock word.
        let lines = lex("let x = NotAnRwLock::new();");
        assert!(check_hot_path_lock(&lines, 0).is_none());
        // try_lock / lock_api idioms aren't the bare `.lock()` pattern.
        let lines = lex("let s = m.try_lock();");
        assert!(check_hot_path_lock(&lines, 0).is_none());
    }

    #[test]
    fn cross_shard_state_requires_adjacent_justification() {
        for bad in [
            "static ROUTES: AtomicU64 = AtomicU64::new(0);",
            "let registry = Mutex::new(Vec::new());",
            "let stripes = std::sync::RwLock::new(0u64);",
        ] {
            assert!(check_cross_shard_state(&lex(bad), 0).is_some(), "{bad}");
        }
        // `'static` lifetimes and mere type mentions are not shared state.
        for ok in [
            "fn label() -> &'static str { \"shard\" }",
            "fn take(m: &Mutex<u64>) {}",
            "let guard = m.lock();",
        ] {
            assert!(check_cross_shard_state(&lex(ok), 0).is_none(), "{ok}");
        }
        // Same-line and lookback `// shard:` justifications both clear it.
        let lines = lex("let t = Mutex::new(Bound::start()); // shard: one WAND threshold");
        assert!(check_cross_shard_state(&lines, 0).is_none());
        let lines =
            lex("// shard: stripes are per-shard, never cross-shard\nlet s = RwLock::new(0);");
        assert!(check_cross_shard_state(&lines, 1).is_none());
    }

    #[test]
    fn pub_atomic_field_needs_docs() {
        let src = "pub hits: AtomicU64,";
        assert!(check_pub_atomic_field(&lex(src), 0).is_some());
        let src = "/// Monotone hit counter; written with Relaxed.\npub hits: AtomicU64,";
        assert!(check_pub_atomic_field(&lex(src), 1).is_none());
        assert!(check_pub_atomic_field(&lex("hits: AtomicU64,"), 0).is_none());
        assert!(check_pub_atomic_field(&lex("pub fn hits() -> &AtomicU64 {"), 0).is_none());
    }
}
