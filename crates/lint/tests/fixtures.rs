//! The linter's self-test: every golden fixture under `crates/lint/fixtures`
//! must produce **exactly** the violations its `//~ ERROR` markers claim —
//! no silent rules, no extra noise.

use cqads_lint::Rule;
use std::path::{Path, PathBuf};

fn fixtures() -> Vec<(String, String)> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures");
    let mut out = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("fixtures dir must exist") {
        let path: PathBuf = entry.expect("dir entry").path();
        if path.extension().is_some_and(|e| e == "rs") {
            let name = path
                .file_name()
                .expect("fixture file name")
                .to_string_lossy()
                .into_owned();
            let source = std::fs::read_to_string(&path).expect("read fixture");
            out.push((name, source));
        }
    }
    out.sort();
    assert!(out.len() >= 6, "fixture set shrank: {} files", out.len());
    out
}

#[test]
fn fixtures_match_their_markers_exactly() {
    let mut failures = String::new();
    for (name, source) in fixtures() {
        if let Err(diff) = cqads_lint::verify_fixture(&name, &source) {
            failures.push_str(&diff);
        }
    }
    assert!(failures.is_empty(), "\n{failures}");
}

#[test]
fn every_rule_is_exercised_by_some_fixture() {
    let mut covered: Vec<Rule> = fixtures()
        .iter()
        .flat_map(|(_, source)| cqads_lint::expected_fixture_errors(source))
        .map(|e| e.rule)
        .collect();
    covered.sort();
    covered.dedup();
    assert_eq!(
        covered,
        Rule::ALL.to_vec(),
        "each rule needs at least one golden violation"
    );
}

#[test]
fn a_plain_lint_run_over_fixtures_fails() {
    // The acceptance contract for `cargo xtask lint <fixture>`: a fixture
    // with markers must come back with violations (nonzero exit in the CLI).
    for (name, source) in fixtures() {
        let expected = cqads_lint::expected_fixture_errors(&source);
        let actual = cqads_lint::lint_fixture(&name, &source);
        assert_eq!(
            actual.is_empty(),
            expected.is_empty(),
            "{name}: plain lint found {} violations, markers say {}",
            actual.len(),
            expected.len()
        );
    }
}
