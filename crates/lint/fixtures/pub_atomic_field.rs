//! Golden fixture: `pub-atomic-field` — a public atomic field is a
//! concurrency protocol surface; it must carry a doc comment stating the
//! protocol. Not compiled; consumed by the linter self-test.

use std::sync::atomic::{AtomicBool, AtomicU64};

pub struct Stats {
    pub hits: AtomicU64, //~ ERROR pub-atomic-field
    /// Monotone miss counter; incremented with `fetch_add`, read for reports.
    pub misses: AtomicU64,
    /// Crate-visible trip flag; set once, never cleared.
    pub(crate) tripped: AtomicBool,
    pub(crate) raced: AtomicBool, //~ ERROR pub-atomic-field
    sealed: AtomicBool,
}

pub struct NotAtomic {
    pub name: String,
}

pub fn pub_fn_returning_atomics_is_fine(stats: &Stats) -> &AtomicU64 {
    &stats.misses
}
