//! Golden fixture: `answerset-quality` — an `AnswerSet` whose `quality` is
//! left to a default silently masquerades as complete, so every literal
//! must set it (or build on another set with `..`). Not compiled; consumed
//! by the linter self-test.

pub fn bad_literal(domain: String) -> AnswerSet {
    AnswerSet { //~ ERROR answerset-quality
        domain,
        answers: Vec::new(),
        elapsed: Duration::ZERO,
    }
}

pub fn good_explicit(domain: String) -> AnswerSet {
    AnswerSet {
        domain,
        answers: Vec::new(),
        quality: AnswerQuality::Complete,
        elapsed: Duration::ZERO,
    }
}

pub fn good_functional_update(base: AnswerSet) -> AnswerSet {
    AnswerSet {
        answers: Vec::new(),
        ..base
    }
}

pub struct AnswerSet {
    pub domain: String,
}

pub fn good_path_mention() -> usize {
    AnswerSet::default().domain.len()
}
