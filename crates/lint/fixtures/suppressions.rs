//! Golden fixture: suppression semantics — `// lint: allow(rule)` exempts a
//! site only when a written reason follows, and only for the named rule.
//! Not compiled; consumed by the linter self-test.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn suppressed_with_reason(v: Option<u32>) -> u32 {
    // lint: allow(no-panic) — configuration is validated once at startup
    v.unwrap()
}

pub fn suppressed_same_line(v: Option<u32>) -> u32 {
    v.unwrap() // lint: allow(no-panic) — length checked two lines up
}

pub fn reasonless_allow_does_not_suppress(v: Option<u32>) -> u32 {
    // lint: allow(no-panic)
    v.unwrap() //~ ERROR no-panic
}

pub fn wrong_rule_does_not_suppress(counter: &AtomicU64) -> u64 {
    // lint: allow(no-panic) — names a different rule than the violation
    counter.load(Ordering::Relaxed) //~ ERROR ordering-justification
}
