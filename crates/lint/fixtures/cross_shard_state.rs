//! Golden fixture for `cross-shard-state`: an adjacent `// shard:` comment
//! must argue every `static` item and every `Mutex`/`RwLock` construction
//! in the sharding and handle layers — such sites are ad-hoc state visible
//! to more than one partition, and coordination there is supposed to go
//! through a SharedThreshold or snapshot publication instead. Not
//! compiled; consumed by the linter self-test. (The justification token
//! is only named at the top of this header, clear of every marker's
//! lookback window below.)

static ROUTE_EPOCH: u64 = 0; //~ ERROR cross-shard-state

fn coordinate_ad_hoc() {
    let registry = std::sync::Mutex::new(Vec::new()); //~ ERROR cross-shard-state
    drop(registry);
}

fn lookback_window_is_four_lines() {
    // shard: too far away — five lines above the construction site
    let _a = 1;
    let _b = 2;
    let _c = 3;
    let _d = 4;
    let cursor = std::sync::Mutex::new(0u64); //~ ERROR cross-shard-state
    drop(cursor);
}

// The same construction also trips `hot-path-lock` (fixtures run every
// rule), hence the second marker.
fn wrap_shared_scatter_state() {
    let stripes = std::sync::RwLock::new(0u64);
    //~^ ERROR cross-shard-state
    //~^^ ERROR hot-path-lock
    drop(stripes);
}

fn justified_same_line() {
    let threshold = std::sync::Mutex::new(0u64); // shard: one WAND threshold, admissible everywhere
    drop(threshold);
}

fn justified_by_lookback() {
    // shard: per-call scratch shared with no one; dropped before gather
    let scratch = std::sync::Mutex::new(Vec::new());
    drop(scratch);
}

fn lifetimes_and_type_mentions_are_not_state(m: &std::sync::Mutex<u64>) -> &'static str {
    // lock: fixture counter-example — O(1) copy of a shard-local counter
    let _guard = m.lock();
    "a 'static lifetime is not a static item"
}

#[cfg(test)]
mod tests {
    // Test code may coordinate however it likes: the mask exempts it.
    static TEST_EPOCH: u64 = 7;

    fn t() -> u64 {
        TEST_EPOCH
    }
}
