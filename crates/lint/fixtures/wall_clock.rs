//! Golden fixture: `wall-clock` — time a test cannot control is time a test
//! cannot cover; production code reads an injectable clock. Not compiled;
//! consumed by the linter self-test.

use std::time::{Duration, Instant, SystemTime};

pub fn bad_instant() -> Instant {
    Instant::now() //~ ERROR wall-clock
}

pub fn bad_system_time() -> SystemTime {
    SystemTime::now() //~ ERROR wall-clock
}

pub fn bad_sleep() {
    std::thread::sleep(Duration::from_millis(1)); //~ ERROR wall-clock
}

pub fn good_clock_impl() -> u64 {
    // The one legitimate shape: an injectable-clock implementation, exempted
    // with a written reason.
    let start = Instant::now(); // lint: allow(wall-clock) — this IS the RealClock impl
    start.elapsed().as_micros() as u64
}

pub fn good_string_mention() -> &'static str {
    "Instant::now in a string is no violation"
}
