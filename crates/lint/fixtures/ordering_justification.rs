//! Golden fixture: `ordering-justification` — every `Relaxed` / `Acquire` /
//! `Release` use needs an adjacent `// ordering:` comment arguing why that
//! strength suffices. Not compiled; consumed by the linter self-test.

use std::sync::atomic::{AtomicU64, Ordering};

pub fn bad_load(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Relaxed) //~ ERROR ordering-justification
}

pub fn bad_store(counter: &AtomicU64) {
    counter.store(1, Ordering::Release);
    //~^ ERROR ordering-justification
}

pub fn bad_rmw(counter: &AtomicU64) -> u64 {
    counter.fetch_add(1, Ordering::AcqRel) //~ ERROR ordering-justification
}

pub fn good_block_comment_above(counter: &AtomicU64) -> u64 {
    // ordering: monotone statistics counter; nothing else is published
    // through it, so Relaxed is enough.
    counter.load(Ordering::Relaxed)
}

pub fn good_same_line(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::Acquire) // ordering: pairs with the Release in fill()
}

pub fn seqcst_needs_no_argument(counter: &AtomicU64) -> u64 {
    counter.load(Ordering::SeqCst)
}

pub fn strings_do_not_count(name: &str) -> bool {
    name == "Ordering::Relaxed"
}
