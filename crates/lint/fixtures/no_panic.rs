//! Golden fixture: `no-panic` — serving hot paths surface errors through
//! `Result`, never by unwinding. Not compiled; consumed by the linter
//! self-test.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() //~ ERROR no-panic
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always present") //~ ERROR no-panic
}

pub fn bad_panic(flag: bool) {
    if flag {
        panic!("invariant broken"); //~ ERROR no-panic
    }
}

pub fn good_fallback(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn good_expect_err(v: Result<(), u32>) -> u32 {
    v.expect_err("errors only here")
}

pub fn good_string_mention() -> &'static str {
    "calling panic!() or .unwrap() here would be bad"
}

// A commented-out .unwrap() is not a violation either.

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        Some(1).unwrap();
    }
}
