//! Golden fixture for `hot-path-lock`: on the hot read path, every `.lock()`
//! acquisition and every `RwLock` use must carry an adjacent `// lock:`
//! comment justifying the critical section's O(1) bound — reads are supposed
//! to come from the published snapshot, not from behind a lock.

fn serve_from_shard(shards: &[std::sync::Mutex<u64>]) -> u64 {
    let shard = shards[0].lock(); //~ ERROR hot-path-lock
    *shard
}

fn wrap_the_whole_registry() {
    let registry = std::sync::RwLock::new(0u64); //~ ERROR hot-path-lock
    //~^ ERROR cross-shard-state
    drop(registry);
}

fn lookback_window_is_four_lines(m: &std::sync::Mutex<u64>) -> u64 {
    // lock: too far away — five lines above the acquisition site
    let _a = 1;
    let _b = 2;
    let _c = 3;
    let _d = 4;
    let shard = m.lock(); //~ ERROR hot-path-lock
    *shard
}

fn justified_same_line(shards: &[std::sync::Mutex<u64>]) -> u64 {
    let shard = shards[0].lock(); // lock: sharded stripe, O(1) Arc clone inside
    *shard
}

fn justified_by_lookback(m: &std::sync::Mutex<u64>) -> u64 {
    // lock: writer-only cursor; readers never touch this mutex
    let guard = m.lock();
    *guard
}

fn other_lock_idioms_are_not_the_pattern(m: &std::sync::Mutex<u64>) {
    let _ = m.try_lock(); // fallible probe, not a blocking acquisition
    let _ = "a string mentioning .lock() never matches";
}

#[cfg(test)]
mod tests {
    // Test code may lock freely: the mask exempts it.
    fn t(m: &std::sync::Mutex<u64>) -> u64 {
        *m.lock()
    }
}
