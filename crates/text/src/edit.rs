//! Levenshtein edit distance.
//!
//! Used by the CQAds spelling corrector as a tie-breaker between alternative keywords
//! that receive the same `similar_text` percentage, and by tests as an independent
//! check that corrections are close to the user's input.

/// Classic dynamic-programming Levenshtein distance (insertions, deletions,
/// substitutions all cost 1). Runs in `O(|a| * |b|)` time and `O(min(|a|, |b|))` space.
pub fn levenshtein(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let (short, long) = if a.len() <= b.len() {
        (&a, &b)
    } else {
        (&b, &a)
    };
    if short.is_empty() {
        return long.len();
    }
    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr = vec![0usize; short.len() + 1];
    for (i, lc) in long.iter().enumerate() {
        curr[0] = i + 1;
        for (j, sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j + 1] + 1).min(curr[j] + 1).min(prev[j] + cost);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn textbook_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("", "abc"), 3);
        assert_eq!(levenshtein("abc", ""), 3);
        assert_eq!(levenshtein("same", "same"), 0);
    }

    #[test]
    fn ads_typo_examples() {
        assert_eq!(levenshtein("accorr", "accord"), 1);
        assert_eq!(levenshtein("hondaaccord", "honda accord"), 1);
        assert!(levenshtein("accorr", "camry") > levenshtein("accorr", "accord"));
    }

    proptest! {
        #[test]
        fn distance_is_a_metric(a in "[a-z]{0,10}", b in "[a-z]{0,10}", c in "[a-z]{0,10}") {
            let ab = levenshtein(&a, &b);
            let ba = levenshtein(&b, &a);
            prop_assert_eq!(ab, ba); // symmetry
            prop_assert_eq!(levenshtein(&a, &a), 0); // identity
            // triangle inequality
            prop_assert!(levenshtein(&a, &c) <= ab + levenshtein(&b, &c));
        }

        #[test]
        fn bounded_by_longer_length(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let d = levenshtein(&a, &b);
            prop_assert!(d <= a.len().max(b.len()));
            prop_assert!(d >= a.len().abs_diff(b.len()));
        }
    }
}
