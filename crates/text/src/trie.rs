//! Keyword trie (Sections 4.1.3, 4.1.4, 4.2.1).
//!
//! CQAds builds one trie per ads domain. Each node holds one character (its *value*);
//! the concatenation of the values along the path from the root is the node's *label*.
//! Nodes whose label is a recognized keyword carry an *identifier* — in this crate a
//! generic payload `T`, which the CQAds core instantiates with the tag from the
//! identifiers table (Table 1 of the paper).
//!
//! Three operations drive the question-processing pipeline:
//!
//! * [`Trie::lookup`] — exact keyword recognition (stand-alone keywords),
//! * [`Trie::longest_prefix`] — recognize a keyword that is a prefix of the remaining
//!   input, which is how missing spaces are repaired ("Hondaaccord" → "honda" +
//!   "accord", Section 4.2.1),
//! * [`Trie::alternatives_from`] — enumerate the keywords sharing the longest matched
//!   prefix with a misspelled word so that the spelling corrector can pick the one with
//!   the highest `similar_text` percentage.

use std::collections::BTreeMap;

/// A node in the trie. Children are keyed by character; a node may carry a payload if
/// its label is a recognized keyword.
#[derive(Debug, Clone)]
struct Node<T> {
    children: BTreeMap<char, Node<T>>,
    payload: Option<T>,
}

impl<T> Default for Node<T> {
    fn default() -> Self {
        Node {
            children: BTreeMap::new(),
            payload: None,
        }
    }
}

/// A keyword trie with payloads of type `T` on recognized keywords.
#[derive(Debug, Clone)]
pub struct Trie<T> {
    root: Node<T>,
    len: usize,
}

impl<T> Default for Trie<T> {
    fn default() -> Self {
        Trie {
            root: Node::default(),
            len: 0,
        }
    }
}

/// Result of a longest-prefix walk.
#[derive(Debug, Clone, PartialEq)]
pub struct TrieMatch<'a, T> {
    /// The keyword that was matched (a prefix of the probe).
    pub keyword: String,
    /// Payload stored on the matched keyword.
    pub payload: &'a T,
    /// Number of characters of the probe that were consumed.
    pub consumed: usize,
}

impl<T> Trie<T> {
    /// Create an empty trie.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keywords stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no keyword is stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert a keyword with its payload. Keywords are stored lowercase. Re-inserting a
    /// keyword replaces its payload.
    pub fn insert(&mut self, keyword: &str, payload: T) {
        let keyword = keyword.to_lowercase();
        let mut node = &mut self.root;
        for ch in keyword.chars() {
            node = node.children.entry(ch).or_default();
        }
        if node.payload.is_none() {
            self.len += 1;
        }
        node.payload = Some(payload);
    }

    /// Exact lookup of a keyword.
    pub fn lookup(&self, keyword: &str) -> Option<&T> {
        let keyword = keyword.to_lowercase();
        let mut node = &self.root;
        for ch in keyword.chars() {
            node = node.children.get(&ch)?;
        }
        node.payload.as_ref()
    }

    /// True if `prefix` is the prefix of at least one stored keyword.
    pub fn has_prefix(&self, prefix: &str) -> bool {
        let prefix = prefix.to_lowercase();
        let mut node = &self.root;
        for ch in prefix.chars() {
            match node.children.get(&ch) {
                Some(n) => node = n,
                None => return false,
            }
        }
        true
    }

    /// Longest stored keyword that is a prefix of `probe`. Used to split run-together
    /// keywords: parsing "hondaaccord" first matches "honda" (consuming 5 characters)
    /// and the caller re-enters with the remainder "accord".
    pub fn longest_prefix<'a>(&'a self, probe: &str) -> Option<TrieMatch<'a, T>> {
        let probe = probe.to_lowercase();
        let mut node = &self.root;
        let mut best: Option<(usize, &T)> = None;
        let mut consumed = 0;
        for ch in probe.chars() {
            match node.children.get(&ch) {
                Some(next) => {
                    node = next;
                    consumed += 1;
                    if let Some(p) = &node.payload {
                        best = Some((consumed, p));
                    }
                }
                None => break,
            }
        }
        best.map(|(consumed, payload)| TrieMatch {
            keyword: probe.chars().take(consumed).collect(),
            payload,
            consumed,
        })
    }

    /// Depth (in characters) of the longest path of `probe` that exists in the trie,
    /// whether or not it ends at a keyword. This is "the current node in the trie where
    /// the misspelled word is encountered" of Section 4.2.1.
    pub fn matched_depth(&self, probe: &str) -> usize {
        let probe = probe.to_lowercase();
        let mut node = &self.root;
        let mut depth = 0;
        for ch in probe.chars() {
            match node.children.get(&ch) {
                Some(next) => {
                    node = next;
                    depth += 1;
                }
                None => break,
            }
        }
        depth
    }

    /// All keywords that start with the first `prefix_len` characters of `probe` —
    /// the "alternative keywords recognized by the trie, starting from the current node"
    /// that the spelling corrector compares against a misspelled word.
    pub fn alternatives_from(&self, probe: &str, prefix_len: usize) -> Vec<(String, &T)> {
        let probe = probe.to_lowercase();
        let prefix: String = probe.chars().take(prefix_len).collect();
        let mut node = &self.root;
        for ch in prefix.chars() {
            match node.children.get(&ch) {
                Some(next) => node = next,
                None => return Vec::new(),
            }
        }
        let mut out = Vec::new();
        collect(node, prefix, &mut out);
        out
    }

    /// All keywords stored in the trie with their payloads, in lexicographic order.
    pub fn keywords(&self) -> Vec<(String, &T)> {
        let mut out = Vec::new();
        collect(&self.root, String::new(), &mut out);
        out
    }

    /// Approximate memory footprint in bytes (node count × per-node overhead); the paper
    /// notes each domain trie stays under 50 MB — the report in EXPERIMENTS.md uses this.
    pub fn approx_size_bytes(&self) -> usize {
        fn count<T>(node: &Node<T>) -> usize {
            1 + node.children.values().map(count).sum::<usize>()
        }
        count(&self.root) * (std::mem::size_of::<char>() + 2 * std::mem::size_of::<usize>())
    }
}

fn collect<'a, T>(node: &'a Node<T>, label: String, out: &mut Vec<(String, &'a T)>) {
    if let Some(p) = &node.payload {
        out.push((label.clone(), p));
    }
    for (ch, child) in &node.children {
        let mut next = label.clone();
        next.push(*ch);
        collect(child, next, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn car_trie() -> Trie<&'static str> {
        let mut t = Trie::new();
        t.insert("honda", "make");
        t.insert("accord", "model");
        t.insert("civic", "model");
        t.insert("accent", "model");
        t.insert("automatic", "transmission");
        t.insert("auto", "transmission");
        t.insert("blue", "color");
        t
    }

    #[test]
    fn exact_lookup_and_len() {
        let t = car_trie();
        assert_eq!(t.len(), 7);
        assert!(!t.is_empty());
        assert_eq!(t.lookup("honda"), Some(&"make"));
        assert_eq!(t.lookup("HONDA"), Some(&"make"));
        assert_eq!(t.lookup("hond"), None);
        assert_eq!(t.lookup("mazda"), None);
        assert_eq!(Trie::<u8>::new().lookup("x"), None);
    }

    #[test]
    fn reinsert_replaces_payload_without_growing() {
        let mut t = car_trie();
        t.insert("blue", "colour");
        assert_eq!(t.len(), 7);
        assert_eq!(t.lookup("blue"), Some(&"colour"));
    }

    #[test]
    fn longest_prefix_splits_run_together_keywords() {
        let t = car_trie();
        // "hondaaccord" (missing space, Section 4.2.1)
        let m = t.longest_prefix("hondaaccord").unwrap();
        assert_eq!(m.keyword, "honda");
        assert_eq!(m.consumed, 5);
        assert_eq!(*m.payload, "make");
        let rest = &"hondaaccord"[m.consumed..];
        let m2 = t.longest_prefix(rest).unwrap();
        assert_eq!(m2.keyword, "accord");
        // Prefers the longest keyword: "automatic" over "auto".
        let m = t.longest_prefix("automatic transmission").unwrap();
        assert_eq!(m.keyword, "automatic");
        assert!(t.longest_prefix("zzz").is_none());
    }

    #[test]
    fn matched_depth_and_prefix_checks() {
        let t = car_trie();
        assert_eq!(t.matched_depth("accord"), 6);
        assert_eq!(t.matched_depth("accorr"), 5); // diverges at the final character
        assert_eq!(t.matched_depth("xyz"), 0);
        assert!(t.has_prefix("acc"));
        assert!(t.has_prefix(""));
        assert!(!t.has_prefix("xyz"));
    }

    #[test]
    fn alternatives_share_the_matched_prefix() {
        let t = car_trie();
        let depth = t.matched_depth("accorr");
        let alts = t.alternatives_from("accorr", depth);
        let words: Vec<_> = alts.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, vec!["accord"]);
        // From a shorter prefix both "accord" and "accent" are alternatives.
        let alts = t.alternatives_from("acc", 3);
        let words: Vec<_> = alts.iter().map(|(w, _)| w.as_str()).collect();
        assert_eq!(words, vec!["accent", "accord"]);
        assert!(t.alternatives_from("zzz", 3).is_empty());
    }

    #[test]
    fn keywords_enumerates_everything_sorted() {
        let t = car_trie();
        let words: Vec<_> = t.keywords().into_iter().map(|(w, _)| w).collect();
        assert_eq!(
            words,
            vec![
                "accent",
                "accord",
                "auto",
                "automatic",
                "blue",
                "civic",
                "honda"
            ]
        );
        assert!(t.approx_size_bytes() > 0);
    }

    proptest! {
        #[test]
        fn inserted_keywords_are_always_found(words in proptest::collection::hash_set("[a-z]{1,10}", 1..20)) {
            let mut t = Trie::new();
            for (i, w) in words.iter().enumerate() {
                t.insert(w, i);
            }
            prop_assert_eq!(t.len(), words.len());
            for w in &words {
                prop_assert!(t.lookup(w).is_some());
                prop_assert!(t.has_prefix(w));
                let m = t.longest_prefix(w).unwrap();
                prop_assert!(m.consumed <= w.len());
            }
            let enumerated = t.keywords();
            prop_assert_eq!(enumerated.len(), words.len());
        }

        #[test]
        fn longest_prefix_consumes_at_most_probe_length(probe in "[a-z]{0,15}") {
            let t = car_trie();
            if let Some(m) = t.longest_prefix(&probe) {
                prop_assert!(m.consumed <= probe.len());
                prop_assert!(probe.starts_with(&m.keyword));
            }
        }
    }
}
