//! PHP-style `similar_text`.
//!
//! Section 4.2.1: when a keyword is not recognized by the trie, CQAds "compares W with
//! the alternative keywords recognized by the trie ... using the 'similar text' function
//! which calculates their similarity based on the number of common characters and their
//! corresponding positions in the strings. Similar_text returns the degree of similarity
//! of two strings as a percentage."
//!
//! This is the classic Oliver (1993) algorithm used by PHP's `similar_text`: find the
//! longest common substring, recurse on the prefixes and the suffixes, and sum the
//! match lengths; the percentage is `2 * matched / (len(a) + len(b)) * 100`.

/// Number of matching characters between `a` and `b` under the Oliver algorithm.
pub fn similar_text(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    sim(&a, &b)
}

/// Degree of similarity of two strings as a percentage in `[0, 100]`.
pub fn similar_text_percent(a: &str, b: &str) -> f64 {
    let total = a.chars().count() + b.chars().count();
    if total == 0 {
        return 100.0;
    }
    let matched = similar_text(a, b);
    (2.0 * matched as f64 / total as f64) * 100.0
}

fn sim(a: &[char], b: &[char]) -> usize {
    let (pos_a, pos_b, len) = longest_common_substring(a, b);
    if len == 0 {
        return 0;
    }
    let mut total = len;
    // Recurse on the pieces before and after the common block.
    if pos_a > 0 && pos_b > 0 {
        total += sim(&a[..pos_a], &b[..pos_b]);
    }
    if pos_a + len < a.len() && pos_b + len < b.len() {
        total += sim(&a[pos_a + len..], &b[pos_b + len..]);
    }
    total
}

fn longest_common_substring(a: &[char], b: &[char]) -> (usize, usize, usize) {
    let (mut best_a, mut best_b, mut best_len) = (0, 0, 0);
    for i in 0..a.len() {
        for j in 0..b.len() {
            let mut k = 0;
            while i + k < a.len() && j + k < b.len() && a[i + k] == b[j + k] {
                k += 1;
            }
            if k > best_len {
                best_a = i;
                best_b = j;
                best_len = k;
            }
        }
    }
    (best_a, best_b, best_len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn identical_strings_score_100() {
        assert_eq!(similar_text_percent("accord", "accord"), 100.0);
        assert_eq!(similar_text("accord", "accord"), 6);
    }

    #[test]
    fn oliver_algorithm_reference_values() {
        assert_eq!(similar_text("World", "Word"), 4);
        // Only a single common block ("l" / "o") survives the recursive split.
        assert_eq!(similar_text("Hello", "World"), 1);
        assert_eq!(similar_text("", "abc"), 0);
        assert_eq!(similar_text("night", "nacht"), 3);
    }

    #[test]
    fn misspelled_car_models_rank_sensibly() {
        // "accorr" (user typo) should be much closer to "accord" than to "camry".
        let to_accord = similar_text_percent("accorr", "accord");
        let to_camry = similar_text_percent("accorr", "camry");
        assert!(to_accord > 80.0);
        assert!(to_accord > to_camry);
        // "mazd" closer to "mazda" than to "honda"
        assert!(similar_text_percent("mazd", "mazda") > similar_text_percent("mazd", "honda"));
    }

    #[test]
    fn empty_inputs_are_handled() {
        assert_eq!(similar_text("", ""), 0);
        assert_eq!(similar_text_percent("", ""), 100.0);
        assert_eq!(similar_text_percent("", "x"), 0.0);
    }

    proptest! {
        #[test]
        fn percent_is_bounded(a in "[a-z]{0,12}", b in "[a-z]{0,12}") {
            let p = similar_text_percent(&a, &b);
            prop_assert!((0.0..=100.0).contains(&p));
        }

        #[test]
        fn symmetric_match_count(a in "[a-z]{0,10}", b in "[a-z]{0,10}") {
            // The Oliver algorithm is not guaranteed symmetric in exotic cases, but the
            // match count can never exceed either length.
            let m = similar_text(&a, &b);
            prop_assert!(m <= a.len() && m <= b.len());
        }

        #[test]
        fn identity_scores_full_length(a in "[a-z]{1,12}") {
            prop_assert_eq!(similar_text(&a, &a), a.len());
            prop_assert_eq!(similar_text_percent(&a, &a), 100.0);
        }
    }
}
