//! Stop-word list.
//!
//! The paper eliminates "non-essential keywords, which are stopwords, which carry
//! little meaning" before tagging a question (Section 4.1.4, Example 2: "Do you have a
//! 2 door red BMW?" → "2 door red BMW"). This list covers the English function words
//! that appear in ads questions; comparison words ("less", "more", "than", "under",
//! "between", ...) are *not* stop words because they are boundary/superlative keywords
//! handled by the identifiers table.

/// The stop-word list used by CQAds question pre-processing.
pub const STOPWORDS: &[&str] = &[
    "a",
    "an",
    "the",
    "do",
    "does",
    "did",
    "you",
    "your",
    "yours",
    "have",
    "has",
    "had",
    "i",
    "me",
    "my",
    "mine",
    "we",
    "our",
    "us",
    "it",
    "its",
    "is",
    "are",
    "was",
    "were",
    "be",
    "been",
    "being",
    "am",
    "can",
    "could",
    "would",
    "should",
    "shall",
    "will",
    "may",
    "might",
    "must",
    "want",
    "wants",
    "wanted",
    "need",
    "needs",
    "needed",
    "looking",
    "look",
    "find",
    "show",
    "give",
    "get",
    "seeking",
    "seek",
    "search",
    "searching",
    "please",
    "for",
    "of",
    "in",
    "on",
    "at",
    "to",
    "from",
    "by",
    "as",
    "that",
    "this",
    "these",
    "those",
    "there",
    "here",
    "some",
    "any",
    "all",
    "with",
    "about",
    "into",
    "also",
    "just",
    "like",
    "prefer",
    "preferably",
    "ideally",
    "sale",
    "buy",
    "purchase",
    "available",
    "interested",
    "hello",
    "hi",
    "thanks",
    "thank",
    "if",
    "so",
    "such",
    "what",
    "which",
    "who",
    "whom",
    "how",
    "when",
    "where",
    "one",
    "ones",
    "something",
    "anything",
    "car",
    "cars",
    "vehicle",
    "vehicles",
    "ad",
    "ads",
    "listing",
    "listings",
    "deal",
    "deals",
    "item",
    "items",
];

/// True if the (lowercased) token is a stop word.
pub fn is_stopword(token: &str) -> bool {
    let token = token.to_lowercase();
    STOPWORDS.contains(&token.as_str())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn common_function_words_are_stopwords() {
        for w in ["do", "you", "have", "a", "the", "I", "want", "with"] {
            assert!(is_stopword(w), "{w} should be a stopword");
        }
    }

    #[test]
    fn content_and_boundary_words_are_not_stopwords() {
        for w in [
            "honda", "blue", "cheapest", "less", "than", "under", "between", "not", "no",
        ] {
            assert!(!is_stopword(w), "{w} must not be a stopword");
        }
    }

    #[test]
    fn example_2_reduction_matches_paper() {
        // "Do you have a 2 door red BMW?" → "2 door red BMW"
        let kept: Vec<&str> = "do you have a 2 door red bmw"
            .split_whitespace()
            .filter(|w| !is_stopword(w))
            .collect();
        assert_eq!(kept, vec!["2", "door", "red", "bmw"]);
    }

    #[test]
    fn stopword_check_is_case_insensitive() {
        assert!(is_stopword("The"));
        assert!(is_stopword("YOU"));
    }

    #[test]
    fn list_has_no_duplicates() {
        let mut sorted = STOPWORDS.to_vec();
        sorted.sort_unstable();
        let before = sorted.len();
        sorted.dedup();
        assert_eq!(before, sorted.len());
    }
}
