//! Question tokenization.
//!
//! Ads questions mix words, numbers, currency amounts and unit-suffixed quantities
//! ("$5000", "20k miles", "2dr", "less than 15,000 dollars"). The tokenizer splits a
//! question into [`Token`]s and classifies each as a word, a number or a mixed
//! alphanumeric token, expanding the common numeric shorthands:
//!
//! * a `$` prefix is stripped and remembered via [`TokenKind::Number`] (currency is a
//!   Type III unit keyword handled by the tagger),
//! * a `k` suffix multiplies by 1,000 ("20k" → 20,000) and `m` by 1,000,000,
//! * thousands separators (",") are removed ("15,000" → 15000).

/// Classification of a token.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A plain word ("honda", "cheapest").
    Word,
    /// A numeric quantity, after shorthand expansion.
    Number(f64),
    /// A mixed alphanumeric token that is not a plain number ("2dr", "4x4").
    AlphaNumeric,
}

/// A token together with its original text (lowercased).
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Lowercased surface form with punctuation trimmed.
    pub text: String,
    /// Token classification.
    pub kind: TokenKind,
}

impl Token {
    /// Numeric payload if this token is a number.
    pub fn number(&self) -> Option<f64> {
        match self.kind {
            TokenKind::Number(n) => Some(n),
            _ => None,
        }
    }

    /// True if this token is a plain word.
    pub fn is_word(&self) -> bool {
        matches!(self.kind, TokenKind::Word)
    }
}

/// Lowercase a raw token and trim surrounding punctuation (keeping internal hyphens,
/// which matter for values such as "4-door" and "anti-lock").
pub fn normalize_token(raw: &str) -> String {
    raw.trim_matches(|c: char| !c.is_alphanumeric() && c != '$')
        .to_lowercase()
}

/// Tokenize a question into classified tokens. Empty tokens are dropped.
pub fn tokenize(question: &str) -> Vec<Token> {
    let mut out = Vec::new();
    // Split on whitespace only; commas inside numbers are handled below, commas
    // between words are trimmed by normalize_token.
    for raw in question.split(|c: char| c.is_whitespace()) {
        for piece in split_punctuation(raw) {
            let text = normalize_token(&piece);
            if text.is_empty() {
                continue;
            }
            out.push(classify(&text));
        }
    }
    out
}

/// Split trailing/leading punctuation that glues tokens together ("cars?" → "cars"),
/// while keeping currency and decimal/thousand separators attached to digits.
fn split_punctuation(raw: &str) -> Vec<String> {
    let mut pieces = Vec::new();
    let mut current = String::new();
    for ch in raw.chars() {
        match ch {
            '?' | '!' | ';' | ':' | '(' | ')' | '"' | '\'' => {
                if !current.is_empty() {
                    pieces.push(std::mem::take(&mut current));
                }
            }
            ',' => {
                // keep the comma only if it is a thousands separator (digit , digit)
                if current
                    .chars()
                    .last()
                    .map(|c| c.is_ascii_digit())
                    .unwrap_or(false)
                {
                    current.push(ch);
                } else if !current.is_empty() {
                    pieces.push(std::mem::take(&mut current));
                }
            }
            _ => current.push(ch),
        }
    }
    if !current.is_empty() {
        pieces.push(current);
    }
    pieces
}

fn classify(text: &str) -> Token {
    let stripped = text.strip_prefix('$').unwrap_or(text);
    if let Some(n) = parse_number(stripped) {
        return Token {
            text: text.to_string(),
            kind: TokenKind::Number(n),
        };
    }
    let has_digit = stripped.chars().any(|c| c.is_ascii_digit());
    let has_alpha = stripped.chars().any(|c| c.is_alphabetic());
    let kind = if has_digit && has_alpha {
        TokenKind::AlphaNumeric
    } else {
        TokenKind::Word
    };
    Token {
        text: text.to_string(),
        kind,
    }
}

/// Parse a numeric token with thousands separators and k/m suffixes.
pub fn parse_number(text: &str) -> Option<f64> {
    let text = text.trim_end_matches('.');
    if text.is_empty() {
        return None;
    }
    let (body, multiplier) = match text.chars().last() {
        Some('k') | Some('K') => (&text[..text.len() - 1], 1_000.0),
        Some('m') | Some('M') => (&text[..text.len() - 1], 1_000_000.0),
        _ => (text, 1.0),
    };
    let cleaned: String = body.chars().filter(|c| *c != ',').collect();
    if cleaned.is_empty() || !cleaned.chars().all(|c| c.is_ascii_digit() || c == '.') {
        return None;
    }
    // Reject pure dots and multiple dots.
    if cleaned.chars().filter(|c| *c == '.').count() > 1 || cleaned == "." {
        return None;
    }
    cleaned.parse::<f64>().ok().map(|n| n * multiplier)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn basic_question_tokenizes_to_words() {
        let toks = tokenize("Do you have a 2 door red BMW?");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(
            texts,
            vec!["do", "you", "have", "a", "2", "door", "red", "bmw"]
        );
        assert_eq!(toks[4].kind, TokenKind::Number(2.0));
        assert!(toks[7].is_word());
    }

    #[test]
    fn numeric_shorthands_expand() {
        assert_eq!(parse_number("20k"), Some(20_000.0));
        assert_eq!(parse_number("1.5m"), Some(1_500_000.0));
        assert_eq!(parse_number("15,000"), Some(15_000.0));
        assert_eq!(parse_number("2004"), Some(2004.0));
        assert_eq!(parse_number("abc"), None);
        assert_eq!(parse_number(""), None);
        assert_eq!(parse_number("1.2.3"), None);
    }

    #[test]
    fn currency_and_units_are_classified() {
        let toks = tokenize("less than $5000");
        assert_eq!(toks.last().unwrap().number(), Some(5000.0));
        let toks = tokenize("less than 15,000 dollars");
        assert_eq!(toks[2].number(), Some(15_000.0));
        assert!(toks[3].is_word());
    }

    #[test]
    fn mixed_alphanumerics_are_kept_whole() {
        let toks = tokenize("Cheapest 2dr mazda with automatic transmission");
        assert_eq!(toks[1].text, "2dr");
        assert_eq!(toks[1].kind, TokenKind::AlphaNumeric);
    }

    #[test]
    fn punctuation_is_stripped() {
        let toks = tokenize("blue, red Toyota!");
        let texts: Vec<_> = toks.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, vec!["blue", "red", "toyota"]);
        let toks = tokenize("\"4 wheel drive\" (less than 20K miles)");
        assert!(toks.iter().any(|t| t.number() == Some(20_000.0)));
    }

    #[test]
    fn hyphenated_values_survive() {
        let toks = tokenize("4-door anti-lock brakes");
        assert_eq!(toks[0].text, "4-door");
        assert_eq!(toks[1].text, "anti-lock");
    }

    #[test]
    fn empty_and_whitespace_questions_yield_nothing() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t ").is_empty());
        assert!(tokenize("???").is_empty());
    }

    proptest! {
        #[test]
        fn tokenizer_never_panics(s in ".{0,120}") {
            let _ = tokenize(&s);
        }

        #[test]
        fn tokens_are_lowercase_and_nonempty(s in "[A-Za-z0-9 ,.$?]{0,80}") {
            for t in tokenize(&s) {
                prop_assert!(!t.text.is_empty());
                prop_assert_eq!(t.text.clone(), t.text.to_lowercase());
            }
        }

        #[test]
        fn plain_integers_parse_exactly(n in 0u32..10_000_000) {
            prop_assert_eq!(parse_number(&n.to_string()), Some(n as f64));
        }
    }
}
