//! Porter stemmer.
//!
//! The WS word-correlation matrix (Section 4.3.2) holds "non-stop, *stemmed* words,
//! i.e., words reduced to their grammatical root", and negation keywords are matched on
//! "their stemmed versions" (footnote 1 of Section 4.4.1). This is a from-scratch
//! implementation of Porter's 1980 algorithm (steps 1a–5b), adequate for the ads
//! vocabulary handled by CQAds.

/// Stem a single lowercase word with the Porter algorithm. Words of length ≤ 2 are
/// returned unchanged, as in the original algorithm.
pub fn porter_stem(word: &str) -> String {
    let word = word.to_lowercase();
    if word.len() <= 2 || !word.chars().all(|c| c.is_ascii_alphabetic()) {
        return word;
    }
    let mut w: Vec<u8> = word.into_bytes();
    step1a(&mut w);
    step1b(&mut w);
    step1c(&mut w);
    step2(&mut w);
    step3(&mut w);
    step4(&mut w);
    step5a(&mut w);
    step5b(&mut w);
    String::from_utf8(w).expect("ascii input stays ascii")
}

fn is_consonant(w: &[u8], i: usize) -> bool {
    match w[i] {
        b'a' | b'e' | b'i' | b'o' | b'u' => false,
        b'y' => {
            if i == 0 {
                true
            } else {
                !is_consonant(w, i - 1)
            }
        }
        _ => true,
    }
}

/// The "measure" m of the stem w[..end): number of VC sequences.
fn measure(w: &[u8], end: usize) -> usize {
    let mut m = 0;
    let mut i = 0;
    // skip initial consonants
    while i < end && is_consonant(w, i) {
        i += 1;
    }
    loop {
        // skip vowels
        while i < end && !is_consonant(w, i) {
            i += 1;
        }
        if i >= end {
            break;
        }
        // skip consonants
        while i < end && is_consonant(w, i) {
            i += 1;
        }
        m += 1;
        if i >= end {
            break;
        }
    }
    m
}

fn has_vowel(w: &[u8], end: usize) -> bool {
    (0..end).any(|i| !is_consonant(w, i))
}

fn ends_with(w: &[u8], suffix: &str) -> bool {
    w.len() >= suffix.len() && &w[w.len() - suffix.len()..] == suffix.as_bytes()
}

fn ends_double_consonant(w: &[u8]) -> bool {
    let n = w.len();
    n >= 2 && w[n - 1] == w[n - 2] && is_consonant(w, n - 1)
}

/// cvc pattern where the final c is not w, x or y — used by steps 1b and 5b.
fn ends_cvc(w: &[u8], end: usize) -> bool {
    if end < 3 {
        return false;
    }
    let (a, b, c) = (end - 3, end - 2, end - 1);
    is_consonant(w, a)
        && !is_consonant(w, b)
        && is_consonant(w, c)
        && !matches!(w[c], b'w' | b'x' | b'y')
}

/// Replace `suffix` by `replacement` if the stem before the suffix has measure > `min_m`.
fn replace_if(w: &mut Vec<u8>, suffix: &str, replacement: &str, min_m: usize) -> bool {
    if ends_with(w, suffix) {
        let stem_len = w.len() - suffix.len();
        if measure(w, stem_len) > min_m {
            w.truncate(stem_len);
            w.extend_from_slice(replacement.as_bytes());
            return true;
        }
        return true; // matched but condition failed: stop trying other suffixes
    }
    false
}

fn step1a(w: &mut Vec<u8>) {
    if ends_with(w, "sses") || ends_with(w, "ies") {
        // "sses" -> "ss", "ies" -> "i": both drop the last two bytes.
        w.truncate(w.len() - 2);
    } else if ends_with(w, "ss") {
        // unchanged
    } else if ends_with(w, "s") && w.len() > 1 {
        w.truncate(w.len() - 1);
    }
}

fn step1b(w: &mut Vec<u8>) {
    if ends_with(w, "eed") {
        if measure(w, w.len() - 3) > 0 {
            w.truncate(w.len() - 1);
        }
        return;
    }
    let applied = if ends_with(w, "ed") && has_vowel(w, w.len() - 2) {
        w.truncate(w.len() - 2);
        true
    } else if ends_with(w, "ing") && has_vowel(w, w.len() - 3) {
        w.truncate(w.len() - 3);
        true
    } else {
        false
    };
    if applied {
        if ends_with(w, "at") || ends_with(w, "bl") || ends_with(w, "iz") {
            w.push(b'e');
        } else if ends_double_consonant(w)
            && !matches!(w.last(), Some(b'l') | Some(b's') | Some(b'z'))
        {
            w.truncate(w.len() - 1);
        } else if measure(w, w.len()) == 1 && ends_cvc(w, w.len()) {
            w.push(b'e');
        }
    }
}

fn step1c(w: &mut [u8]) {
    if ends_with(w, "y") && has_vowel(w, w.len() - 1) {
        let n = w.len();
        w[n - 1] = b'i';
    }
}

fn step2(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("ational", "ate"),
        ("tional", "tion"),
        ("enci", "ence"),
        ("anci", "ance"),
        ("izer", "ize"),
        ("abli", "able"),
        ("alli", "al"),
        ("entli", "ent"),
        ("eli", "e"),
        ("ousli", "ous"),
        ("ization", "ize"),
        ("ation", "ate"),
        ("ator", "ate"),
        ("alism", "al"),
        ("iveness", "ive"),
        ("fulness", "ful"),
        ("ousness", "ous"),
        ("aliti", "al"),
        ("iviti", "ive"),
        ("biliti", "ble"),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step3(w: &mut Vec<u8>) {
    const RULES: &[(&str, &str)] = &[
        ("icate", "ic"),
        ("ative", ""),
        ("alize", "al"),
        ("iciti", "ic"),
        ("ical", "ic"),
        ("ful", ""),
        ("ness", ""),
    ];
    for (suffix, replacement) in RULES {
        if ends_with(w, suffix) {
            replace_if(w, suffix, replacement, 0);
            return;
        }
    }
}

fn step4(w: &mut Vec<u8>) {
    const SUFFIXES: &[&str] = &[
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement", "ment", "ent", "ou",
        "ism", "ate", "iti", "ous", "ive", "ize",
    ];
    // special case: "ion" requires preceding s or t
    if ends_with(w, "ion") {
        let stem_len = w.len() - 3;
        if stem_len > 0 && matches!(w[stem_len - 1], b's' | b't') && measure(w, stem_len) > 1 {
            w.truncate(stem_len);
        }
        return;
    }
    for suffix in SUFFIXES {
        if ends_with(w, suffix) {
            let stem_len = w.len() - suffix.len();
            if measure(w, stem_len) > 1 {
                w.truncate(stem_len);
            }
            return;
        }
    }
}

fn step5a(w: &mut Vec<u8>) {
    if ends_with(w, "e") {
        let stem_len = w.len() - 1;
        let m = measure(w, stem_len);
        if m > 1 || (m == 1 && !ends_cvc(w, stem_len)) {
            w.truncate(stem_len);
        }
    }
}

fn step5b(w: &mut Vec<u8>) {
    if measure(w, w.len()) > 1 && ends_double_consonant(w) && w.last() == Some(&b'l') {
        w.truncate(w.len() - 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn classic_porter_examples() {
        assert_eq!(porter_stem("caresses"), "caress");
        assert_eq!(porter_stem("ponies"), "poni");
        assert_eq!(porter_stem("cats"), "cat");
        assert_eq!(porter_stem("agreed"), "agre");
        assert_eq!(porter_stem("plastered"), "plaster");
        assert_eq!(porter_stem("motoring"), "motor");
        assert_eq!(porter_stem("conflated"), "conflat");
        assert_eq!(porter_stem("hopping"), "hop");
        assert_eq!(porter_stem("happy"), "happi");
        assert_eq!(porter_stem("relational"), "relat");
        assert_eq!(porter_stem("conditional"), "condit");
        assert_eq!(porter_stem("formalize"), "formal");
        assert_eq!(porter_stem("electricity"), "electr");
        assert_eq!(porter_stem("hopefulness"), "hope");
        assert_eq!(porter_stem("adjustment"), "adjust");
        assert_eq!(porter_stem("adoption"), "adopt");
        assert_eq!(porter_stem("probate"), "probat");
        assert_eq!(porter_stem("controll"), "control");
        assert_eq!(porter_stem("roll"), "roll");
    }

    #[test]
    fn ads_vocabulary_examples() {
        // negation keywords match on stems: "excluding" and "exclude" share a stem
        assert_eq!(porter_stem("excluding"), porter_stem("exclude"));
        assert_eq!(porter_stem("removed"), porter_stem("remove"));
        // domain words group as expected
        assert_eq!(porter_stem("automatic"), "automat");
        assert_eq!(porter_stem("leather"), "leather");
        assert_eq!(porter_stem("doors"), "door");
        assert_eq!(porter_stem("programmers"), porter_stem("programmer"));
    }

    #[test]
    fn short_and_non_alpha_words_pass_through() {
        assert_eq!(porter_stem("go"), "go");
        assert_eq!(porter_stem("4dr"), "4dr");
        assert_eq!(porter_stem("c++"), "c++");
        assert_eq!(porter_stem("BMW"), "bmw");
    }

    proptest! {
        #[test]
        fn stemming_never_panics_and_never_grows_much(word in "[a-zA-Z]{1,20}") {
            let s = porter_stem(&word);
            prop_assert!(!s.is_empty());
            prop_assert!(s.len() <= word.len() + 1);
        }

        #[test]
        fn stemming_is_idempotent_for_ads_words(word in "[a-z]{3,12}(s|ing|ed|ly|ness)?") {
            let once = porter_stem(&word);
            // Stemming a stem may shorten further in rare cases but must not panic and
            // must stay ascii-lowercase.
            let twice = porter_stem(&once);
            prop_assert!(twice.chars().all(|c| c.is_ascii_lowercase()));
        }
    }
}
