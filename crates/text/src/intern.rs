//! Process-wide string interner (symbol table).
//!
//! The partial-match hot path compares and looks up the *same* strings millions of
//! times per query burst: normalized Type I values against the TI-matrix, stemmed
//! Type II words against the WS-matrix. Interning turns every one of those probes into
//! an integer comparison or an integer-keyed hash lookup — no `to_lowercase()` /
//! `porter_stem()` allocation ever happens per probe.
//!
//! The pool is global so that every structure that stores symbols — `addb::Table`,
//! `TIMatrix`, `WordSimMatrix` — shares one symbol space: a [`Sym`] produced while
//! building a table can be compared directly against a [`Sym`] stored in a matrix.
//! Writers take a write lock once per *new* string (table/matrix construction);
//! queries resolve their strings once per question and then run lock-free on plain
//! `Sym` values.

use std::collections::HashMap;
use std::sync::{OnceLock, RwLock};

/// An interned string: a dense `u32` handle valid for the lifetime of the process.
///
/// Two `Sym`s are equal if and only if the interned strings are byte-equal. `Sym`
/// implements `Ord` by handle value (creation order), which is stable within a process
/// and only used to canonicalize unordered pairs — never for lexicographic reasoning.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Sym(u32);

impl Sym {
    /// Dense index of this symbol (for side tables keyed by symbol).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

#[derive(Default)]
struct Pool {
    map: HashMap<Box<str>, Sym>,
    strings: Vec<Box<str>>,
}

static POOL: OnceLock<RwLock<Pool>> = OnceLock::new();

fn pool() -> &'static RwLock<Pool> {
    POOL.get_or_init(|| RwLock::new(Pool::default()))
}

/// Intern `s`, returning its symbol (allocating only the first time `s` is seen).
pub fn intern(s: &str) -> Sym {
    if let Some(sym) = lookup(s) {
        return sym;
    }
    let mut pool = pool().write().expect("interner poisoned");
    if let Some(sym) = pool.map.get(s) {
        return *sym;
    }
    let sym = Sym(u32::try_from(pool.strings.len()).expect("interner overflow"));
    let boxed: Box<str> = s.into();
    pool.strings.push(boxed.clone());
    pool.map.insert(boxed, sym);
    sym
}

/// Resolve `s` without interning: `None` means the string has never been interned, so
/// no table value, matrix key or other symbol can possibly equal it.
pub fn lookup(s: &str) -> Option<Sym> {
    pool()
        .read()
        .expect("interner poisoned")
        .map
        .get(s)
        .copied()
}

/// The interned string behind `sym` (clones; meant for reports and tests, not for hot
/// paths).
pub fn resolve(sym: Sym) -> String {
    pool().read().expect("interner poisoned").strings[sym.index()].to_string()
}

/// Number of distinct interned strings in the process.
pub fn len() -> usize {
    pool().read().expect("interner poisoned").strings.len()
}

/// Canonical unordered pair key: symmetric maps (TI-matrix, WS-matrix) store each pair
/// once under `(min, max)` handle order.
pub fn sym_pair(a: Sym, b: Sym) -> (Sym, Sym) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// Fast multiplicative hasher for symbol-keyed maps.
///
/// Hot-path similarity lookups hash one or two `u32` symbols per probe; the standard
/// SipHash is DoS-resistant but ~5× slower than needed for keys an attacker cannot
/// choose (symbols are assigned internally). Fibonacci-style multiply-xor mixing is
/// plenty for dense `u32` handles.
#[derive(Debug, Default, Clone, Copy)]
pub struct SymHasher(u64);

impl std::hash::Hasher for SymHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(b as u64);
        }
    }

    fn write_u32(&mut self, v: u32) {
        self.write_u64(v as u64);
    }

    fn write_u64(&mut self, v: u64) {
        let mixed = (self.0.rotate_left(27) ^ v).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        self.0 = mixed ^ (mixed >> 29);
    }

    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// `BuildHasher` for [`SymHasher`]-backed maps (`HashMap<(Sym, Sym), _, SymHashBuilder>`).
#[derive(Debug, Default, Clone, Copy)]
pub struct SymHashBuilder;

impl std::hash::BuildHasher for SymHashBuilder {
    type Hasher = SymHasher;

    fn build_hasher(&self) -> SymHasher {
        SymHasher::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_resolves() {
        let a = intern("accord");
        let b = intern("accord");
        assert_eq!(a, b);
        assert_eq!(resolve(a), "accord");
        assert_ne!(intern("camry"), a);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert!(lookup("never-interned-sentinel-xyzzy").is_none());
        let s = intern("interned-sentinel");
        assert_eq!(lookup("interned-sentinel"), Some(s));
    }

    #[test]
    fn sym_pair_is_order_insensitive() {
        let a = intern("pair-a");
        let b = intern("pair-b");
        assert_eq!(sym_pair(a, b), sym_pair(b, a));
    }

    #[test]
    fn concurrent_interning_yields_consistent_symbols() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| intern("racy-string")))
            .collect();
        let syms: Vec<Sym> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(syms.windows(2).all(|w| w[0] == w[1]));
    }
}
