//! # cqads-text — text-processing substrate
//!
//! CQAds manipulates natural-language ads questions with a handful of lightweight text
//! tools. None of them existed as reusable components in the paper's description, so
//! this crate builds them from scratch:
//!
//! * [`mod@tokenize`] — question tokenization and number/unit splitting ("20k miles",
//!   "$5000", "2dr").
//! * [`stopwords`] — the stop-word list used to drop non-essential keywords
//!   (Section 4.1.4 and Example 2).
//! * [`stem`] — a Porter stemmer; the WS word-correlation matrix stores *stemmed*
//!   words, and negation keywords are matched on their stemmed versions.
//! * [`mod@similar_text`] — the PHP-style `similar_text` percentage used by the spelling
//!   corrector (Section 4.2.1).
//! * [`shorthand`] — the ordered-subsequence rule that detects shorthand notations such
//!   as "4dr" for "4 door" (Section 4.2.3).
//! * [`edit`] — Levenshtein distance, used as a tie-breaker by the spelling corrector.
//! * [`trie`] — the keyword trie with per-node labels and identifiers that drives
//!   keyword tagging, missing-space repair and spelling correction (Sections 4.1.3,
//!   4.1.4, 4.2.1).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]
#![forbid(unsafe_code)]

pub mod edit;
pub mod intern;
pub mod shorthand;
pub mod similar_text;
pub mod stem;
pub mod stopwords;
pub mod tokenize;
pub mod trie;

pub use edit::levenshtein;
pub use intern::Sym;
pub use shorthand::{is_shorthand_of, shorthand_related};
pub use similar_text::{similar_text, similar_text_percent};
pub use stem::porter_stem;
pub use stopwords::{is_stopword, STOPWORDS};
pub use tokenize::{normalize_token, tokenize, Token, TokenKind};
pub use trie::{Trie, TrieMatch};
