//! Shorthand-notation detection (Section 4.2.3).
//!
//! Users write "4dr", "4 dr", "four door", "4-door", "4doors" for a car with four
//! doors. The paper's Perl script detects shorthand with a simple rule: *"any shorthand
//! notation N of a data value V only includes characters from V, and the characters in
//! N should have the same order as characters in V"* — i.e. the shorthand, after
//! normalization, is an ordered subsequence of the full value. A record value V matches
//! a question value A if A equals V, A is a shorthand of V, or V is a shorthand of A.
//!
//! Normalization performed before the subsequence test:
//! * lowercase, drop spaces and hyphens ("4-door" → "4door"),
//! * spell out small number words ("four" → "4") so "four door" matches "4dr",
//! * drop a trailing plural 's' ("4doors" → "4door").

/// Minimum length ratio: a candidate shorter than 1/5 of the full value is too
/// aggressive an abbreviation to accept (prevents "a" matching "automatic").
const MIN_LENGTH_RATIO: f64 = 0.2;

/// True if `notation` is a shorthand of the full data value `value` under the paper's
/// ordered-subsequence rule. The relation is *not* symmetric: use
/// [`shorthand_related`] for the symmetric check applied when matching records.
pub fn is_shorthand_of(notation: &str, value: &str) -> bool {
    let n = canonical(notation);
    let v = canonical(value);
    if n.is_empty() || v.is_empty() {
        return false;
    }
    if n == v {
        return true;
    }
    if n.len() > v.len() {
        return false;
    }
    if (n.len() as f64) < (v.len() as f64) * MIN_LENGTH_RATIO {
        return false;
    }
    // The shorthand must keep the leading character of the value (the Perl script's
    // behaviour: "dr" alone is not accepted for "door", but "4dr" is for "4 door"
    // because both start with '4').
    if n.chars().next() != v.chars().next() {
        return false;
    }
    is_subsequence(&n, &v)
}

/// Symmetric relevance test used when matching a question value A against a record
/// value V (Section 4.2.3): exact match, A shorthand of V, or V shorthand of A.
pub fn shorthand_related(a: &str, b: &str) -> bool {
    let ca = canonical(a);
    let cb = canonical(b);
    ca == cb || is_shorthand_of(a, b) || is_shorthand_of(b, a)
}

fn is_subsequence(needle: &str, haystack: &str) -> bool {
    let mut hay = haystack.chars();
    'outer: for nc in needle.chars() {
        for hc in hay.by_ref() {
            if hc == nc {
                continue 'outer;
            }
        }
        return false;
    }
    true
}

/// Normalize a value for the subsequence test.
fn canonical(s: &str) -> String {
    let lowered = s.to_lowercase();
    let mut words: Vec<String> = lowered
        .split(|c: char| c.is_whitespace() || c == '-' || c == '_' || c == '/')
        .filter(|w| !w.is_empty())
        .map(|w| number_word(w).unwrap_or(w).to_string())
        .collect();
    // Drop a plural 's' from the last word ("doors" → "door") unless the word is short.
    if let Some(last) = words.last_mut() {
        if last.len() > 3 && last.ends_with('s') && !last.ends_with("ss") {
            last.pop();
        }
    }
    words.join("")
}

fn number_word(w: &str) -> Option<&'static str> {
    Some(match w {
        "zero" => "0",
        "one" => "1",
        "two" => "2",
        "three" => "3",
        "four" => "4",
        "five" => "5",
        "six" => "6",
        "seven" => "7",
        "eight" => "8",
        "nine" => "9",
        "ten" => "10",
        _ => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn all_paper_variants_of_four_door_match() {
        // The variants listed in Section 4.2.3.
        for n in ["4dr", "4 dr", "four door", "4 doors", "4-door", "4doors"] {
            assert!(shorthand_related(n, "4 door"), "{n} should match '4 door'");
            assert!(shorthand_related("4 door", n), "'4 door' should match {n}");
        }
    }

    #[test]
    fn common_ads_shorthands() {
        assert!(is_shorthand_of("2dr", "2 door"));
        assert!(is_shorthand_of("auto", "automatic"));
        assert!(is_shorthand_of("trans", "transmission"));
        assert!(is_shorthand_of("4wd", "4 wheel drive"));
        assert!(is_shorthand_of("awd", "all wheel drive"));
        assert!(is_shorthand_of("pwr steering", "power steering"));
    }

    #[test]
    fn unrelated_values_do_not_match() {
        assert!(!shorthand_related("2 door", "4 door"));
        assert!(!shorthand_related("red", "blue"));
        assert!(!is_shorthand_of("manual", "automatic"));
        // too short / missing leading character
        assert!(!is_shorthand_of("a", "automatic"));
        assert!(!is_shorthand_of("dr", "4 door"));
        // characters out of order
        assert!(!is_shorthand_of("rd4", "4 door"));
    }

    #[test]
    fn exact_and_empty_inputs() {
        assert!(shorthand_related("blue", "Blue"));
        assert!(!is_shorthand_of("", "blue"));
        assert!(!is_shorthand_of("blue", ""));
    }

    #[test]
    fn longer_string_is_never_a_shorthand_of_a_shorter_one() {
        assert!(!is_shorthand_of("4 wheel drive", "4wd"));
        // but the symmetric relation still holds
        assert!(shorthand_related("4 wheel drive", "4wd"));
    }

    proptest! {
        #[test]
        fn every_value_is_related_to_itself(v in "[a-z0-9 ]{1,15}") {
            prop_assert!(shorthand_related(&v, &v));
        }

        #[test]
        fn relation_is_symmetric(a in "[a-z0-9 ]{1,12}", b in "[a-z0-9 ]{1,12}") {
            prop_assert_eq!(shorthand_related(&a, &b), shorthand_related(&b, &a));
        }

        #[test]
        fn prefix_truncations_are_shorthands(v in "[a-z]{6,12}", keep in 3usize..6) {
            let notation = &v[..keep];
            prop_assert!(is_shorthand_of(notation, &v));
        }
    }
}
