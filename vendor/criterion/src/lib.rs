//! Vendored, dependency-free shim of the `criterion` API surface this workspace uses:
//! [`Criterion::benchmark_group`], `sample_size`, `bench_function`, `finish` and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple — a warmup pass followed by `sample_size` timed
//! iterations, reporting min/mean — because the workspace's own benches do their own
//! reporting on top. `--test` on the command line (the mode CI smoke-runs) executes
//! every bench body exactly once without timing.

// This target measures real wall time by design.
#![allow(clippy::disallowed_methods)]

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode }
    }
}

impl Criterion {
    /// True when invoked with `--test` (single-iteration smoke mode).
    pub fn is_test_mode(&self) -> bool {
        self.test_mode
    }

    /// Start a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 100,
            test_mode: self.test_mode,
            _criterion: self,
        }
    }

    /// Benchmark a single function outside a group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let test_mode = self.test_mode;
        run_one("criterion", id, 100, test_mode, f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    test_mode: bool,
    _criterion: &'a Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Ignored (kept for API compatibility with real criterion).
    pub fn measurement_time(&mut self, _: Duration) -> &mut Self {
        self
    }

    /// Run one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl AsRef<str>,
        f: F,
    ) -> &mut Self {
        run_one(&self.name, id.as_ref(), self.sample_size, self.test_mode, f);
        self
    }

    /// Finish the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

/// Passed to each benchmark closure; `iter` runs and times the workload.
pub struct Bencher {
    samples: usize,
    test_mode: bool,
    /// Total measured time and iteration count, read back by the driver.
    elapsed: Duration,
    iters: u64,
    min: Duration,
}

impl Bencher {
    /// Call `f` repeatedly, timing each call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            std::hint::black_box(f());
            self.iters = 1;
            return;
        }
        // Warmup: one untimed call.
        std::hint::black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(f());
            let dt = start.elapsed();
            self.elapsed += dt;
            self.min = self.min.min(dt);
            self.iters += 1;
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    group: &str,
    id: &str,
    samples: usize,
    test_mode: bool,
    mut f: F,
) {
    let mut b = Bencher {
        samples,
        test_mode,
        elapsed: Duration::ZERO,
        iters: 0,
        min: Duration::MAX,
    };
    f(&mut b);
    if test_mode {
        println!("test {group}/{id} ... ok");
    } else if b.iters > 0 {
        let mean = b.elapsed / b.iters as u32;
        println!(
            "{group}/{id}: mean {:.3} ms, min {:.3} ms over {} samples",
            mean.as_secs_f64() * 1e3,
            b.min.as_secs_f64() * 1e3,
            b.iters
        );
    }
}

/// Re-export matching `criterion::black_box`.
pub use std::hint::black_box;

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Define `main` to run one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
