//! Vendored shim of serde's `#[derive(Serialize, Deserialize)]` macros.
//!
//! Implemented without `syn`/`quote` (no network access to crates.io): a small
//! hand-rolled parser extracts the item kind, name and named fields from the raw
//! `proc_macro::TokenStream`.
//!
//! * Structs with named fields serialize as JSON objects (field order preserved).
//! * Tuple structs serialize as JSON arrays.
//! * Unit structs serialize as `null`.
//! * Enums serialize as their `Debug` rendering in a JSON string — every derived enum
//!   in this workspace also derives `Debug`, and none is ever round-tripped.
//! * `Deserialize` emits an empty marker impl (nothing in the workspace deserializes).

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum,
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                // Attribute body `[...]`.
                iter.next();
            }
            Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next();
                    }
                }
            }
            _ => break,
        }
    }
    let kind_kw = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, found {other:?}"),
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = iter.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type `{name}`)");
        }
    }
    let kind = match kind_kw.as_str() {
        "enum" => ItemKind::Enum,
        "struct" => match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            None => ItemKind::UnitStruct,
            other => panic!("serde_derive shim: unexpected struct body {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Field names of a named-field struct body: for each field, the identifier directly
/// before a top-level `:`. Attributes and visibility are skipped; the type after the
/// colon is consumed up to the next comma at angle-bracket depth zero.
fn parse_named_fields(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = body.into_iter().peekable();
    'fields: loop {
        // Skip attributes and visibility.
        loop {
            match iter.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    iter.next();
                    iter.next();
                }
                Some(TokenTree::Ident(id)) if *id.to_string() == *"pub" => {
                    iter.next();
                    if let Some(TokenTree::Group(g)) = iter.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            iter.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive shim: expected field name, found {other:?}"),
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:` after `{name}`, found {other:?}"),
        }
        fields.push(name);
        // Consume the type up to a comma at angle depth 0.
        let mut angle_depth: i32 = 0;
        for tt in iter.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
    fields
}

fn count_tuple_fields(body: TokenStream) -> usize {
    let mut count = 0usize;
    let mut angle_depth: i32 = 0;
    let mut saw_any = false;
    for tt in body {
        saw_any = true;
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => count += 1,
                _ => {}
            }
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

/// Derive `serde::Serialize` (shim semantics documented at crate level).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item.kind {
        ItemKind::NamedStruct(fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::serialize_value(&self.{f}))"
                    )
                })
                .collect();
            format!(
                "::serde::Value::Object(::std::vec![{}])",
                entries.join(", ")
            )
        }
        ItemKind::TupleStruct(n) => {
            let entries: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::serialize_value(&self.{i})"))
                .collect();
            if *n == 1 {
                // Newtype structs serialize transparently, like real serde.
                entries.into_iter().next().expect("one field")
            } else {
                format!("::serde::Value::Array(::std::vec![{}])", entries.join(", "))
            }
        }
        ItemKind::UnitStruct => "::serde::Value::Null".to_string(),
        ItemKind::Enum => "::serde::Value::String(::std::format!(\"{:?}\", self))".to_string(),
    };
    format!(
        "impl ::serde::Serialize for {} {{\n    fn serialize_value(&self) -> ::serde::Value {{\n        {}\n    }}\n}}",
        item.name, body
    )
    .parse()
    .expect("serde_derive shim: generated impl parses")
}

/// Derive the `serde::Deserialize` marker (shim semantics documented at crate level).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    format!("impl ::serde::Deserialize for {} {{}}", item.name)
        .parse()
        .expect("serde_derive shim: generated impl parses")
}
