//! Vendored, dependency-free shim of the `serde` API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships a minimal
//! serialization facility: a [`Serialize`] trait producing an in-memory JSON
//! [`Value`], derive macros re-exported from the sibling `serde_derive` shim, and a
//! [`Deserialize`] marker trait so `#[derive(Deserialize)]` on the seed's types keeps
//! compiling. Only JSON *output* is exercised (experiment reports); deserialization is
//! never called anywhere in the workspace.

pub use serde_derive::{Deserialize, Serialize};

/// In-memory JSON value produced by [`Serialize`].
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers are carried as `f64`).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Field of an object by key (`None` for non-objects and missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number carried by a [`Value::Number`], `None` otherwise.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string carried by a [`Value::String`], `None` otherwise.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// Render compact JSON.
    pub fn render(&self, out: &mut String) {
        self.render_indent(out, None, 0);
    }

    /// Render with two-space indentation when `indent` is `Some(step)`.
    pub fn render_indent(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Number(n) => {
                if n.is_finite() {
                    if n.fract() == 0.0 && n.abs() < 9.0e15 {
                        out.push_str(&format!("{}", *n as i64));
                    } else {
                        out.push_str(&format!("{n}"));
                    }
                } else {
                    // JSON has no NaN/Inf; mirror serde_json's lossy `null`.
                    out.push_str("null");
                }
            }
            Value::String(s) => escape_into(s, out),
            Value::Array(items) => {
                render_seq(
                    out,
                    indent,
                    depth,
                    '[',
                    ']',
                    items.len(),
                    |out, i, ind, d| {
                        items[i].render_indent(out, ind, d);
                    },
                );
            }
            Value::Object(fields) => {
                render_seq(
                    out,
                    indent,
                    depth,
                    '{',
                    '}',
                    fields.len(),
                    |out, i, ind, d| {
                        let (k, v) = &fields[i];
                        escape_into(k, out);
                        out.push(':');
                        if ind.is_some() {
                            out.push(' ');
                        }
                        v.render_indent(out, ind, d);
                    },
                );
            }
        }
    }
}

fn render_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, Option<usize>, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        item(out, i, indent, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(step * depth));
    }
    out.push(close);
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Types that can be rendered to a JSON [`Value`].
pub trait Serialize {
    /// Produce the JSON value of `self`.
    fn serialize_value(&self) -> Value;
}

/// Marker trait so `#[derive(Deserialize)]` compiles; no deserialization code in the
/// workspace ever runs.
pub trait Deserialize: Sized {}

macro_rules! ser_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

ser_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(v) => v.serialize_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize> Serialize for std::sync::Arc<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![self.0.serialize_value(), self.1.serialize_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize_value(&self) -> Value {
        Value::Array(vec![
            self.0.serialize_value(),
            self.1.serialize_value(),
            self.2.serialize_value(),
        ])
    }
}

impl<K: ToString, V: Serialize, S> Serialize for std::collections::HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        let mut fields: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_string(), v.serialize_value()))
            .collect();
        fields.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(fields)
    }
}

impl<K: ToString, V: Serialize> Serialize for std::collections::BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_string(), v.serialize_value()))
                .collect(),
        )
    }
}

impl Serialize for std::time::Duration {
    fn serialize_value(&self) -> Value {
        Value::Number(self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_render() {
        let mut s = String::new();
        Value::Number(5000.0).render(&mut s);
        assert_eq!(s, "5000");
        let mut s = String::new();
        Value::String("a\"b".into()).render(&mut s);
        assert_eq!(s, "\"a\\\"b\"");
    }

    #[test]
    fn containers_serialize() {
        let v = vec![1u32, 2, 3].serialize_value();
        let mut s = String::new();
        v.render(&mut s);
        assert_eq!(s, "[1,2,3]");
        assert_eq!(None::<u32>.serialize_value(), Value::Null);
    }
}
