//! Vendored, dependency-free shim of the `rand` 0.9 API surface this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace ships a minimal
//! re-implementation: a seedable xoshiro256++ [`rngs::StdRng`], the [`Rng`] extension
//! methods (`random`, `random_range`, `random_bool`) and [`seq::SliceRandom`]
//! (`shuffle`, `choose`). Everything is deterministic for a given seed, which is all
//! the synthetic data generators and tests rely on.

/// Low-level source of randomness.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// RNGs that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Build the generator from a 64-bit seed, splitting it into the full state space.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from the generator's raw bits.
pub trait StandardUniform: Sized {
    /// Draw one uniformly distributed value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardUniform for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardUniform for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardUniform for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardUniform for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardUniform for usize {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl StandardUniform for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Primitive types [`Rng::random_range`] can sample uniformly between two bounds.
/// One blanket [`SampleRange`] impl per range shape keeps type inference flowing from
/// the use site into untyped integer literals, exactly like the real `rand`.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`inclusive == false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + if inclusive { 1 } else { 0 };
                assert!(span > 0, "cannot sample empty range");
                let v = ((rng.next_u64() as u128) % span as u128) as i128;
                (lo as i128 + v) as $t
            }
        }
    )*};
}

int_sample_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                _inclusive: bool,
            ) -> Self {
                assert!(lo <= hi, "cannot sample empty range");
                let unit = <$t as StandardUniform>::sample_standard(rng);
                lo + unit * (hi - lo)
            }
        }
    )*};
}

float_sample_uniform!(f32, f64);

/// Ranges that [`Rng::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draw one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        T::sample_between(rng, lo, hi, true)
    }
}

/// High-level sampling helpers, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample of a primitive type.
    fn random<T: StandardUniform>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Uniform sample from an integer or float range.
    fn random_range<T, Rr: SampleRange<T>>(&mut self, range: Rr) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers (mirrors `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Shuffling and random selection over slices.
    pub trait SliceRandom {
        /// Element type of the sequence.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Uniformly pick one element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.random_range(0..self.len()))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<f64>(), b.random::<f64>());
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..10);
            assert!((3..10).contains(&v));
            let f = rng.random_range(-2.0f64..2.0);
            assert!((-2.0..2.0).contains(&f));
            let i = rng.random_range(1..=6);
            assert!((1..=6).contains(&i));
        }
    }

    #[test]
    fn unit_floats_cover_the_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut lo = false;
        let mut hi = false;
        for _ in 0..10_000 {
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            lo |= f < 0.1;
            hi |= f > 0.9;
        }
        assert!(lo && hi);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted);
    }
}
