//! Vendored, dependency-free shim of the `proptest` API surface this workspace uses.
//!
//! Supports the [`proptest!`] macro (with `#![proptest_config(..)]`), regex-subset
//! string strategies (`"[a-z]{2,8}"`, `".{0,120}"`), integer/float range strategies,
//! [`sample::select`] and [`collection::hash_set`], plus [`prop_assert!`] /
//! [`prop_assert_eq!`]. Cases are generated from a deterministic per-test RNG (seeded
//! by the test name), so failures are reproducible; shrinking is not implemented.

use std::ops::Range;

/// Per-test deterministic random generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from the test name.
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.next_u64() % bound
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;

    /// A source of random test values.
    pub trait Strategy {
        /// The type of generated values.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample(rng)
        }
    }
}

use strategy::Strategy;

// ---------------------------------------------------------------------------
// Regex-subset string strategy
// ---------------------------------------------------------------------------

/// One repeatable unit of a pattern.
#[derive(Debug, Clone)]
enum Atom {
    /// `[...]` character class, expanded to its member characters.
    Class(Vec<char>),
    /// `.` — any printable ASCII character (including space).
    Any,
    /// A literal character.
    Lit(char),
    /// `(a|bc|d)` — one alternative is chosen, then its pieces are sampled in order.
    Group(Vec<Vec<Piece>>),
}

#[derive(Debug, Clone)]
struct Piece {
    atom: Atom,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<Piece> {
    let mut chars = pattern.chars().peekable();
    parse_sequence(&mut chars)
}

/// Parse pieces until end of input or an unconsumed `)` / `|` terminator.
fn parse_sequence(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<Piece> {
    let mut pieces: Vec<Piece> = Vec::new();
    while let Some(&peeked) = chars.peek() {
        if peeked == ')' || peeked == '|' {
            break;
        }
        let c = chars.next().expect("peeked");
        match c {
            '(' => {
                let mut alternatives = vec![parse_sequence(chars)];
                while chars.peek() == Some(&'|') {
                    chars.next();
                    alternatives.push(parse_sequence(chars));
                }
                if chars.peek() == Some(&')') {
                    chars.next();
                }
                pieces.push(Piece {
                    atom: Atom::Group(alternatives),
                    min: 1,
                    max: 1,
                });
            }
            '?' => {
                if let Some(last) = pieces.last_mut() {
                    last.min = 0;
                    last.max = 1;
                }
            }
            '[' => {
                // Collect the raw class body, then expand `a-z` ranges in one pass.
                let mut raw = Vec::new();
                for m in chars.by_ref() {
                    if m == ']' {
                        break;
                    }
                    raw.push(m);
                }
                let mut expanded = Vec::new();
                let mut i = 0;
                while i < raw.len() {
                    if raw[i] == '-' && i > 0 && i + 1 < raw.len() {
                        // `lo` was already pushed; replace with the full range.
                        let lo = expanded.pop().expect("preceding class member");
                        for ch in lo..=raw[i + 1] {
                            expanded.push(ch);
                        }
                        i += 2;
                    } else {
                        expanded.push(raw[i]);
                        i += 1;
                    }
                }
                pieces.push(Piece {
                    atom: Atom::Class(expanded),
                    min: 1,
                    max: 1,
                });
            }
            '.' => pieces.push(Piece {
                atom: Atom::Any,
                min: 1,
                max: 1,
            }),
            '{' => {
                let mut spec = String::new();
                for m in chars.by_ref() {
                    if m == '}' {
                        break;
                    }
                    spec.push(m);
                }
                let (min, max) = match spec.split_once(',') {
                    Some((a, b)) => (
                        a.trim().parse().unwrap_or(0),
                        b.trim()
                            .parse()
                            .unwrap_or_else(|_| a.trim().parse().unwrap_or(0)),
                    ),
                    None => {
                        let n = spec.trim().parse().unwrap_or(1);
                        (n, n)
                    }
                };
                if let Some(last) = pieces.last_mut() {
                    last.min = min;
                    last.max = max;
                }
            }
            '*' => {
                if let Some(last) = pieces.last_mut() {
                    last.min = 0;
                    last.max = 16;
                }
            }
            '+' => {
                if let Some(last) = pieces.last_mut() {
                    last.min = 1;
                    last.max = 16;
                }
            }
            '\\' => {
                if let Some(esc) = chars.next() {
                    pieces.push(Piece {
                        atom: Atom::Lit(esc),
                        min: 1,
                        max: 1,
                    });
                }
            }
            lit => pieces.push(Piece {
                atom: Atom::Lit(lit),
                min: 1,
                max: 1,
            }),
        }
    }
    pieces
}

fn sample_pieces(pieces: &[Piece], rng: &mut TestRng, out: &mut String) {
    for piece in pieces {
        let span = piece.max.saturating_sub(piece.min) as u64;
        let n = piece.min + rng.below(span + 1) as usize;
        for _ in 0..n {
            match &piece.atom {
                Atom::Class(members) => {
                    if !members.is_empty() {
                        out.push(members[rng.below(members.len() as u64) as usize]);
                    }
                }
                Atom::Any => {
                    // Printable ASCII 0x20..=0x7E.
                    out.push((0x20 + rng.below(0x5F) as u8) as char);
                }
                Atom::Lit(c) => out.push(*c),
                Atom::Group(alternatives) => {
                    let pick = rng.below(alternatives.len() as u64) as usize;
                    sample_pieces(&alternatives[pick], rng, out);
                }
            }
        }
    }
}

impl Strategy for str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        sample_pieces(&pieces, rng, &mut out);
        out
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(1) as u64;
                (self.start as i128 + rng.below(span as u64) as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() as i128 - *self.start() as i128 + 1).max(1) as u64;
                (*self.start() as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

// ---------------------------------------------------------------------------
// sample / collection strategies
// ---------------------------------------------------------------------------

/// `prop::sample` equivalents.
pub mod sample {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Uniformly select one of a fixed list of values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        Select { items }
    }

    /// Strategy returned by [`select`].
    #[derive(Debug, Clone)]
    pub struct Select<T: Clone> {
        items: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            assert!(!self.items.is_empty(), "select over empty list");
            self.items[rng.below(self.items.len() as u64) as usize].clone()
        }
    }
}

/// `proptest::collection` equivalents.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::collections::HashSet;
    use std::hash::Hash;
    use std::ops::Range;

    /// Generate a `HashSet` of `size`-range cardinality from an element strategy.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    /// Generate a `Vec` of `size`-range length from an element strategy.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let n = self.size.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy returned by [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let span = (self.size.end - self.size.start).max(1) as u64;
            let target = self.size.start + rng.below(span) as usize;
            let mut out = HashSet::with_capacity(target);
            let mut attempts = 0usize;
            while out.len() < target && attempts < target * 50 + 50 {
                out.insert(self.element.sample(rng));
                attempts += 1;
            }
            out
        }
    }
}

// ---------------------------------------------------------------------------
// Runner plumbing
// ---------------------------------------------------------------------------

/// Configuration accepted via `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated inputs.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

/// A failed property within a test case.
#[derive(Debug)]
pub struct TestCaseError {
    /// Human-readable description of the failed assertion.
    pub message: String,
}

impl TestCaseError {
    /// Build a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

/// Everything the generated tests need in scope.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest, ProptestConfig};

    /// Mirror of the `prop` root re-export in real proptest's prelude.
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Skip the current case when its inputs don't meet a precondition. The shim simply
/// ends the case successfully (no replacement case is generated).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Assert a boolean property; on failure the current case returns an error (and the
/// harness panics with the rendered message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality of two expressions (no move; compares by reference).
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{}` == `{}` (left: {:?}, right: {:?})",
                stringify!($a),
                stringify!($b),
                lhs,
                rhs
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$a, &$b);
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} (left: {:?}, right: {:?})",
                format!($($fmt)*),
                lhs,
                rhs
            )));
        }
    }};
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }` becomes a
/// `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run $cfg; $($rest)*);
    };
    (@run $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)*
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case + 1,
                            config.cases,
                            e.message
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run $crate::ProptestConfig::default(); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::strategy::Strategy;
    use super::TestRng;

    #[test]
    fn regex_class_with_range_and_quantifier() {
        let mut rng = TestRng::from_name("t1");
        for _ in 0..200 {
            let s = "[a-z]{2,8}".sample(&mut rng);
            assert!(s.len() >= 2 && s.len() <= 8, "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
    }

    #[test]
    fn class_with_leading_space_and_multiple_ranges() {
        let mut rng = TestRng::from_name("t2");
        for _ in 0..200 {
            let s = "[ a-zA-Z0-9]{0,40}".sample(&mut rng);
            assert!(s.len() <= 40);
            assert!(
                s.chars().all(|c| c == ' ' || c.is_ascii_alphanumeric()),
                "{s:?}"
            );
        }
    }

    #[test]
    fn dot_yields_printable_ascii() {
        let mut rng = TestRng::from_name("t3");
        for _ in 0..100 {
            let s = ".{0,120}".sample(&mut rng);
            assert!(s.len() <= 120);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }

    #[test]
    fn int_and_float_ranges() {
        let mut rng = TestRng::from_name("t4");
        for _ in 0..500 {
            let v = (1u32..40).sample(&mut rng);
            assert!((1..40).contains(&v));
            let f = (-1.0e6f64..1.0e6).sample(&mut rng);
            assert!((-1.0e6..1.0e6).contains(&f));
        }
    }

    #[test]
    fn hash_set_strategy_hits_target_sizes() {
        let mut rng = TestRng::from_name("t5");
        for _ in 0..50 {
            let s = crate::collection::hash_set("[a-z]{1,10}", 1..20).sample(&mut rng);
            assert!(!s.is_empty() && s.len() < 20);
        }
    }
}
