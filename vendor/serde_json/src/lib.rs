//! Vendored, dependency-free shim of the `serde_json` API surface this workspace
//! uses: the [`json!`] macro, [`to_string`] / [`to_string_pretty`] and the re-exported
//! [`Value`]. Backed by the in-memory JSON value of the sibling `serde` shim.

pub use serde::Value;

/// Error type for serialization; rendering an in-memory value cannot fail, so this is
/// only here to keep `Result`-shaped call sites compiling.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Convert any [`serde::Serialize`] value into a JSON [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_value().render(&mut out);
    Ok(out)
}

/// Render two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_value().render_indent(&mut out, Some(2), 0);
    Ok(out)
}

/// Build a JSON [`Value`] from literal-ish syntax. Supports objects with string-literal
/// keys, arrays, `null`, and arbitrary `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u32, "b": "x", "c": vec![1u32, 2u32] });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"a":1,"b":"x","c":[1,2]}"#
        );
        let pretty = crate::to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }
}
