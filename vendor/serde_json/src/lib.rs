//! Vendored, dependency-free shim of the `serde_json` API surface this workspace
//! uses: the [`json!`] macro, [`to_string`] / [`to_string_pretty`] and the re-exported
//! [`Value`]. Backed by the in-memory JSON value of the sibling `serde` shim.

pub use serde::Value;

/// Error type for serialization; rendering an in-memory value cannot fail, so this is
/// only here to keep `Result`-shaped call sites compiling.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json shim error")
    }
}

impl std::error::Error for Error {}

/// Convert any [`serde::Serialize`] value into a JSON [`Value`].
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.serialize_value()
}

/// Render compact JSON.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_value().render(&mut out);
    Ok(out)
}

/// Render two-space-indented JSON.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    value.serialize_value().render_indent(&mut out, Some(2), 0);
    Ok(out)
}

/// Parse a JSON document into a [`Value`].
///
/// A plain recursive-descent parser over the grammar the workspace emits (objects,
/// arrays, strings with the standard escapes, f64 numbers, booleans, null) — enough
/// to read back the `BENCH_*.json` reports the benches write, which is what the CI
/// bench-regression gate does.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    let value = parser.value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error);
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error)
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error)
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek().ok_or(Error)? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::String(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            _ => self.number(),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek().ok_or(Error)? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let escaped = self.peek().ok_or(Error)?;
                    self.pos += 1;
                    match escaped {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4).ok_or(Error)?;
                            let hex = std::str::from_utf8(hex).map_err(|_| Error)?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| Error)?;
                            self.pos += 4;
                            out.push(char::from_u32(code).ok_or(Error)?);
                        }
                        _ => return Err(Error),
                    }
                }
                _ => {
                    // Copy one UTF-8 scalar (multi-byte sequences pass through).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    let chunk =
                        std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| Error)?;
        text.parse::<f64>().map(Value::Number).map_err(|_| Error)
    }
}

/// Build a JSON [`Value`] from literal-ish syntax. Supports objects with string-literal
/// keys, arrays, `null`, and arbitrary `Serialize` expressions as values.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($item:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::to_value(&$item) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(::std::vec![
            $( (::std::string::String::from($key), $crate::to_value(&$val)) ),*
        ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn from_str_round_trips_bench_shaped_documents() {
        let text = r#"{
  "bench": "wand_topk",
  "records": 100000,
  "nested": { "speedup": 6.25, "ok": true, "none": null },
  "samples": [1, 2.5, -3e2],
  "escaped": "a\"b\\c\ndA"
}"#;
        let v = crate::from_str(text).expect("parses");
        assert_eq!(v.get("bench").and_then(Value::as_str), Some("wand_topk"));
        assert_eq!(v.get("records").and_then(Value::as_f64), Some(100000.0));
        let nested = v.get("nested").expect("nested object");
        assert_eq!(nested.get("speedup").and_then(Value::as_f64), Some(6.25));
        assert!(matches!(nested.get("ok"), Some(Value::Bool(true))));
        assert!(matches!(nested.get("none"), Some(Value::Null)));
        assert!(matches!(v.get("samples"), Some(Value::Array(items)) if items.len() == 3));
        assert_eq!(
            v.get("escaped").and_then(Value::as_str),
            Some("a\"b\\c\ndA")
        );
        // Render → parse → render is a fixed point.
        let rendered = crate::to_string(&v).unwrap();
        let reparsed = crate::from_str(&rendered).unwrap();
        assert_eq!(crate::to_string(&reparsed).unwrap(), rendered);
        // Malformed documents error instead of panicking.
        for bad in ["{", "[1,", "\"unterminated", "{\"a\" 1}", "tru", "1 2"] {
            assert!(crate::from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn json_macro_builds_objects() {
        let v = json!({ "a": 1u32, "b": "x", "c": vec![1u32, 2u32] });
        assert_eq!(
            crate::to_string(&v).unwrap(),
            r#"{"a":1,"b":"x","c":[1,2]}"#
        );
        let pretty = crate::to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": 1"));
    }
}
