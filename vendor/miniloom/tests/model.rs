//! Self-tests of the miniloom checker: it must *find* the classic bugs
//! (lost updates, ordering-dependent outcomes, deadlocks) and must *clear*
//! the correct protocols, exploring every schedule of small models.

use miniloom::sync::atomic::{AtomicU64, Ordering};
use miniloom::sync::Mutex;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Two atomic RMW increments never lose an update, under every schedule.
#[test]
fn atomic_fetch_add_never_loses_updates() {
    let report = miniloom::model(|| {
        let counter = Arc::new(AtomicU64::new(0));
        let other = Arc::clone(&counter);
        let t = miniloom::thread::spawn(move || {
            other.fetch_add(1, Ordering::Relaxed);
        });
        counter.fetch_add(1, Ordering::Relaxed);
        t.join().unwrap();
        assert_eq!(counter.load(Ordering::Relaxed), 2);
    });
    // Two single-op threads (plus the join/load tail) have at least both
    // relative orders of the RMWs; exploring only one would prove nothing.
    assert!(report.schedules >= 2, "explored {report}");
}

/// A non-atomic load-then-store increment *does* lose updates — the checker
/// must reach the interleaving where the final count is 1 (and also the one
/// where it is 2).
#[test]
fn checker_finds_the_lost_update_interleaving() {
    let outcomes = Arc::new(std::sync::Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    miniloom::model(move || {
        let counter = Arc::new(AtomicU64::new(0));
        let other = Arc::clone(&counter);
        let t = miniloom::thread::spawn(move || {
            let read = other.load(Ordering::SeqCst);
            other.store(read + 1, Ordering::SeqCst);
        });
        let read = counter.load(Ordering::SeqCst);
        counter.store(read + 1, Ordering::SeqCst);
        t.join().unwrap();
        sink.lock().unwrap().insert(counter.load(Ordering::SeqCst));
    });
    assert_eq!(
        *outcomes.lock().unwrap(),
        BTreeSet::from([1, 2]),
        "exhaustive exploration must reach both the lost-update and the clean outcome"
    );
}

/// Mutexed read-modify-write is exclusive: no schedule loses an update.
#[test]
fn mutex_serializes_critical_sections() {
    let report = miniloom::model(|| {
        let counter = Arc::new(Mutex::new(0_u64));
        let other = Arc::clone(&counter);
        let t = miniloom::thread::spawn(move || {
            let mut guard = other.lock();
            *guard += 1;
        });
        {
            let mut guard = counter.lock();
            *guard += 1;
        }
        t.join().unwrap();
        assert_eq!(*counter.lock(), 2);
    });
    assert!(report.schedules >= 2, "explored {report}");
}

/// AB–BA lock ordering deadlocks in some schedule; the checker must report
/// it (as a panic naming the deadlock) rather than hang.
#[test]
fn checker_reports_lock_order_deadlock() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        miniloom::model(|| {
            let a = Arc::new(Mutex::new(()));
            let b = Arc::new(Mutex::new(()));
            let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
            let t = miniloom::thread::spawn(move || {
                let _b = b2.lock();
                let _a = a2.lock();
            });
            let _a = a.lock();
            let _b = b.lock();
            drop(_b);
            drop(_a);
            t.join().unwrap();
        });
    }));
    let message = match result {
        Ok(_) => panic!("deadlock went undetected"),
        Err(payload) => payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default(),
    };
    assert!(
        message.contains("deadlock"),
        "panic should name the deadlock, got: {message}"
    );
}

/// An assertion that only fails under one specific interleaving is found,
/// and the report names a schedule.
#[test]
fn checker_finds_single_schedule_assertion_failures() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        miniloom::model(|| {
            let flag = Arc::new(AtomicU64::new(0));
            let flag2 = Arc::clone(&flag);
            let t = miniloom::thread::spawn(move || {
                flag2.store(1, Ordering::SeqCst);
            });
            // Bug under exactly one schedule: the child store may land first.
            assert_eq!(flag.load(Ordering::SeqCst), 0, "intentional model bug");
            t.join().unwrap();
        });
    }));
    assert!(result.is_err(), "the buggy interleaving must be reached");
}

/// Exhaustive exploration enumerates exactly the multiset permutations of
/// independent single-op threads: 3 threads × 1 op each = 3! orders of the
/// three stores (later decisions about the main thread's tail ops don't
/// branch, because only one thread is runnable once the others finished).
#[test]
fn exploration_counts_match_the_combinatorics() {
    let orders = Arc::new(std::sync::Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&orders);
    let report = miniloom::model(move || {
        let trace = Arc::new(Mutex::new(Vec::new()));
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let trace = Arc::clone(&trace);
                miniloom::thread::spawn(move || {
                    trace.lock().push(i);
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        sink.lock().unwrap().insert(trace.lock().clone());
    });
    assert_eq!(
        orders.lock().unwrap().len(),
        6,
        "all 3! arrival orders must be observed ({report})"
    );
}

/// The preemption bound prunes the schedule space but keeps bound-0 (the
/// non-preemptive serializations) intact.
#[test]
fn preemption_bound_prunes_but_keeps_serial_schedules() {
    let run = |bound: Option<u32>| {
        let outcomes = Arc::new(std::sync::Mutex::new(BTreeSet::new()));
        let sink = Arc::clone(&outcomes);
        let report = miniloom::Builder {
            preemption_bound: bound,
            ..miniloom::Builder::default()
        }
        .check(move || {
            let counter = Arc::new(AtomicU64::new(0));
            let other = Arc::clone(&counter);
            let t = miniloom::thread::spawn(move || {
                let read = other.load(Ordering::SeqCst);
                other.store(read + 1, Ordering::SeqCst);
            });
            let read = counter.load(Ordering::SeqCst);
            counter.store(read + 1, Ordering::SeqCst);
            t.join().unwrap();
            sink.lock().unwrap().insert(counter.load(Ordering::SeqCst));
        });
        (
            report.schedules,
            Arc::try_unwrap(outcomes).unwrap().into_inner().unwrap(),
        )
    };
    let (bounded_schedules, bounded_outcomes) = run(Some(0));
    let (full_schedules, full_outcomes) = run(None);
    assert!(bounded_schedules < full_schedules);
    assert_eq!(
        bounded_outcomes,
        BTreeSet::from([2]),
        "serial runs are clean"
    );
    assert_eq!(full_outcomes, BTreeSet::from([1, 2]));
}

/// Outside a model every shim passes through to std and just works.
#[test]
fn shims_pass_through_outside_a_model() {
    let counter = Arc::new(AtomicU64::new(41));
    assert_eq!(counter.fetch_add(1, Ordering::AcqRel), 41);
    assert_eq!(counter.load(Ordering::Acquire), 42);
    let mutex = Mutex::new(7);
    {
        let mut guard = mutex.lock();
        *guard += 1;
    }
    assert_eq!(mutex.into_inner(), 8);
    let handle = miniloom::thread::spawn(|| 3);
    assert_eq!(handle.join().unwrap(), 3);
}
