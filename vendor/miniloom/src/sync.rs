//! Shimmed synchronization primitives: model-aware atomics and a mutex.
//!
//! Inside a [`model`](crate::model) every operation is a scheduler yield
//! point executed under sequential consistency; outside, every operation is
//! an `#[inline]` passthrough to the `std` primitive with the caller's
//! orderings, so production code routed through these types pays nothing and
//! behaves identically.

use crate::scheduler;

/// Model-aware atomics mirroring `std::sync::atomic`.
pub mod atomic {
    use crate::scheduler;
    pub use std::sync::atomic::Ordering;

    /// Park at a scheduler yield point when executing inside a model.
    #[inline]
    fn maybe_yield() {
        if let Some((controller, id)) = scheduler::current() {
            controller.yield_point(id);
        }
    }

    /// True when the calling thread is executing inside a model (each modeled
    /// operation then runs `SeqCst` — see the crate docs).
    #[inline]
    fn modeled() -> bool {
        scheduler::current().is_some()
    }

    #[inline]
    fn upgrade(order: Ordering) -> Ordering {
        if modeled() {
            Ordering::SeqCst
        } else {
            order
        }
    }

    /// Upgrade a compare-exchange ordering pair, keeping the failure ordering
    /// legal (`SeqCst`/`SeqCst` is always a valid pair).
    #[inline]
    fn upgrade_pair(success: Ordering, failure: Ordering) -> (Ordering, Ordering) {
        if modeled() {
            (Ordering::SeqCst, Ordering::SeqCst)
        } else {
            (success, failure)
        }
    }

    macro_rules! shim_atomic {
        ($name:ident, $std:ty, $value:ty) => {
            /// Model-aware shim of the std atomic of the same name. Every
            /// operation is a scheduler yield point inside a model and an
            /// `#[inline]` passthrough outside one.
            #[derive(Debug, Default)]
            pub struct $name {
                inner: $std,
            }

            impl $name {
                /// Shim of the std constructor (usable in constants).
                pub const fn new(value: $value) -> Self {
                    $name {
                        inner: <$std>::new(value),
                    }
                }

                /// Shim of `load`.
                #[inline]
                pub fn load(&self, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.load(upgrade(order))
                }

                /// Shim of `store`.
                #[inline]
                pub fn store(&self, value: $value, order: Ordering) {
                    maybe_yield();
                    self.inner.store(value, upgrade(order))
                }

                /// Shim of `swap`.
                #[inline]
                pub fn swap(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.swap(value, upgrade(order))
                }

                /// Shim of `compare_exchange` (one atomic step in a model).
                #[inline]
                pub fn compare_exchange(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    maybe_yield();
                    let (success, failure) = upgrade_pair(success, failure);
                    self.inner.compare_exchange(current, new, success, failure)
                }

                /// Shim of `compare_exchange_weak`. Modeled without spurious
                /// failures (like loom): in a model this is the strong form.
                #[inline]
                pub fn compare_exchange_weak(
                    &self,
                    current: $value,
                    new: $value,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$value, $value> {
                    if modeled() {
                        self.compare_exchange(current, new, success, failure)
                    } else {
                        self.inner
                            .compare_exchange_weak(current, new, success, failure)
                    }
                }

                /// Shim of `fetch_update`. In a model this is honest about its
                /// non-atomicity: the load and each compare-exchange attempt
                /// are separate yield points, exactly like the std
                /// implementation's load + CAS loop interleaves for real.
                #[inline]
                pub fn fetch_update<F>(
                    &self,
                    set_order: Ordering,
                    fetch_order: Ordering,
                    mut f: F,
                ) -> Result<$value, $value>
                where
                    F: FnMut($value) -> Option<$value>,
                {
                    if modeled() {
                        let mut current = self.load(fetch_order);
                        loop {
                            let Some(new) = f(current) else {
                                return Err(current);
                            };
                            match self.compare_exchange(current, new, set_order, fetch_order) {
                                Ok(previous) => return Ok(previous),
                                Err(changed) => current = changed,
                            }
                        }
                    } else {
                        self.inner.fetch_update(set_order, fetch_order, f)
                    }
                }

                /// Consume the shim, returning the contained value.
                #[inline]
                pub fn into_inner(self) -> $value {
                    self.inner.into_inner()
                }
            }
        };
    }

    macro_rules! shim_atomic_arith {
        ($name:ident, $value:ty) => {
            impl $name {
                /// Shim of `fetch_add`.
                #[inline]
                pub fn fetch_add(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_add(value, upgrade(order))
                }

                /// Shim of `fetch_sub`.
                #[inline]
                pub fn fetch_sub(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_sub(value, upgrade(order))
                }

                /// Shim of `fetch_max`.
                #[inline]
                pub fn fetch_max(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_max(value, upgrade(order))
                }

                /// Shim of `fetch_min`.
                #[inline]
                pub fn fetch_min(&self, value: $value, order: Ordering) -> $value {
                    maybe_yield();
                    self.inner.fetch_min(value, upgrade(order))
                }
            }
        };
    }

    shim_atomic!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    shim_atomic!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    shim_atomic!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    shim_atomic!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    shim_atomic_arith!(AtomicU32, u32);
    shim_atomic_arith!(AtomicU64, u64);
    shim_atomic_arith!(AtomicUsize, usize);

    impl AtomicBool {
        /// Shim of `fetch_or`.
        #[inline]
        pub fn fetch_or(&self, value: bool, order: Ordering) -> bool {
            maybe_yield();
            self.inner.fetch_or(value, upgrade(order))
        }

        /// Shim of `fetch_and`.
        #[inline]
        pub fn fetch_and(&self, value: bool, order: Ordering) -> bool {
            maybe_yield();
            self.inner.fetch_and(value, upgrade(order))
        }
    }
}

/// A model-aware mutex with **poison-recovering** locking.
///
/// `lock` returns the guard directly instead of a `LockResult`: a poisoned
/// inner mutex is recovered via [`std::sync::PoisonError::into_inner`]. The
/// workspace uses this deliberately — every critical section protected by
/// these mutexes leaves its data structurally consistent at every await-free
/// point, so a panicked peer must degrade that one operation, not wedge every
/// future access (a cache shard poisoned by one panicking filler would
/// otherwise take down serving for good).
///
/// Inside a model, `lock` is a yield point and contention parks the thread
/// until the holder's guard drops, so lock-ordering deadlocks are detected
/// and reported with the schedule that produced them.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]. Dropping it unblocks model
/// threads parked on the same mutex.
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    /// `Option` only so `Drop` can release the std guard *before* notifying
    /// the scheduler (a woken thread must be able to win the lock).
    inner: Option<std::sync::MutexGuard<'a, T>>,
    /// Set only inside a model: the mutex identity to notify on release.
    released: Option<usize>,
}

impl<T> Mutex<T> {
    /// Shim of the std constructor.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// The mutex identity used by the scheduler's blocked-thread bookkeeping.
    /// Stable for the lifetime of the mutex (its address).
    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as usize
    }

    /// Acquire the lock (poison-recovering; see the type docs). Inside a
    /// model this is a yield point and may park the thread.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        if let Some((controller, id)) = scheduler::current() {
            controller.yield_point(id);
            loop {
                match self.inner.try_lock() {
                    Ok(guard) => {
                        return MutexGuard {
                            inner: Some(guard),
                            released: Some(self.addr()),
                        }
                    }
                    Err(std::sync::TryLockError::Poisoned(poisoned)) => {
                        return MutexGuard {
                            inner: Some(poisoned.into_inner()),
                            released: Some(self.addr()),
                        }
                    }
                    Err(std::sync::TryLockError::WouldBlock) => {
                        controller.block_on_mutex(id, self.addr());
                    }
                }
            }
        } else {
            MutexGuard {
                inner: Some(
                    self.inner
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner),
                ),
                released: None,
            }
        }
    }

    /// Consume the mutex, returning the protected value (poison-recovering).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (requires exclusive ownership;
    /// poison-recovering).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_deref()
            .expect("guard accessed after release (unreachable before drop)")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_deref_mut()
            .expect("guard accessed after release (unreachable before drop)")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the std lock *first*, then wake parked model threads: a
        // thread woken before the release would spuriously re-block.
        drop(self.inner.take());
        if let Some(addr) = self.released {
            if let Some((controller, _)) = scheduler::current() {
                controller.mutex_released(addr);
            }
        }
    }
}
