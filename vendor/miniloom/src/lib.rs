//! # miniloom — a vendored, minimal exhaustive-interleaving model checker
//!
//! A small, offline stand-in for [`loom`](https://docs.rs/loom) used by
//! `tests/interleavings.rs` to model-check the workspace's hand-rolled
//! concurrency protocols (`SharedThreshold`, `CircuitBreaker`, the
//! `AnswerCache` generation-stamp fill/lookup race).
//!
//! # What it checks
//!
//! [`model`] runs a closure over and over, once per distinct **thread
//! schedule**. Inside the closure, threads spawned with
//! [`thread::spawn`] and every operation on the shimmed
//! primitives ([`sync::atomic`], [`sync::Mutex`]) become *yield points*: the
//! scheduler serializes the whole execution and, at each yield point, chooses
//! which runnable thread performs its next operation. A depth-first search
//! over those choices enumerates **every interleaving** of the shimmed
//! operations (optionally bounded — see [`Builder::preemption_bound`]). Any
//! panic in any schedule is reported with the schedule that produced it, and
//! a schedule in which every unfinished thread is blocked panics with a
//! deadlock report.
//!
//! # What it does *not* check
//!
//! The exploration runs under **sequential consistency**: the `Ordering`
//! argument of the shimmed atomics is accepted (so production code compiles
//! unchanged) but every modeled operation is executed `SeqCst`. miniloom
//! therefore proves/refutes *interleaving* (atomicity, lost-update,
//! race-ordering, deadlock) properties, not weak-memory reordering ones —
//! that is exactly the class of property the repo's protocols claim (monotone
//! maxima, latching flags, stamp dominance), and the remaining
//! ordering-strength arguments are carried by the `// ordering:` comments the
//! `cqads-lint` rule enforces at every `Ordering::*` site. Like loom,
//! `compare_exchange_weak` is modeled without spurious failures.
//!
//! # Outside a model
//!
//! Every shim **passes straight through to `std`** (same orderings, same
//! poisoning-recovery behaviour, `#[inline]` delegation) when used outside
//! [`model`]. That lets production types route their atomics through a
//! `sync` facade module that re-exports these shims under a test-only cargo
//! feature: the code that runs in the model is byte-for-byte the code that
//! ships.
//!
//! ```
//! use miniloom::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! // Two racing fetch_adds can never lose an update, in any schedule.
//! let report = miniloom::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = miniloom::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     n.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(n.load(Ordering::Relaxed), 2);
//! });
//! assert!(report.schedules >= 2, "both orders of the two RMWs explored");
//! ```

#![forbid(unsafe_code)]

mod scheduler;
pub mod sync;
pub mod thread;

pub use scheduler::{Builder, Report};

/// Exhaustively explore every interleaving of the shimmed operations in `f`,
/// panicking (with the offending schedule) if any execution panics or
/// deadlocks. Equivalent to [`Builder::default()`]`.check(f)`.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Builder::default().check(f)
}
