//! The cooperative scheduler and its depth-first schedule exploration.
//!
//! One **execution** runs the model closure with every model thread mapped
//! onto a real OS thread that *parks itself* at each yield point (every
//! shimmed atomic/mutex operation). A scheduling decision is taken only when
//! no thread is running — i.e. every live thread is parked at a yield point
//! or blocked — so the execution is fully serialized and deterministic for a
//! given decision sequence, regardless of how the OS schedules the carrier
//! threads.
//!
//! Exploration is a classic DFS over the decision tree: each execution
//! follows the recorded decision prefix, extends it greedily (always picking
//! the lowest runnable thread id at a fresh decision), and on completion the
//! deepest decision with an untried alternative is advanced and everything
//! after it discarded. The search terminates when the root decision has no
//! untried alternative left.

use std::cell::RefCell;
use std::fmt;
use std::sync::{Arc, Condvar, Mutex, PoisonError};

/// What a model thread is doing, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Executing code between yield points; no decision may be taken.
    Running,
    /// Parked at a yield point, waiting to be granted a step.
    Parked,
    /// Waiting for a mutex (identified by address) to be released.
    BlockedOnMutex(usize),
    /// Waiting for another model thread to finish.
    BlockedOnJoin(usize),
    /// The thread's closure returned.
    Finished,
}

/// One explored decision: which of the runnable threads was stepped.
#[derive(Debug, Clone)]
struct Decision {
    /// Thread ids that were runnable at this point, ascending.
    runnable: Vec<usize>,
    /// Index into `runnable` of the thread that was stepped.
    index: usize,
}

/// Mutable scheduler state, shared by every carrier thread of one execution.
#[derive(Debug, Default)]
struct SchedState {
    threads: Vec<Status>,
    /// Decision prefix being replayed/extended this execution.
    path: Vec<Decision>,
    /// Next decision index to consume.
    cursor: usize,
    /// First panic observed in any model thread (message), if any.
    panicked: Option<String>,
    /// Becomes true when every registered thread has finished.
    done: bool,
}

impl SchedState {
    fn live_unfinished(&self) -> bool {
        self.threads.iter().any(|t| *t != Status::Finished)
    }

    /// Take a scheduling decision if no thread is running. Returns the woken
    /// thread id (for bookkeeping); `None` when a thread is still running,
    /// when everything is finished, or when the model deadlocked/panicked.
    fn maybe_schedule(&mut self, preemption_bound: Option<u32>) -> Option<usize> {
        if self.panicked.is_some() {
            return None;
        }
        if self.threads.contains(&Status::Running) {
            return None;
        }
        if !self.live_unfinished() {
            self.done = true;
            return None;
        }
        let runnable: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Status::Parked)
            .map(|(id, _)| id)
            .collect();
        if runnable.is_empty() {
            // Every unfinished thread is blocked: deadlock.
            self.panicked = Some(format!(
                "miniloom: deadlock — no runnable thread (threads: {:?}, schedule: {:?})",
                self.threads,
                self.chosen_prefix()
            ));
            return None;
        }
        let index = if self.cursor < self.path.len() {
            let decision = &self.path[self.cursor];
            if decision.runnable != runnable {
                self.panicked = Some(format!(
                    "miniloom: non-deterministic model — replaying decision {} expected \
                     runnable set {:?} but found {:?}; model closures must be deterministic \
                     apart from scheduling (no wall clocks, no ambient randomness)",
                    self.cursor, decision.runnable, runnable
                ));
                return None;
            }
            decision.index
        } else {
            // Fresh decision: continue the previously-stepped thread when a
            // preemption bound is active and already spent, else take the
            // lowest runnable id. The alternatives are visited by `advance`.
            let index = match preemption_bound {
                Some(bound) if self.preemptions_of_prefix(self.cursor) >= bound => {
                    self.forced_continuation(&runnable).unwrap_or(0)
                }
                _ => 0,
            };
            self.path.push(Decision {
                runnable: runnable.clone(),
                index,
            });
            index
        };
        self.cursor += 1;
        let chosen = runnable[index];
        self.threads[chosen] = Status::Running;
        Some(chosen)
    }

    /// Thread ids actually chosen along the explored prefix (for reports).
    fn chosen_prefix(&self) -> Vec<usize> {
        self.path
            .iter()
            .take(self.cursor)
            .map(|d| d.runnable[d.index])
            .collect()
    }

    /// Number of preemptions in the first `len` decisions of the path: a
    /// preemption is a decision that steps a different thread while the
    /// previously-stepped thread was still runnable.
    fn preemptions_of_prefix(&self, len: usize) -> u32 {
        let mut preemptions = 0;
        let mut previous: Option<usize> = None;
        for decision in self.path.iter().take(len) {
            let chosen = decision.runnable[decision.index];
            if let Some(prev) = previous {
                if prev != chosen && decision.runnable.contains(&prev) {
                    preemptions += 1;
                }
            }
            previous = Some(chosen);
        }
        preemptions
    }

    /// Index (into `runnable`) of the previously-stepped thread, when it is
    /// still runnable — the only bound-free continuation.
    fn forced_continuation(&self, runnable: &[usize]) -> Option<usize> {
        let last = self.cursor.checked_sub(1)?;
        let decision = self.path.get(last)?;
        let prev = decision.runnable[decision.index];
        runnable.iter().position(|id| *id == prev)
    }
}

/// The shared scheduler of one [`Builder::check`] call.
#[derive(Debug)]
pub(crate) struct Controller {
    state: Mutex<SchedState>,
    cv: Condvar,
    preemption_bound: Option<u32>,
}

/// Carrier threads recover the state lock on a peer's panic: the state is a
/// plain table that is never left half-updated across an `await`-less
/// critical section, and the first panic is already recorded for the report.
fn lock_state(controller: &Controller) -> std::sync::MutexGuard<'_, SchedState> {
    controller
        .state
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
}

impl Controller {
    fn new(preemption_bound: Option<u32>) -> Self {
        Controller {
            state: Mutex::new(SchedState::default()),
            cv: Condvar::new(),
            preemption_bound,
        }
    }

    /// Register a new model thread (starts Running); returns its id.
    pub(crate) fn register(&self) -> usize {
        let mut state = lock_state(self);
        state.threads.push(Status::Running);
        state.threads.len() - 1
    }

    /// Park `me` at a yield point and wait to be stepped again.
    pub(crate) fn yield_point(&self, me: usize) {
        let mut state = lock_state(self);
        state.threads[me] = Status::Parked;
        state.maybe_schedule(self.preemption_bound);
        self.cv.notify_all();
        while state.threads[me] != Status::Running {
            if state.panicked.is_some() {
                drop(state);
                panic!("miniloom: model aborted (another thread panicked)");
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Block `me` until the mutex identified by `addr` is released, then
    /// wait to be stepped. The caller retries its `try_lock` afterwards.
    pub(crate) fn block_on_mutex(&self, me: usize, addr: usize) {
        let mut state = lock_state(self);
        state.threads[me] = Status::BlockedOnMutex(addr);
        state.maybe_schedule(self.preemption_bound);
        self.cv.notify_all();
        while state.threads[me] != Status::Running {
            if state.panicked.is_some() {
                drop(state);
                panic!("miniloom: model aborted (another thread panicked)");
            }
            state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// A mutex guard dropped: every thread blocked on `addr` becomes
    /// runnable again (they re-attempt the lock when stepped).
    pub(crate) fn mutex_released(&self, addr: usize) {
        let mut state = lock_state(self);
        for status in state.threads.iter_mut() {
            if *status == Status::BlockedOnMutex(addr) {
                *status = Status::Parked;
            }
        }
        // The releasing thread is still Running; no decision is due yet.
        self.cv.notify_all();
    }

    /// Block `me` until model thread `target` finishes, then wait to be
    /// stepped again.
    pub(crate) fn join(&self, me: usize, target: usize) {
        let mut state = lock_state(self);
        if state.threads[target] != Status::Finished {
            state.threads[me] = Status::BlockedOnJoin(target);
            state.maybe_schedule(self.preemption_bound);
            self.cv.notify_all();
            while state.threads[me] != Status::Running {
                if state.panicked.is_some() {
                    drop(state);
                    panic!("miniloom: model aborted (another thread panicked)");
                }
                state = self.cv.wait(state).unwrap_or_else(PoisonError::into_inner);
            }
        }
    }

    /// Mark `me` finished and wake joiners.
    pub(crate) fn finish(&self, me: usize) {
        let mut state = lock_state(self);
        state.threads[me] = Status::Finished;
        for status in state.threads.iter_mut() {
            if *status == Status::BlockedOnJoin(me) {
                *status = Status::Parked;
            }
        }
        state.maybe_schedule(self.preemption_bound);
        self.cv.notify_all();
    }

    /// Record the first panic of a model thread and wake everyone so the
    /// execution can unwind.
    pub(crate) fn thread_panicked(&self, me: usize, message: String) {
        let mut state = lock_state(self);
        state.threads[me] = Status::Finished;
        if state.panicked.is_none() {
            state.panicked = Some(format!(
                "miniloom: model thread {me} panicked under schedule {:?}: {message}",
                state.chosen_prefix()
            ));
        }
        // Unblock everything: parked/blocked threads observe `panicked` and
        // unwind; the runner observes it and reports.
        for status in state.threads.iter_mut() {
            if *status != Status::Finished {
                *status = Status::Parked;
            }
        }
        state.done = true;
        self.cv.notify_all();
    }
}

thread_local! {
    /// The controller + thread id of the current carrier thread, when it is
    /// executing inside a model.
    static CONTEXT: RefCell<Option<(Arc<Controller>, usize)>> = const { RefCell::new(None) };
}

/// The current model context, if any. Shims call this to decide between the
/// scheduled path and the `std` passthrough.
pub(crate) fn current() -> Option<(Arc<Controller>, usize)> {
    CONTEXT.with(|ctx| ctx.borrow().clone())
}

/// Install the model context for the duration of `f` (carrier-thread body).
pub(crate) fn with_context<R>(controller: Arc<Controller>, id: usize, f: impl FnOnce() -> R) -> R {
    CONTEXT.with(|ctx| *ctx.borrow_mut() = Some((controller, id)));
    // The carrier thread is dedicated to this model thread and exits right
    // after `f`; clearing the slot on unwind is handled by thread exit.
    let result = f();
    CONTEXT.with(|ctx| *ctx.borrow_mut() = None);
    result
}

/// Exploration statistics returned by [`model`](crate::model) /
/// [`Builder::check`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Report {
    /// Distinct schedules (executions) explored.
    pub schedules: u64,
    /// Total scheduling decisions taken across all executions.
    pub decisions: u64,
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} schedules explored ({} decisions)",
            self.schedules, self.decisions
        )
    }
}

/// Configures a model-checking run. The default explores **exhaustively**.
#[derive(Debug, Clone)]
pub struct Builder {
    /// Abort (panic) if more than this many schedules would be explored —
    /// a guard rail that keeps accidental state-space blowups from hanging
    /// the test suite. Defaults to `1_000_000`.
    pub max_schedules: u64,
    /// When `Some(n)`, only explore schedules with at most `n` preemptions
    /// (context switches away from a still-runnable thread). `None` (the
    /// default) explores every schedule.
    pub preemption_bound: Option<u32>,
}

impl Default for Builder {
    fn default() -> Self {
        Builder {
            max_schedules: 1_000_000,
            preemption_bound: None,
        }
    }
}

impl Builder {
    /// Explore `f` under every (bounded) schedule; panic on any panic or
    /// deadlock in any execution, re-raising the first one observed.
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        let f: Arc<dyn Fn() + Send + Sync> = Arc::new(f);
        let mut path: Vec<Decision> = Vec::new();
        let mut report = Report {
            schedules: 0,
            decisions: 0,
        };
        loop {
            if report.schedules >= self.max_schedules {
                panic!(
                    "miniloom: exceeded max_schedules = {} — shrink the model \
                     (fewer threads/operations) or set a preemption_bound",
                    self.max_schedules
                );
            }
            let controller = Arc::new(Controller::new(self.preemption_bound));
            {
                let mut state = lock_state(&controller);
                state.path = std::mem::take(&mut path);
            }
            let explored = run_one(&controller, Arc::clone(&f));
            report.schedules += 1;
            report.decisions += explored.len() as u64;
            if let Some(message) = {
                let state = lock_state(&controller);
                state.panicked.clone()
            } {
                panic!("{message}\n(after {} schedules)", report.schedules);
            }
            path = explored;
            if !advance(&mut path, self.preemption_bound) {
                return report;
            }
        }
    }
}

/// Run one execution of the model under `controller`, returning the explored
/// decision path.
fn run_one(controller: &Arc<Controller>, f: Arc<dyn Fn() + Send + Sync>) -> Vec<Decision> {
    let id = controller.register();
    debug_assert_eq!(id, 0, "fresh controller starts with thread 0");
    let carrier = {
        let controller = Arc::clone(controller);
        std::thread::Builder::new()
            .name("miniloom-0".into())
            .spawn(move || {
                let sentinel = PanicSentinel {
                    controller: Arc::clone(&controller),
                    id,
                };
                with_context(Arc::clone(&controller), id, || f());
                sentinel.disarm_and_finish();
            })
            .expect("miniloom: failed to spawn carrier thread")
    };
    // Wait until every model thread has finished (or the model panicked).
    {
        let mut state = lock_state(controller);
        while !state.done {
            state = controller
                .cv
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
    let _ = carrier.join();
    let state = lock_state(controller);
    state.path.clone()
}

/// Reports a carrier thread's panic to the controller from `Drop`, so model
/// panics abort the whole execution instead of hanging the scheduler. No
/// `catch_unwind` needed (and none allowed under `forbid(unsafe_code)`'s
/// spirit of simplicity): the sentinel is disarmed on the normal path.
pub(crate) struct PanicSentinel {
    pub(crate) controller: Arc<Controller>,
    pub(crate) id: usize,
}

impl PanicSentinel {
    pub(crate) fn disarm_and_finish(self) {
        self.controller.finish(self.id);
        std::mem::forget(self);
    }
}

impl Drop for PanicSentinel {
    fn drop(&mut self) {
        // Only reached when the model thread is unwinding.
        let message = if std::thread::panicking() {
            "panic in model thread (see stderr for the original message)".to_string()
        } else {
            "model thread exited without disarming its sentinel".to_string()
        };
        self.controller.thread_panicked(self.id, message);
    }
}

/// Advance `path` to the next unexplored schedule (DFS backtrack). Returns
/// false when the whole (bounded) tree has been explored.
fn advance(path: &mut Vec<Decision>, preemption_bound: Option<u32>) -> bool {
    while let Some(last) = path.pop() {
        for index in (last.index + 1)..last.runnable.len() {
            let candidate = Decision {
                runnable: last.runnable.clone(),
                index,
            };
            path.push(candidate);
            match preemption_bound {
                Some(bound) if prefix_preemptions(path) > bound => {
                    path.pop();
                    continue;
                }
                _ => return true,
            }
        }
    }
    false
}

/// Preemption count of a complete candidate prefix (see
/// [`SchedState::preemptions_of_prefix`]).
fn prefix_preemptions(path: &[Decision]) -> u32 {
    let mut preemptions = 0;
    let mut previous: Option<usize> = None;
    for decision in path {
        let chosen = decision.runnable[decision.index];
        if let Some(prev) = previous {
            if prev != chosen && decision.runnable.contains(&prev) {
                preemptions += 1;
            }
        }
        previous = Some(chosen);
    }
    preemptions
}
