//! Model-aware `thread::spawn`/`JoinHandle` shims.
//!
//! Inside a [`model`](crate::model), spawning registers a new model thread
//! with the scheduler and runs it on a dedicated carrier thread that parks at
//! every shimmed operation; `join` blocks the joining model thread until the
//! target finishes (a scheduler-visible blocking edge, so join cycles are
//! reported as deadlocks). Outside a model both delegate to `std::thread`.

use crate::scheduler::{self, PanicSentinel};
use std::sync::Arc;

/// Handle to a spawned (model or plain) thread.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<T>,
    /// Model thread id when spawned inside a model.
    model_id: Option<usize>,
}

/// Spawn a thread. Inside a model the child is scheduler-controlled; outside
/// it is a plain `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    if let Some((controller, _me)) = scheduler::current() {
        let id = controller.register();
        let carrier_controller = Arc::clone(&controller);
        let inner = std::thread::Builder::new()
            .name(format!("miniloom-{id}"))
            .spawn(move || {
                let sentinel = PanicSentinel {
                    controller: Arc::clone(&carrier_controller),
                    id,
                };
                let result = scheduler::with_context(carrier_controller, id, f);
                sentinel.disarm_and_finish();
                result
            })
            .expect("miniloom: failed to spawn carrier thread");
        JoinHandle {
            inner,
            model_id: Some(id),
        }
    } else {
        JoinHandle {
            inner: std::thread::spawn(f),
            model_id: None,
        }
    }
}

impl<T> JoinHandle<T> {
    /// Wait for the thread to finish and return its result. Inside a model
    /// this blocks the *model* thread via the scheduler first, so the wait
    /// participates in deadlock detection; the underlying OS join then
    /// completes immediately.
    pub fn join(self) -> std::thread::Result<T> {
        if let (Some(target), Some((controller, me))) = (self.model_id, scheduler::current()) {
            controller.join(me, target);
        }
        self.inner.join()
    }
}
