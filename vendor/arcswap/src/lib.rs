//! # arcswap — a vendored, offline stand-in for the `arc-swap` crate
//!
//! An [`ArcSwap<T>`] holds an `Arc<T>` that writers replace atomically while
//! readers keep loading without ever waiting on a writer's *work*. The API is
//! compatible with the subset of the real [`arc-swap`](https://docs.rs/arc-swap)
//! crate this workspace uses — [`ArcSwap::new`], [`load`](ArcSwap::load)
//! (returning a [`Guard`] that derefs to the `Arc`),
//! [`load_full`](ArcSwap::load_full), [`store`](ArcSwap::store) and
//! [`swap`](ArcSwap::swap)
//! — so swapping in the registry crate later is a one-line `Cargo.toml` edit.
//!
//! # How it stays safe without `unsafe`
//!
//! The real crate juggles raw pointers and deferred reference counts; this
//! workspace forbids `unsafe_code`, so the shim uses a **slot ring** instead:
//!
//! * `SLOTS` mutex-guarded slots each hold an `Arc<T>`.
//! * An atomic `current` index names the published slot.
//! * [`load`](ArcSwap::load) reads `current` (`Acquire`) and locks *that slot
//!   only* for the O(1) duration of an `Arc::clone`.
//! * A writer serializes on a cursor mutex, installs the new `Arc` into the
//!   **next** slot (whose mutex is uncontended unless a reader has been
//!   lapped), then publishes the new index with a `Release` store.
//!
//! A reader therefore never blocks on snapshot *construction* — the writer
//! builds the new value before touching the ring — and can only contend on a
//! mutex held for a single refcount increment. That is the precise sense in
//! which readers are "wait-free against writers": the unbounded work happens
//! outside every lock a reader can touch.
//!
//! Readers are **monotone**: the slot a reader locks can only ever be
//! overwritten by a writer that already published *newer* values, so a load
//! returns the value current at the index read or a newer one — never an
//! older or partially-written ("torn") one. `tests/interleavings.rs` at the
//! workspace root model-checks exactly this claim under the `miniloom`
//! feature, which reroutes the primitives below through the vendored
//! model checker's shims.
//!
//! ```
//! use arcswap::ArcSwap;
//! use std::sync::Arc;
//!
//! let swap = ArcSwap::new(Arc::new(1u64));
//! let before = swap.load();
//! swap.store(Arc::new(2));
//! assert_eq!(**before, 1, "guards pin the value they loaded");
//! assert_eq!(**swap.load(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;

use sync::atomic::{AtomicUsize, Ordering};
use sync::Mutex;

#[cfg(feature = "miniloom")]
use miniloom::sync;

#[cfg(not(feature = "miniloom"))]
mod sync {
    //! Production facade: `std` atomics plus a poison-recovering mutex,
    //! API-identical to `miniloom::sync` so the `miniloom` cargo feature can
    //! swap the whole module and model-check the *shipping* swap protocol.

    pub use std::sync::atomic;
    use std::sync::PoisonError;

    /// Thin wrapper over [`std::sync::Mutex`] whose `lock` recovers from
    /// poisoning. Slot critical sections only clone or replace an `Arc`, so
    /// a panicked peer cannot leave a slot structurally inconsistent.
    #[derive(Debug, Default)]
    pub struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard returned by [`Mutex::lock`].
    pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

    impl<T> Mutex<T> {
        /// Wrap `value`.
        pub const fn new(value: T) -> Self {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Acquire the lock, recovering the guard from a poisoned peer.
        #[inline]
        pub fn lock(&self) -> MutexGuard<'_, T> {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }
}

/// Ring size. Two would be correct; four keeps the writer from lapping a
/// reader (and momentarily blocking it on the slot mutex) unless the writer
/// publishes three times inside the reader's two-instruction load window.
const SLOTS: usize = 4;

/// An atomically swappable `Arc<T>`. See the [crate docs](crate) for the
/// slot-ring design and the guarantees readers get.
pub struct ArcSwap<T> {
    /// The ring; every slot always holds a fully-constructed snapshot.
    slots: [Mutex<Arc<T>>; SLOTS],
    /// Index of the published slot. Written only by writers holding
    /// `cursor`, read lock-free by every `load`.
    current: AtomicUsize,
    /// Serializes writers; never touched by readers.
    cursor: Mutex<()>,
}

/// A loaded snapshot, pinning the `Arc` current at load time (or a newer
/// one — see the [crate docs](crate) on monotonicity). Derefs to the `Arc`,
/// matching the real crate's `Guard`.
pub struct Guard<T> {
    inner: Arc<T>,
}

impl<T> ArcSwap<T> {
    /// Wrap `value` as the initially published snapshot.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            slots: [
                Mutex::new(Arc::clone(&value)),
                Mutex::new(Arc::clone(&value)),
                Mutex::new(Arc::clone(&value)),
                Mutex::new(value),
            ],
            current: AtomicUsize::new(0),
            cursor: Mutex::new(()),
        }
    }

    /// Construct from a bare value (`arc-swap` convenience constructor).
    pub fn from_pointee(value: T) -> Self {
        ArcSwap::new(Arc::new(value))
    }

    /// Load the published snapshot. Lock-free except for the O(1) clone
    /// under the published slot's mutex; never waits on a writer building a
    /// new snapshot.
    pub fn load(&self) -> Guard<T> {
        // ordering: Acquire pairs with the writer's Release publish of
        // `current`, so the slot it names already holds the new Arc.
        let idx = self.current.load(Ordering::Acquire);
        let inner = Arc::clone(&self.slots[idx].lock());
        Guard { inner }
    }

    /// Load and return an owned `Arc` (a [`load`](ArcSwap::load) without the
    /// guard wrapper).
    pub fn load_full(&self) -> Arc<T> {
        self.load().inner
    }

    /// Publish `new`, dropping the replaced snapshot's ring reference.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Publish `new` and return the snapshot it replaced.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let cursor = self.cursor.lock();
        // ordering: Relaxed suffices under the cursor mutex — only writers
        // store `current`, and they are serialized right here.
        let cur = self.current.load(Ordering::Relaxed);
        let next = (cur + 1) % SLOTS;
        let previous = Arc::clone(&self.slots[cur].lock());
        let lapped = {
            let mut slot = self.slots[next].lock();
            std::mem::replace(&mut *slot, new)
        };
        // ordering: Release publishes the slot write above to every reader
        // that Acquire-loads the new index.
        self.current.store(next, Ordering::Release);
        drop(cursor);
        // The ring reference from SLOTS publishes ago dies outside every
        // lock a reader can touch.
        drop(lapped);
        previous
    }
}

impl<T: fmt::Debug> fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ArcSwap")
            .field("current", &self.load_full())
            .finish_non_exhaustive()
    }
}

impl<T> From<Arc<T>> for ArcSwap<T> {
    fn from(value: Arc<T>) -> Self {
        ArcSwap::new(value)
    }
}

impl<T> std::ops::Deref for Guard<T> {
    type Target = Arc<T>;

    fn deref(&self) -> &Arc<T> {
        &self.inner
    }
}

impl<T> Guard<T> {
    /// Unwrap into the pinned `Arc`.
    pub fn into_inner(self) -> Arc<T> {
        self.inner
    }
}

impl<T: fmt::Debug> fmt::Debug for Guard<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&self.inner, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_sees_the_latest_store() {
        let swap = ArcSwap::from_pointee(0u32);
        for i in 1..=10 {
            swap.store(Arc::new(i));
            assert_eq!(**swap.load(), i);
        }
    }

    #[test]
    fn guards_pin_across_swaps() {
        let swap = ArcSwap::from_pointee(String::from("old"));
        let pinned = swap.load();
        let previous = swap.swap(Arc::new(String::from("new")));
        assert_eq!(**pinned, "old");
        assert_eq!(*previous, "old");
        assert_eq!(**swap.load(), "new");
    }

    #[test]
    fn writer_laps_never_tear_or_regress() {
        let swap = ArcSwap::from_pointee(0usize);
        // Publish far more than SLOTS values; every load between publishes
        // must observe exactly the latest.
        for i in 1..(SLOTS * 8) {
            swap.store(Arc::new(i));
            assert_eq!(**swap.load(), i);
        }
    }

    #[test]
    fn concurrent_readers_observe_monotone_values() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let swap = Arc::new(ArcSwap::from_pointee(0u64));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let swap = Arc::clone(&swap);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        let seen = **swap.load();
                        assert!(seen >= last, "regressed from {last} to {seen}");
                        last = seen;
                    }
                })
            })
            .collect();
        for i in 1..=1000 {
            swap.store(Arc::new(i));
        }
        stop.store(true, Ordering::Relaxed);
        for reader in readers {
            reader.join().expect("reader panicked");
        }
    }
}
