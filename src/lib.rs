//! Umbrella crate for the CQAds reproduction workspace.
//!
//! This crate re-exports the public surface of every member crate so that the
//! root-level `examples/` and `tests/` directories can exercise the whole system
//! through a single dependency. Downstream users should normally depend on the
//! individual crates (`cqads`, `addb`, ...) instead.

#![forbid(unsafe_code)]

pub use addb;
pub use cqads;
pub use cqads_baselines as baselines;
pub use cqads_classifier as classifier;
pub use cqads_datagen as datagen;
pub use cqads_eval as eval;
pub use cqads_querylog as querylog;
pub use cqads_storage as storage;
pub use cqads_text as text;
pub use cqads_wordsim as wordsim;
