//! Crash-recovery property tests: a durable [`CqadsSystem`] cut off at an
//! arbitrary WAL byte offset must reopen to exactly the state of the longest
//! fully-persisted mutation prefix, without panicking, and without any
//! generation counter regressing below a stamp the crashed process durably
//! handed out. Recovery must also be idempotent: opening twice lands on the
//! same state, generations included.

use cqads_suite::addb::{Record, Table};
use cqads_suite::cqads::domain::toy_car_domain;
use cqads_suite::cqads::{CqadsConfig, CqadsSystem, StorageOptions};
use cqads_suite::querylog::{QueryLogDelta, Session, SubmittedQuery, TIMatrix};
use cqads_suite::storage::{scan_frames, MemFs};
use cqads_suite::wordsim::WordSimMatrix;
use proptest::prelude::*;
use std::path::Path;
use std::sync::Arc;

const DOMAIN: &str = "cars";
const MAKES: [&str; 4] = ["honda", "toyota", "ford", "chevy"];
const MODELS: [&str; 4] = ["accord", "camry", "focus", "civic"];
const COLORS: [&str; 3] = ["blue", "red", "gold"];

/// One WAL-frame-sized mutation: every variant appends exactly one frame, so
/// frame `i` of the log is mutation `i` and a byte cut maps 1:1 onto a
/// mutation-prefix cut.
#[derive(Debug, Clone)]
enum Mutation {
    Insert {
        make: u8,
        model: u8,
        color: u8,
        price: u32,
    },
    Ingest {
        from: u8,
        to: u8,
    },
    SetWordSim {
        a: u8,
        b: u8,
        weight: u8,
    },
    ReRegister {
        rows: u8,
    },
}

fn car(make: u8, model: u8, color: u8, price: u32) -> Record {
    Record::builder()
        .text("make", MAKES[make as usize % MAKES.len()])
        .text("model", MODELS[model as usize % MODELS.len()])
        .text("color", COLORS[color as usize % COLORS.len()])
        .text("transmission", "automatic")
        .number("price", price as f64)
        .number("year", 2004.0)
        .number("mileage", 50_000.0)
        .build()
}

fn base_table(rows: u8) -> Table {
    let spec = toy_car_domain();
    let mut table = Table::new(spec.schema.clone());
    for i in 0..rows {
        table
            .insert(car(i, i.wrapping_add(1), i, 4_000 + 100 * i as u32))
            .unwrap();
    }
    table
}

fn apply(system: &mut CqadsSystem, mutation: &Mutation) {
    match mutation {
        Mutation::Insert {
            make,
            model,
            color,
            price,
        } => {
            system
                .insert_record(DOMAIN, car(*make, *model, *color, *price))
                .unwrap();
        }
        Mutation::Ingest { from, to } => {
            let delta = QueryLogDelta::from_sessions(vec![Session {
                user_id: 1,
                queries: vec![
                    SubmittedQuery {
                        value: MODELS[*from as usize % MODELS.len()].into(),
                        at_seconds: 0.0,
                        clicks: vec![],
                        shown: vec![],
                    },
                    SubmittedQuery {
                        value: MODELS[*to as usize % MODELS.len()].into(),
                        at_seconds: 3.0,
                        clicks: vec![],
                        shown: vec![],
                    },
                ],
            }]);
            system.ingest_query_log(DOMAIN, &delta).unwrap();
        }
        Mutation::SetWordSim { a, b, weight } => {
            let mut ws = WordSimMatrix::default();
            ws.insert(
                COLORS[*a as usize % COLORS.len()],
                COLORS[*b as usize % COLORS.len()],
                0.1 + (*weight as f64) / 512.0,
            );
            system.try_set_word_sim(ws).unwrap();
        }
        Mutation::ReRegister { rows } => {
            system
                .try_add_domain(
                    toy_car_domain(),
                    base_table(2 + rows % 3),
                    TIMatrix::default(),
                )
                .unwrap();
        }
    }
}

/// Weighted mutation generator (the vendored proptest shim has no
/// `prop_oneof`/`prop_map`, so the strategy samples directly).
#[derive(Debug, Clone)]
struct MutationStrategy;

impl Strategy for MutationStrategy {
    type Value = Mutation;
    fn sample(&self, rng: &mut proptest::TestRng) -> Mutation {
        match rng.below(9) {
            0..=3 => Mutation::Insert {
                make: rng.below(4) as u8,
                model: rng.below(4) as u8,
                color: rng.below(3) as u8,
                price: 1_000 + rng.below(39_000) as u32,
            },
            4..=6 => Mutation::Ingest {
                from: rng.below(4) as u8,
                to: rng.below(4) as u8,
            },
            7 => Mutation::SetWordSim {
                a: rng.below(3) as u8,
                b: rng.below(3) as u8,
                weight: rng.below(256) as u8,
            },
            _ => Mutation::ReRegister {
                rows: rng.below(3) as u8,
            },
        }
    }
}

fn durable_config(fs: &Arc<MemFs>) -> CqadsConfig {
    let mut opts = StorageOptions::with_vfs("db", Arc::clone(fs) as _);
    // No rotation: the whole history stays in wal-000000.log so a byte cut
    // maps directly onto a frame-prefix cut. No audits: only mutations write.
    opts.snapshot_every = 0;
    opts.audit_queries = false;
    CqadsConfig {
        storage: Some(opts),
        ..CqadsConfig::default()
    }
}

/// The observable state the recovery contract promises to restore.
fn observable(system: &CqadsSystem) -> (Vec<(u32, Record)>, Vec<String>, String) {
    let table = system.database().table(DOMAIN).unwrap();
    let rows: Vec<(u32, Record)> = table.iter().map(|(id, r)| (id.0, r.clone())).collect();
    let answers: Vec<String> = system
        .answer_in_domain("blue automatic cars", DOMAIN)
        .unwrap()
        .answers
        .iter()
        .map(|a| format!("{:?}:{:?}:{}", a.id, a.kind, a.rank_sim.to_bits()))
        .collect();
    let sql = system
        .answer_in_domain("cheapest honda", DOMAIN)
        .unwrap()
        .sql;
    (rows, answers, sql)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Crash at an arbitrary WAL byte offset, reopen, and the recovered
    /// system equals the in-memory system that applied only the surviving
    /// mutation prefix; generations never regress; recovery is idempotent.
    #[test]
    fn any_wal_cut_recovers_the_exact_mutation_prefix(
        mutations in prop::collection::vec(MutationStrategy, 1..10),
        cut_fraction in 0.0f64..1.0,
    ) {
        // Run the full mutation history against a durable system, recording
        // the generation stamp after every mutation.
        let fs = Arc::new(MemFs::default());
        let mut durable = CqadsSystem::try_with_config(durable_config(&fs)).unwrap();
        durable
            .try_add_domain(toy_car_domain(), base_table(3), TIMatrix::default())
            .unwrap();
        let mut stamps = vec![(
            durable.database().generation(DOMAIN).unwrap(),
            durable.model_generation(DOMAIN).unwrap(),
        )];
        for mutation in &mutations {
            apply(&mut durable, mutation);
            stamps.push((
                durable.database().generation(DOMAIN).unwrap(),
                durable.model_generation(DOMAIN).unwrap(),
            ));
        }

        // Crash: the WAL survives only up to an arbitrary byte offset.
        let wal = Path::new("db/wal-000000.log");
        let bytes = fs.file_bytes(wal).unwrap();
        let cut = (bytes.len() as f64 * cut_fraction) as u64;
        fs.truncate_file(wal, cut).unwrap();

        // Frame i of the log is mutation i (frame 0 = the registration), so
        // the number of complete frames before the cut tells us exactly which
        // mutation prefix must come back.
        let surviving = scan_frames(&bytes[..cut as usize]).payloads.len();

        // Reference: a memory-only system that applies just that prefix.
        let reopened = CqadsSystem::try_with_config(durable_config(&fs)).unwrap();
        prop_assert_eq!(
            reopened.domain_names(),
            if surviving == 0 { Vec::<&str>::new() } else { vec![DOMAIN] }
        );
        if surviving > 0 {
            let mut reference = CqadsSystem::new();
            reference.try_add_domain(toy_car_domain(), base_table(3), TIMatrix::default()).unwrap();
            for mutation in &mutations[..surviving - 1] {
                apply(&mut reference, mutation);
            }
            prop_assert_eq!(observable(&reference), observable(&reopened));

            // Generation floor: every stamp the crashed process durably
            // handed out (i.e. after its last fully-persisted mutation) is
            // covered by the recovered counters.
            let (table_floor, model_floor) = stamps[surviving - 1];
            prop_assert!(reopened.database().generation(DOMAIN).unwrap() >= table_floor);
            prop_assert!(reopened.model_generation(DOMAIN).unwrap() >= model_floor);

            // Double recovery is idempotent, generations included.
            let again = CqadsSystem::try_with_config(durable_config(&fs)).unwrap();
            prop_assert_eq!(observable(&reopened), observable(&again));
            prop_assert_eq!(
                reopened.database().generation(DOMAIN),
                again.database().generation(DOMAIN)
            );
            prop_assert_eq!(reopened.model_generation(DOMAIN), again.model_generation(DOMAIN));
        }
    }

    /// Flipping one arbitrary bit anywhere in the WAL never panics the
    /// recovery path, and everything from the corrupt frame onward is cut.
    #[test]
    fn any_single_bit_flip_recovers_a_valid_prefix(
        mutations in prop::collection::vec(MutationStrategy, 1..6),
        flip_fraction in 0.0f64..1.0,
    ) {
        let fs = Arc::new(MemFs::default());
        let mut durable = CqadsSystem::try_with_config(durable_config(&fs)).unwrap();
        durable
            .try_add_domain(toy_car_domain(), base_table(3), TIMatrix::default())
            .unwrap();
        for mutation in &mutations {
            apply(&mut durable, mutation);
        }
        let wal = Path::new("db/wal-000000.log");
        let len = fs.file_bytes(wal).unwrap().len() as u64;
        let offset = ((len.saturating_sub(1)) as f64 * flip_fraction) as u64;
        fs.flip_bit(wal, offset).unwrap();

        let reopened = CqadsSystem::try_with_config(durable_config(&fs)).unwrap();
        let report = reopened.storage_report().unwrap();
        // The flipped byte invalidates its frame's CRC (or a length prefix),
        // so recovery reports the defect and drops the tail; the survivors
        // still answer questions.
        prop_assert!(!report.is_clean());
        if !reopened.domain_names().is_empty() {
            let _ = observable(&reopened);
        }
    }
}
