//! Chaos tests for the resilience layer: injected deadlines, injected storage
//! faults and concurrent admission — every degraded path must stay *explicit*
//! (invariant #6: no silently short, silently stale or silently lossy answer),
//! and with resilience disabled the system must stay byte-identical to the
//! plain pipeline.
//!
//! Deterministic by construction: time comes from injected clocks (a deadline
//! only expires when the test's clock says so) and faults from [`FaultFs`]
//! plans. Run single-threaded (`RUST_TEST_THREADS=1`) in CI's chaos job so
//! fault schedules never interleave across tests.

use cqads_suite::addb::{Record, Table};
use cqads_suite::cqads::domain::toy_car_domain;
use cqads_suite::cqads::{
    AnswerQuality, CqadsConfig, CqadsError, CqadsSystem, QueryBudget, ResilienceOptions,
    ShardedCqads, StorageOptions,
};
use cqads_suite::querylog::TIMatrix;
use cqads_suite::storage::{
    FaultFs, FaultPlan, ManualClock, MemFs, RetryClock, RetryOptions, RetryPolicy, Vfs,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const DOMAIN: &str = "cars";

/// Questions that exercise the partial-match phase (scarce exact answers), a
/// single-condition WAND run, the degree-of-match fallback and an exact hit.
const QUESTIONS: [&str; 5] = [
    "Find Honda Accord blue less than 15,000 dollars",
    "mustang",
    "blue toyota camry",
    "red honda accord under 3000 dollars",
    "blue automatic cars",
];

fn car(make: &str, model: &str, color: &str, price: f64) -> Record {
    Record::builder()
        .text("make", make)
        .text("model", model)
        .text("color", color)
        .text("transmission", "automatic")
        .number("price", price)
        .number("year", 2005.0)
        .number("mileage", 60_000.0)
        .build()
}

fn base_table() -> Table {
    let spec = toy_car_domain();
    let mut table = Table::new(spec.schema.clone());
    for (make, model, color, price) in [
        ("honda", "accord", "blue", 16_536.0),
        ("honda", "accord", "gold", 6_600.0),
        ("toyota", "camry", "blue", 8_561.0),
        ("chevy", "malibu", "blue", 5_899.0),
        ("ford", "mustang", "red", 21_000.0),
    ] {
        table.insert(car(make, model, color, price)).unwrap();
    }
    table
}

fn system_with(config: CqadsConfig) -> CqadsSystem {
    let mut system = CqadsSystem::try_with_config(config).unwrap();
    system
        .try_add_domain(toy_car_domain(), base_table(), TIMatrix::default())
        .unwrap();
    system
}

/// Fingerprint an answer burst down to rank-score bits, so "byte-identical"
/// is literal.
fn fingerprint(results: &[Result<Arc<cqads_suite::cqads::AnswerSet>, CqadsError>]) -> Vec<String> {
    results
        .iter()
        .map(|r| match r {
            Err(e) => format!("err:{e}"),
            Ok(set) => {
                let answers: Vec<String> = set
                    .answers
                    .iter()
                    .map(|a| format!("{}:{:?}:{}", a.id.0, a.kind, a.rank_sim.to_bits()))
                    .collect();
                format!("{:?}|{}|{}", set.quality, set.sql, answers.join(","))
            }
        })
        .collect()
}

/// A clock that jumps forward by a mutable step on every read: step 0 freezes
/// time (nothing ever expires), a large step expires any deadline at the next
/// cooperative checkpoint.
#[derive(Debug, Default)]
struct StepClock {
    now: AtomicU64,
    step: AtomicU64,
}

impl StepClock {
    fn set_step(&self, step: u64) {
        self.step.store(step, Ordering::Relaxed);
    }
}

impl RetryClock for StepClock {
    fn now_micros(&self) -> u64 {
        self.now
            .fetch_add(self.step.load(Ordering::Relaxed), Ordering::Relaxed)
    }
    fn sleep_micros(&self, micros: u64) {
        self.now.fetch_add(micros, Ordering::Relaxed);
    }
}

#[test]
fn resilience_with_no_deadline_and_no_faults_is_byte_identical() {
    let plain = system_with(CqadsConfig::default());
    let resilient = system_with(CqadsConfig {
        resilience: Some(ResilienceOptions::default()),
        ..CqadsConfig::default()
    });
    let a = plain.answer_batch(&QUESTIONS);
    let b = resilient.answer_batch(&QUESTIONS);
    assert_eq!(fingerprint(&a), fingerprint(&b));
    for r in &b {
        assert!(r.as_ref().unwrap().quality.is_complete());
    }
    let stats = resilient.serving_stats();
    assert_eq!(stats.shed, 0);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.stale_served, 0);
    assert_eq!(stats.pressure_level, 0);
}

#[test]
fn expiring_deadline_flags_every_short_answer_as_degraded() {
    let clock = Arc::new(StepClock::default());
    clock.set_step(1_000);
    let resilient = system_with(CqadsConfig {
        resilience: Some(ResilienceOptions {
            deadline_micros: Some(5),
            serve_stale_on_timeout: false,
            clock: Arc::clone(&clock) as Arc<dyn RetryClock>,
            ..ResilienceOptions::default()
        }),
        ..CqadsConfig::default()
    });
    let plain = system_with(CqadsConfig::default());
    let full = plain.answer_batch(&QUESTIONS);
    let cut = resilient.answer_batch(&QUESTIONS);

    let mut saw_degraded = false;
    for (got, complete) in cut.iter().zip(&full) {
        let got = got.as_ref().unwrap();
        let complete = complete.as_ref().unwrap();
        // Degradation is always explicit: an answer list shorter than the
        // complete one must carry the Degraded flag...
        if got.answers.len() < complete.answers.len() {
            assert!(
                matches!(
                    got.quality,
                    AnswerQuality::Degraded {
                        budget_exhausted: true,
                        ..
                    }
                ),
                "silently short answer: {:?}",
                got.quality
            );
            saw_degraded = true;
        }
        // ...and whatever is served is the certified prefix of the complete
        // answer, bit for bit.
        for (x, y) in got.answers.iter().zip(&complete.answers) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.rank_sim.to_bits(), y.rank_sim.to_bits());
        }
    }
    assert!(saw_degraded, "a 5-microsecond deadline must cut something");
    let stats = resilient.serving_stats();
    assert!(stats.degraded > 0);
    assert_eq!(stats.degraded, resilient.serving_stats().degraded);
}

#[test]
fn stale_cached_answer_is_served_flagged_when_deadline_cuts() {
    let clock = Arc::new(StepClock::default());
    let resilient = system_with(CqadsConfig {
        resilience: Some(ResilienceOptions {
            deadline_micros: Some(1_000),
            serve_stale_on_timeout: true,
            clock: Arc::clone(&clock) as Arc<dyn RetryClock>,
            ..ResilienceOptions::default()
        }),
        ..CqadsConfig::default()
    });
    let question = ["Find Honda Accord blue less than 15,000 dollars"];

    // Frozen clock: the deadline never expires, the answer completes and
    // fills the cache.
    let fresh = resilient.answer_batch(&question);
    let fresh = fresh[0].as_ref().unwrap();
    assert!(fresh.quality.is_complete());

    // A new record bumps the generation: the cached entry is now stale.
    let mut resilient = resilient;
    resilient
        .insert_record(DOMAIN, car("honda", "accord", "red", 9_000.0))
        .unwrap();

    // Expire the deadline at the first checkpoint: the fresh path is cut, and
    // the generation-stale cached answer is served — explicitly flagged.
    clock.set_step(1_000_000);
    let stale = resilient.answer_batch(&question);
    let stale = stale[0].as_ref().unwrap();
    assert_eq!(stale.quality, AnswerQuality::Stale);
    // The stale answer is the cached one, verbatim.
    assert_eq!(stale.answers.len(), fresh.answers.len());
    for (x, y) in stale.answers.iter().zip(&fresh.answers) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.rank_sim.to_bits(), y.rank_sim.to_bits());
    }
    let stats = resilient.serving_stats();
    assert!(stats.stale_served >= 1);
    assert!(stats.degraded >= 1, "stale serving still counts the cut");

    // The stale answer must not have been re-cached as fresh: answering with
    // a frozen clock recomputes a complete answer that sees the new record.
    clock.set_step(0);
    let recomputed = resilient.answer_batch(&question);
    let recomputed = recomputed[0].as_ref().unwrap();
    assert!(recomputed.quality.is_complete());
    assert!(
        recomputed.answers.len() >= fresh.answers.len(),
        "the complete answer sees the inserted record"
    );
}

#[test]
fn sustained_pressure_steps_the_deadline_down_and_recovery_steps_back_up() {
    let clock = Arc::new(StepClock::default());
    clock.set_step(1_000);
    let resilient = system_with(CqadsConfig {
        resilience: Some(ResilienceOptions {
            deadline_micros: Some(8_000),
            serve_stale_on_timeout: false,
            step_down_after: 2,
            max_step_down: 2,
            min_deadline_micros: 1,
            clock: Arc::clone(&clock) as Arc<dyn RetryClock>,
            ..ResilienceOptions::default()
        }),
        ..CqadsConfig::default()
    });
    for _ in 0..4 {
        let _ = resilient.answer_batch(&QUESTIONS);
    }
    assert!(
        resilient.serving_stats().pressure_level >= 1,
        "consecutive degraded batches must step the deadline down"
    );
    // Freeze the clock: batches run clean again and pressure recovers.
    clock.set_step(0);
    for _ in 0..8 {
        let _ = resilient.answer_batch(&QUESTIONS);
    }
    assert_eq!(resilient.serving_stats().pressure_level, 0);
}

#[test]
fn concurrent_admission_sheds_whole_batches_and_recovers() {
    let resilient = system_with(CqadsConfig {
        resilience: Some(ResilienceOptions {
            max_in_flight: 1,
            ..ResilienceOptions::default()
        }),
        ..CqadsConfig::default()
    });
    let barrier = std::sync::Barrier::new(4);
    let outcomes: Vec<Vec<Result<_, _>>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(|| {
                    barrier.wait();
                    resilient.answer_batch(&QUESTIONS)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let mut shed_batches = 0u64;
    for batch in &outcomes {
        let sheds = batch
            .iter()
            .filter(|r| matches!(r, Err(CqadsError::Overloaded)))
            .count();
        // Shedding is all-or-nothing per batch: either every question was
        // rejected before any work, or none was.
        assert!(sheds == 0 || sheds == batch.len());
        if sheds > 0 {
            shed_batches += 1;
        }
    }
    assert_eq!(resilient.serving_stats().shed, shed_batches);
    // The permit released: a later batch is admitted and completes.
    let after = resilient.answer_batch(&QUESTIONS);
    assert!(after.iter().all(|r| r.is_ok()));
}

fn durable_config(fault: &Arc<FaultFs>, retry: Option<RetryOptions>) -> CqadsConfig {
    let mut opts = StorageOptions::with_vfs("db", Arc::clone(fault) as Arc<dyn Vfs>);
    opts.snapshot_every = 0;
    opts.audit_queries = true;
    opts.retry = retry;
    CqadsConfig {
        storage: Some(opts),
        ..CqadsConfig::default()
    }
}

fn test_retry(clock: &Arc<ManualClock>) -> RetryOptions {
    RetryOptions {
        policy: RetryPolicy {
            attempts: 3,
            base_delay_micros: 10,
            max_delay_micros: 1_000,
            jitter_seed: 7,
        },
        breaker_threshold: 2,
        breaker_cooldown_micros: 1_000,
        clock: Arc::clone(clock) as Arc<dyn RetryClock>,
    }
}

#[test]
fn transient_wal_fault_is_retried_and_lands_exactly_once() {
    let mem = Arc::new(MemFs::default());
    let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
    let clock = Arc::new(ManualClock::new());
    let mut system = system_with(durable_config(&fault, Some(test_retry(&clock))));
    let rows_before = system.database().table(DOMAIN).unwrap().len();

    // One clean transient failure: the retry layer absorbs it.
    fault.set_plan(FaultPlan {
        fail_appends: 1,
        ..FaultPlan::default()
    });
    system
        .insert_record(DOMAIN, car("honda", "civic", "red", 7_500.0))
        .unwrap();
    let stats = system.serving_stats();
    assert_eq!(stats.wal_retries, 1);
    assert_eq!(stats.breaker_opens, 0);

    // Exactly once: recovery replays the WAL and sees the row a single time.
    drop(system);
    let reopened = system_with_existing(durable_config(&fault, Some(test_retry(&clock))));
    let table = reopened.database().table(DOMAIN).unwrap();
    assert_eq!(table.len(), rows_before + 1);
    assert_eq!(
        table
            .iter()
            .filter(|(_, r)| r.get_text("model") == Some("civic"))
            .count(),
        1
    );
}

/// Reopen against an existing store (no re-registration).
fn system_with_existing(config: CqadsConfig) -> CqadsSystem {
    CqadsSystem::try_with_config(config).unwrap()
}

#[test]
fn persistent_wal_faults_trip_the_breaker_which_cools_down_and_closes() {
    let mem = Arc::new(MemFs::default());
    let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
    let clock = Arc::new(ManualClock::new());
    let mut system = system_with(durable_config(&fault, Some(test_retry(&clock))));

    // Fail always: every insert exhausts its 3 attempts; after 2 exhausted
    // calls the breaker opens.
    fault.set_plan(FaultPlan {
        fail_appends: u32::MAX,
        ..FaultPlan::default()
    });
    for _ in 0..2 {
        let err = system
            .insert_record(DOMAIN, car("ford", "focus", "blue", 4_200.0))
            .unwrap_err();
        assert!(matches!(err, CqadsError::Storage(_)));
    }
    let stats = system.serving_stats();
    assert_eq!(stats.breaker_opens, 1);
    assert_eq!(stats.wal_retries, 4, "two calls x two retries each");

    // Open breaker: the next call is rejected fast, without touching the
    // (still faulty) filesystem.
    let err = system
        .insert_record(DOMAIN, car("ford", "focus", "blue", 4_300.0))
        .unwrap_err();
    assert!(
        err.to_string().contains("circuit breaker open"),
        "fast rejection is typed: {err}"
    );
    assert!(system.serving_stats().breaker_rejections >= 1);

    // Cooldown passes, the backend heals: the half-open probe succeeds and
    // the breaker closes fully.
    clock.advance(1_000);
    fault.set_plan(FaultPlan::default());
    system
        .insert_record(DOMAIN, car("ford", "focus", "gold", 4_400.0))
        .unwrap();
    assert_eq!(system.serving_stats().breaker_opens, 1, "no re-open");
}

#[test]
fn audit_appends_ride_the_same_retry_layer() {
    let mem = Arc::new(MemFs::default());
    let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
    let clock = Arc::new(ManualClock::new());
    let system = system_with(durable_config(&fault, Some(test_retry(&clock))));

    // A transient blip during the burst's audit append: retried, not counted
    // as a failure.
    fault.set_plan(FaultPlan {
        fail_appends: 1,
        ..FaultPlan::default()
    });
    let results = system.answer_batch(&QUESTIONS);
    assert!(results.iter().all(|r| r.is_ok()));
    assert_eq!(system.audit_failures(), 0, "the retry absorbed the blip");
    assert!(system.serving_stats().wal_retries >= 1);
}

/// One insert step of the proptest schedule: how many clean transient append
/// failures to arm immediately before it.
#[derive(Debug, Clone)]
struct FaultSchedule;

impl Strategy for FaultSchedule {
    type Value = u32;
    fn sample(&self, rng: &mut proptest::TestRng) -> u32 {
        // 0..=2 transient failures; retry attempts = 3, so every schedule is
        // absorbable.
        rng.below(3) as u32
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Under any absorbable schedule of transient WAL faults, every insert
    /// succeeds, lands exactly once, and the recovered state equals a
    /// fault-free in-memory reference.
    #[test]
    fn any_absorbable_fault_schedule_preserves_exactly_once(
        schedule in prop::collection::vec(FaultSchedule, 1..8),
    ) {
        let mem = Arc::new(MemFs::default());
        let fault = Arc::new(FaultFs::new(Arc::clone(&mem) as Arc<dyn Vfs>));
        let clock = Arc::new(ManualClock::new());
        let mut durable = system_with(durable_config(&fault, Some(test_retry(&clock))));
        let mut reference = system_with(CqadsConfig::default());

        let mut expected_retries = 0u64;
        for (i, &blips) in schedule.iter().enumerate() {
            fault.set_plan(FaultPlan { fail_appends: blips, ..FaultPlan::default() });
            let record = car("honda", "civic", "blue", 5_000.0 + i as f64);
            durable.insert_record(DOMAIN, record.clone()).unwrap();
            reference.insert_record(DOMAIN, record).unwrap();
            expected_retries += u64::from(blips);
        }
        prop_assert_eq!(durable.serving_stats().wal_retries, expected_retries);
        prop_assert_eq!(durable.serving_stats().breaker_opens, 0);

        // Reopen: the recovered table equals the fault-free reference, row
        // for row — no lost and no duplicated frames.
        fault.set_plan(FaultPlan::default());
        drop(durable);
        let reopened = system_with_existing(durable_config(&fault, Some(test_retry(&clock))));
        let got: Vec<(u32, Record)> = reopened
            .database().table(DOMAIN).unwrap()
            .iter().map(|(id, r)| (id.0, r.clone())).collect();
        let want: Vec<(u32, Record)> = reference
            .database().table(DOMAIN).unwrap()
            .iter().map(|(id, r)| (id.0, r.clone())).collect();
        prop_assert_eq!(got, want);
    }

    /// A deadline cut at an arbitrary point never produces a silently short
    /// answer: each result is either complete and byte-identical to the
    /// unbounded run, or flagged and a bit-identical prefix of it.
    #[test]
    fn any_deadline_cut_yields_a_flagged_certified_prefix(
        survive_reads in 0u64..60,
    ) {
        let clock = Arc::new(StepClock::default());
        clock.set_step(1);
        let resilient = system_with(CqadsConfig {
            resilience: Some(ResilienceOptions {
                deadline_micros: Some(survive_reads),
                serve_stale_on_timeout: false,
                clock: Arc::clone(&clock) as Arc<dyn RetryClock>,
                ..ResilienceOptions::default()
            }),
            ..CqadsConfig::default()
        });
        let plain = system_with(CqadsConfig::default());
        let full = plain.answer_batch(&QUESTIONS);
        let cut = resilient.answer_batch(&QUESTIONS);
        for (got, complete) in cut.iter().zip(&full) {
            let got = got.as_ref().unwrap();
            let complete = complete.as_ref().unwrap();
            prop_assert!(got.answers.len() <= complete.answers.len());
            if got.answers.len() < complete.answers.len() {
                prop_assert!(!got.quality.is_complete());
            }
            if got.quality.is_complete() {
                prop_assert_eq!(got.answers.len(), complete.answers.len());
            }
            for (x, y) in got.answers.iter().zip(&complete.answers) {
                prop_assert_eq!(x.id, y.id);
                prop_assert_eq!(x.rank_sim.to_bits(), y.rank_sim.to_bits());
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sharded serving: a cut shard degrades only its own contribution
// ---------------------------------------------------------------------------

/// One shard exhausting its [`QueryBudget`] mid-scatter must degrade only its
/// contribution: the gathered answer is a certified prefix of the complete
/// (unbudgeted) answer with [`AnswerQuality::Degraded`] propagated — never a
/// silent partial merge — and the exact phase survives intact because budgets
/// only govern the partial engines.
#[test]
fn one_shards_exhausted_budget_degrades_only_its_contribution() {
    let mut sharded = ShardedCqads::new(2).unwrap();
    sharded.add_domain(toy_car_domain(), base_table(), TIMatrix::default());
    let clock = Arc::new(ManualClock::new());

    for q in QUESTIONS {
        let complete = sharded.answer_in_domain(q, DOMAIN).unwrap();
        assert!(complete.quality.is_complete());

        // Cancel each shard's budget in turn; the other shard stays whole.
        for cut_shard in 0..2 {
            let budget = QueryBudget::new(Arc::clone(&clock) as Arc<dyn RetryClock>, 1_000_000);
            budget.cancel();
            let mut budgets: Vec<Option<&QueryBudget>> = vec![None, None];
            budgets[cut_shard] = Some(&budget);
            let cut = sharded
                .answer_in_domain_budgeted(q, DOMAIN, &budgets)
                .unwrap();

            // Explicit degradation or byte-identical completeness — never a
            // silently short answer.
            assert!(cut.answers.len() <= complete.answers.len());
            if cut.answers.len() < complete.answers.len() {
                assert!(
                    matches!(
                        cut.quality,
                        AnswerQuality::Degraded {
                            budget_exhausted: true,
                            ..
                        }
                    ),
                    "silent partial merge on {q:?} (cut shard {cut_shard}): {:?}",
                    cut.quality
                );
            }
            // The gathered answer is a certified prefix of the complete one.
            assert_eq!(cut.exact_count, complete.exact_count, "{q:?}");
            for (x, y) in cut.answers.iter().zip(&complete.answers) {
                assert_eq!(x.id, y.id, "{q:?} diverged beyond truncation");
                assert_eq!(x.kind, y.kind);
                assert_eq!(x.rank_sim.to_bits(), y.rank_sim.to_bits());
            }
        }

        // An expired budget on every shard still yields the certified-prefix
        // contract (the fully-cut scatter is the worst case, not a special one).
        let budget = QueryBudget::new(Arc::clone(&clock) as Arc<dyn RetryClock>, 1_000_000);
        budget.cancel();
        let budgets: Vec<Option<&QueryBudget>> = vec![Some(&budget), Some(&budget)];
        let cut = sharded
            .answer_in_domain_budgeted(q, DOMAIN, &budgets)
            .unwrap();
        assert!(cut.answers.len() <= complete.answers.len());
        for (x, y) in cut.answers.iter().zip(&complete.answers) {
            assert_eq!(x.id, y.id);
            assert_eq!(x.rank_sim.to_bits(), y.rank_sim.to_bits());
        }
    }
}
