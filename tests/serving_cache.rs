//! Serving-layer tests: the generation-invalidated answer cache under concurrent
//! readers and interleaved inserts.
//!
//! The load-bearing property: once a table's mutation generation has advanced past
//! the generation a cached answer was stamped with, that answer is **never served
//! again**. The tests build tables where every record matches the probe question
//! exactly, so `exact_count == generation` is the precise freshness oracle: an
//! answer computed against a snapshot at generation `G` has exactly `G` exact
//! answers. Concurrent serving uses the reader/writer handle split — detached
//! [`CqadsReader`]s race a mutating [`CqadsWriter`] with **no lock around the
//! system** — so a reader brackets each answer between two snapshot-generation
//! reads and requires `gen_before <= exact_count <= gen_after` (snapshots are
//! monotone: fresher than requested is possible, staler is not).

use cqads_suite::addb::{Record, Table};
use cqads_suite::cqads::domain::toy_car_domain;
use cqads_suite::cqads::{CqadsReader, CqadsSystem, CqadsWriter};
use cqads_suite::querylog::{QueryLogDelta, QueryLogStream, Session, SubmittedQuery};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

fn car(price: f64) -> Record {
    Record::builder()
        .text("make", "honda")
        .text("model", "accord")
        .text("color", "blue")
        .text("transmission", "automatic")
        .number("price", price)
        .number("year", 2005.0)
        .number("mileage", 60_000.0)
        .build()
}

/// A system whose "cars" table holds `initial` records, every one an exact match for
/// `PROBE` — so an answer's `exact_count` equals the generation it was computed at.
fn all_match_system(initial: usize) -> CqadsSystem {
    let spec = toy_car_domain();
    let mut table = Table::new(spec.schema.clone());
    for i in 0..initial {
        table.insert(car(5_000.0 + i as f64)).unwrap();
    }
    let mut system = CqadsSystem::new();
    system.add_domain(spec, table, Default::default());
    system
}

const PROBE: &str = "blue automatic honda accord";

#[test]
fn insert_invalidates_cached_answers_even_when_the_record_is_unrelated() {
    let mut sys = all_match_system(3);
    let first = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert_eq!(first.exact_count, 3);
    let hit = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert!(Arc::ptr_eq(&first, &hit));

    // Insert a record that does NOT match the probe: the cache has no way to know
    // that, so the generation stamp must still force a recompute (conservative,
    // never stale).
    sys.insert_record(
        "cars",
        Record::builder()
            .text("make", "ford")
            .text("model", "focus")
            .text("color", "red")
            .text("transmission", "manual")
            .number("price", 4_000.0)
            .build(),
    )
    .unwrap();
    let refreshed = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert!(!Arc::ptr_eq(&first, &refreshed), "stale answer served");
    assert_eq!(refreshed.exact_count, 3, "unrelated record must not match");
    assert_eq!(sys.cache_stats().stale_evictions, 1);

    // Inserting through database_mut() (bypassing insert_record) invalidates too:
    // the generation lives on the table itself.
    sys.database_mut()
        .table_mut("cars")
        .unwrap()
        .insert(car(9_999.0))
        .unwrap();
    let after = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert_eq!(after.exact_count, 4, "insert via database_mut not observed");
}

/// Mirror of the insert-invalidation test for the *model* side of the stamp: a
/// streamed query-log delta must invalidate cached answers even though the table
/// never changed — the cached ranking was computed by an older TI-matrix.
#[test]
fn ingested_query_log_delta_invalidates_cached_answers() {
    let mut sys = all_match_system(3);
    let first = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    let hit = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert!(Arc::ptr_eq(&first, &hit));
    let stale_before = sys.cache_stats().stale_evictions;

    // Live traffic arrives session by session; the stream batches it into deltas.
    let mut stream = QueryLogStream::new(2);
    let session = |user_id: u64, from: &str, to: &str| Session {
        user_id,
        queries: vec![
            SubmittedQuery {
                value: from.into(),
                at_seconds: 0.0,
                clicks: vec![],
                shown: vec![from.into(), to.into()],
            },
            SubmittedQuery {
                value: to.into(),
                at_seconds: 45.0,
                clicks: vec![],
                shown: vec![to.into()],
            },
        ],
    };
    assert!(stream.push(session(1, "accord", "camry")).is_none());
    let delta = stream
        .push(session(2, "accord", "civic"))
        .expect("second session fills the batch");

    let report = sys.ingest_query_log("cars", &delta).unwrap();
    assert_eq!(report.sessions, 2);
    assert_eq!(sys.model_generation("cars"), Some(report.model_generation));
    // The table is untouched: only the model component of the stamp advanced.
    assert_eq!(sys.database().generation("cars"), Some(3));

    // The cached entry must be evicted as stale, not served.
    let refreshed = sys.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert!(!Arc::ptr_eq(&first, &refreshed), "stale ranking served");
    assert_eq!(sys.cache_stats().stale_evictions, stale_before + 1);
    // Recompute equals a from-scratch answer under the updated matrix.
    let scratch = sys.answer_in_domain(PROBE, "cars").unwrap();
    assert_eq!(refreshed.exact_count, scratch.exact_count);
    assert_eq!(refreshed.answers.len(), scratch.answers.len());

    // The batch front-end observes the new generation too: warm it, ingest the
    // flushed remainder of the stream, and require a recompute.
    let warm = sys.answer_batch(&[PROBE]).remove(0).unwrap();
    stream.push(session(3, "camry", "corolla"));
    let tail = stream.flush().expect("one buffered session");
    assert_eq!(tail.len(), 1);
    sys.ingest_query_log("cars", &tail).unwrap();
    let fresh = sys.answer_batch(&[PROBE]).remove(0).unwrap();
    assert!(
        !Arc::ptr_eq(&warm, &fresh),
        "answer_batch served a stale-model answer"
    );

    // An empty delta still bumps the generation (conservative) — and errors on
    // unknown domains.
    let generation = sys.model_generation("cars").unwrap();
    sys.ingest_query_log("cars", &QueryLogDelta::default())
        .unwrap();
    assert_eq!(sys.model_generation("cars"), Some(generation + 1));
    assert!(sys
        .ingest_query_log("boats", &QueryLogDelta::default())
        .is_err());
}

#[test]
fn answer_batch_reflects_inserts_between_bursts() {
    let mut sys = all_match_system(2);
    let burst = [PROBE, "cheapest honda", PROBE];
    let cold = sys.answer_batch(&burst);
    assert_eq!(cold[0].as_ref().unwrap().exact_count, 2);
    assert!(Arc::ptr_eq(
        cold[0].as_ref().unwrap(),
        cold[2].as_ref().unwrap()
    ));

    // Warm burst: pure hits.
    let hits_before = sys.cache_stats().hits;
    let warm = sys.answer_batch(&burst);
    assert!(Arc::ptr_eq(
        cold[0].as_ref().unwrap(),
        warm[0].as_ref().unwrap()
    ));
    assert!(sys.cache_stats().hits > hits_before);

    // Insert between bursts: every answer of the next burst must see 3 records.
    sys.insert_record("cars", car(8_888.0)).unwrap();
    let fresh = sys.answer_batch(&burst);
    assert_eq!(fresh[0].as_ref().unwrap().exact_count, 3);
    assert!(!Arc::ptr_eq(
        cold[0].as_ref().unwrap(),
        fresh[0].as_ref().unwrap()
    ));
    // The cheapest-honda answer was also recomputed (generation is per-table, so the
    // whole domain's cached set invalidates).
    assert!(!Arc::ptr_eq(
        cold[1].as_ref().unwrap(),
        fresh[1].as_ref().unwrap()
    ));
}

/// Parallel readers racing a writer never observe a pre-insert answer once the
/// generation has advanced — with **no lock around the system**: each reader is a
/// detached [`CqadsReader`] serving from the published snapshot while the
/// [`CqadsWriter`] ingests. Snapshots are monotone, so each reader brackets its
/// answer between two generation reads and requires
/// `gen_before <= exact_count <= gen_after` (staler than requested is impossible;
/// fresher — a newer snapshot or a newer cached answer — is fine), for both the
/// single-question cached path and the batch front-end.
#[test]
fn concurrent_readers_never_observe_stale_answers_across_inserts() {
    const INITIAL: usize = 4;
    const INSERTS: usize = 12;
    const READERS: usize = 4;

    let mut writer: CqadsWriter = all_match_system(INITIAL).into_writer();
    let reader = writer.reader();
    let done = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..READERS)
        .map(|r| {
            let reader: CqadsReader = reader.clone();
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut iterations = 0usize;
                let mut hits_seen = 0u64;
                let mut last_gen = 0u64;
                while !done.load(Ordering::Acquire) || iterations < 3 {
                    // Bracket the answer between two snapshot loads: the answer's
                    // generation must fall inside the bracket.
                    let gen_before = reader.table_generation("cars").unwrap();
                    assert!(
                        gen_before >= last_gen,
                        "reader {r} saw the snapshot generation regress: {last_gen} -> {gen_before}"
                    );
                    last_gen = gen_before;
                    let answer = if r % 2 == 0 {
                        reader.answer_in_domain_cached(PROBE, "cars").unwrap()
                    } else {
                        reader.answer_batch(&[PROBE]).remove(0).unwrap()
                    };
                    let gen_after = reader.table_generation("cars").unwrap();
                    assert!(
                        (gen_before..=gen_after).contains(&(answer.exact_count as u64)),
                        "reader {r} observed an answer outside its snapshot bracket: \
                         {} not in {gen_before}..={gen_after}",
                        answer.exact_count
                    );
                    hits_seen = reader.cache_stats().hits;
                    iterations += 1;
                    std::thread::yield_now();
                }
                (iterations, hits_seen)
            })
        })
        .collect();

    for i in 0..INSERTS {
        // Each insert republishes the snapshot; readers pick it up on their
        // next load without ever blocking on the insert's work.
        writer
            .insert_record("cars", car(10_000.0 + i as f64))
            .unwrap();
        std::thread::yield_now();
    }
    done.store(true, Ordering::Release);

    let mut total_iterations = 0usize;
    let mut hits = 0u64;
    for handle in readers {
        let (iterations, hits_seen) = handle.join().expect("reader panicked");
        assert!(iterations >= 3);
        total_iterations += iterations;
        hits = hits.max(hits_seen);
    }
    assert!(total_iterations >= READERS * 3);
    // The cache did real work during the run (repeat questions between inserts hit).
    assert!(hits > 0, "cache never hit during the concurrent run");

    let final_answer = reader.answer_in_domain_cached(PROBE, "cars").unwrap();
    assert_eq!(final_answer.exact_count, INITIAL + INSERTS);
    // No stale answer was ever *served*; stale entries were evicted by stamp checks.
    let stats = reader.cache_stats();
    assert!(stats.stale_evictions > 0 || stats.misses > stats.hits);
}
