//! Workspace-level property-based tests over the public API: arbitrary questions must
//! never panic, and core invariants must hold for whatever the generators produce.

use cqads_suite::addb::{Executor, IdStream, PostingList, RecordId, ScoredUnion};
use cqads_suite::cqads::tagging::Tagger;
use cqads_suite::cqads::translate::interpret;
use cqads_suite::cqads::{
    AnswerSet, CqadsConfig, CqadsResult, CqadsSystem, CqadsWriter, PartialMatchOptions,
    PartialMatcher, ShardedCqads, SimilarityModel,
};
use cqads_suite::datagen::{
    affinity_model, blueprint, generate_questions, generate_table, topic_groups, QuestionMix,
};
use cqads_suite::querylog::{
    generate_log, AffinityModel, ClickEvent, LogGeneratorConfig, QueryLogDelta, Session,
    SubmittedQuery, TIMatrix,
};
use cqads_suite::wordsim::{CorpusSpec, SyntheticCorpus, WordSimMatrix};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::collections::HashSet;
use std::sync::Arc;
use std::sync::OnceLock;

fn car_system() -> &'static CqadsSystem {
    static SYSTEM: OnceLock<CqadsSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 150, 77);
        let mut system = CqadsSystem::new();
        system.add_domain(bp.to_spec(), table, TIMatrix::default());
        system
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipeline never panics on arbitrary free text and never exceeds the answer cap.
    #[test]
    fn arbitrary_text_never_panics(question in ".{0,80}") {
        let sys = car_system();
        if let Ok(set) = sys.answer_in_domain(&question, "cars") {
            prop_assert!(set.answers.len() <= 30);
            prop_assert!(set.exact_count <= set.answers.len());
        }
    }

    /// The snapshot read path (a detached [`CqadsReader`] serving from the
    /// published snapshot) is byte-identical to the facade path (the writer's
    /// master state) for arbitrary questions: same error variant or same SQL,
    /// ids, match kinds and bit-exact `Rank_Sim` scores. This is the handle
    /// split's core contract — publication must never change an answer.
    #[test]
    fn snapshot_read_path_is_byte_identical_to_the_facade_path(question in ".{0,80}") {
        let sys = car_system();
        let reader = sys.reader();
        let direct = sys.answer_in_domain(&question, "cars");
        let snapped = reader.ask(&question).domain("cars").uncached().get();
        match (direct, snapped) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(&a.sql, &b.sql);
                prop_assert_eq!(a.exact_count, b.exact_count);
                prop_assert_eq!(a.answers.len(), b.answers.len());
                for (x, y) in a.answers.iter().zip(&b.answers) {
                    prop_assert_eq!(x.id, y.id);
                    prop_assert_eq!(x.kind, y.kind);
                    prop_assert_eq!(x.measure, y.measure);
                    prop_assert_eq!(x.rank_sim.to_bits(), y.rank_sim.to_bits());
                }
            }
            (direct, snapped) => prop_assert_eq!(direct.err(), snapped.err()),
        }
    }

    /// Whatever mix of words and numbers the user writes, every exact answer CQAds
    /// returns also satisfies the query it generated (internal consistency between the
    /// SQL translation and the executor).
    #[test]
    fn exact_answers_satisfy_the_generated_query(
        make in prop::sample::select(vec!["honda", "toyota", "ford", "chevy"]),
        color in prop::sample::select(vec!["blue", "red", "silver", "black"]),
        bound in 2_000u32..60_000,
    ) {
        let sys = car_system();
        let question = format!("{color} {make} under {bound} dollars");
        if let Ok(set) = sys.answer_in_domain(&question, "cars") {
            let table = sys.database().table("cars").unwrap();
            let spec = sys.domain_spec("cars").unwrap();
            let (_, interp, _) = sys.interpret_in_domain(&question, "cars").unwrap();
            let query = interp.to_query(spec).unwrap();
            let expected: Vec<_> = Executor::new(table).execute(&query).unwrap();
            let expected_ids: Vec<_> = expected.iter().map(|a| a.id).collect();
            for answer in set.exact() {
                prop_assert!(expected_ids.contains(&answer.id));
            }
        }
    }
}

/// Ascending posting list from an arbitrary id set.
fn posting(ids: &HashSet<u32>) -> PostingList {
    let mut sorted: Vec<RecordId> = ids.iter().copied().map(RecordId).collect();
    sorted.sort_unstable();
    PostingList::from_sorted(sorted)
}

/// Reference implementation: one-id-at-a-time two-pointer merge over the raw slices.
fn naive_intersect(a: &PostingList, b: &PostingList) -> Vec<RecordId> {
    let (xs, ys) = (a.ids(), b.ids());
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The galloping, block-max-skipping intersection yields exactly the same id
    /// sequence as the naive sorted merge, for arbitrary (including skewed and
    /// disjoint) posting lists — and stays correct when nested and restricted.
    #[test]
    fn galloping_intersection_matches_naive_merge(
        a in prop::collection::hash_set(0u32..4_000, 0..600),
        b in prop::collection::hash_set(0u32..4_000, 0..60),
        c in prop::collection::hash_set(0u32..4_000, 0..300),
        lo in 0u32..4_000,
        span in 0u32..4_000,
    ) {
        let (pa, pb, pc) = (posting(&a), posting(&b), posting(&c));
        // Two-way, both drive orders.
        let ab: Vec<RecordId> = IdStream::postings(&pa).intersect(IdStream::postings(&pb)).collect();
        let ba: Vec<RecordId> = IdStream::postings(&pb).intersect(IdStream::postings(&pa)).collect();
        let expected = naive_intersect(&pa, &pb);
        prop_assert_eq!(&ab, &expected);
        prop_assert_eq!(&ba, &expected);
        // Nested three-way intersection composes.
        let abc: Vec<RecordId> = IdStream::postings(&pa)
            .intersect(IdStream::postings(&pb))
            .intersect(IdStream::postings(&pc))
            .collect();
        let expected3: Vec<RecordId> = expected
            .iter()
            .copied()
            .filter(|id| pc.ids().binary_search(id).is_ok())
            .collect();
        prop_assert_eq!(&abc, &expected3);
        // Restriction to an id range is exactly a filter on the bounds.
        let hi = lo.saturating_add(span);
        let restricted: Vec<RecordId> = IdStream::postings(&pa)
            .intersect(IdStream::postings(&pb))
            .restrict(lo..hi)
            .collect();
        let expected_r: Vec<RecordId> = expected
            .iter()
            .copied()
            .filter(|id| id.0 >= lo && id.0 < hi)
            .collect();
        prop_assert_eq!(&restricted, &expected_r);
    }

    /// The value-ordered (WAND-style) pruned traversal returns byte-identical answers
    /// to the frozen PR 2 exhaustive engine across random tables, questions, budgets
    /// (the pruning thresholds) and worker counts. Tables and question workloads come
    /// from the seeded generators, so every proptest case explores a different
    /// value distribution and relaxation mix.
    #[test]
    fn wand_traversal_matches_exhaustive_engine(
        domain_idx in 0usize..3,
        table_seed in 0u64..1_000_000,
        question_seed in 0u64..1_000_000,
        table_size in 20usize..180,
        workers in 1usize..4,
    ) {
        let domain = ["cars", "jewellery", "furniture"][domain_idx];
        let bp = blueprint(domain);
        let table = generate_table(&bp, table_size, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig { sessions: 40, seed: table_seed ^ 0x77, ..Default::default() },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec { documents: 30, ..CorpusSpec::default() },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();
        let sim = SimilarityModel::new(Arc::new(ti), Arc::new(ws), spec.schema.clone());
        let tagger = Tagger::new(&spec);

        let wand = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions { workers, ..PartialMatchOptions::default() },
        );
        let exhaustive = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions { pr2_exhaustive: true, ..PartialMatchOptions::default() },
        );

        let questions = generate_questions(&bp, &table, 8, question_seed, &QuestionMix::default());
        for q in &questions {
            let Ok(interp) = interpret(&tagger.tag(&q.text), &spec) else { continue };
            let exact: HashSet<RecordId> = interp
                .to_query_with_limit(&spec, 30)
                .ok()
                .and_then(|query| Executor::new(&table).execute(&query).ok())
                .map(|answers| answers.into_iter().map(|a| a.id).collect())
                .unwrap_or_default();
            // Budgets double as pruning thresholds: 1 saturates instantly (maximal
            // pruning), table_size+10 never saturates (no pruning at all).
            for budget in [1usize, 7, 30, table_size + 10] {
                let a = wand.partial_answers(&interp, &table, &exact, budget).unwrap();
                let b = exhaustive.partial_answers(&interp, &table, &exact, budget).unwrap();
                prop_assert_eq!(a.len(), b.len(), "count: {} budget {}", q.text, budget);
                for (x, y) in a.iter().zip(&b) {
                    prop_assert!(
                        x.bits_eq(y),
                        "diverged on {:?} budget {}: {:?} != {:?}", q.text, budget, x, y
                    );
                }
            }
        }
    }

    /// A ScoredUnion over arbitrary (overlapping, skewed, empty) id sets yields the
    /// sorted union of its constituents exactly once each, tagged with the smallest
    /// contributing stream index, and its seek_ge agrees with filtering.
    #[test]
    fn scored_union_matches_naive_union(
        sets in prop::collection::vec(
            prop::collection::hash_set(0u32..2_000, 0..200),
            1..6
        ),
        lo in 0u32..2_000,
    ) {
        let lists: Vec<PostingList> = sets.iter().map(posting).collect();
        let union = ScoredUnion::new(lists.iter().map(IdStream::postings).collect());
        let got: Vec<(RecordId, u32)> = union.collect();
        // Expected: sorted distinct ids, each tagged with the first set containing it.
        let mut all: Vec<RecordId> = sets
            .iter()
            .flatten()
            .copied()
            .map(RecordId)
            .collect();
        all.sort_unstable();
        all.dedup();
        let expected: Vec<(RecordId, u32)> = all
            .iter()
            .map(|id| {
                let tag = sets.iter().position(|s| s.contains(&id.0)).unwrap() as u32;
                (*id, tag)
            })
            .collect();
        prop_assert_eq!(&got, &expected);
        // seek_ge from `lo` yields exactly the tail of the union.
        let mut union = ScoredUnion::new(lists.iter().map(IdStream::postings).collect());
        let mut tail = Vec::new();
        let mut target = RecordId(lo);
        while let Some((id, tag)) = union.seek_ge(target) {
            tail.push((id, tag));
            target = RecordId(id.0 + 1);
        }
        let expected_tail: Vec<(RecordId, u32)> = expected
            .iter()
            .copied()
            .filter(|(id, _)| id.0 >= lo)
            .collect();
        prop_assert_eq!(tail, expected_tail);
    }

    /// seek_ge always yields the first remaining id >= target and never goes backwards.
    #[test]
    fn seek_ge_matches_linear_scan(
        ids in prop::collection::hash_set(0u32..2_000, 1..400),
        targets in prop::collection::vec(0u32..2_200, 1..30),
    ) {
        let list = posting(&ids);
        let mut targets = targets;
        targets.sort_unstable();
        let mut stream = IdStream::postings(&list);
        let mut consumed_up_to: Option<u32> = None;
        for t in targets {
            let expected = list
                .ids()
                .iter()
                .copied()
                .find(|id| id.0 >= t && consumed_up_to.is_none_or(|c| id.0 > c));
            let got = stream.seek_ge(RecordId(t));
            prop_assert_eq!(got, expected);
            if let Some(id) = got {
                consumed_up_to = Some(id.0);
            } else {
                // Exhausted: stays exhausted.
                prop_assert_eq!(stream.seek_ge(RecordId(0)), None);
                break;
            }
        }
    }
}

#[test]
fn generated_workloads_are_reproducible() {
    let bp = blueprint("furniture");
    let table = generate_table(&bp, 90, 5);
    let a = generate_questions(&bp, &table, 40, 9, &QuestionMix::default());
    let b = generate_questions(&bp, &table, 40, 9, &QuestionMix::default());
    assert_eq!(
        a.iter().map(|q| q.text.clone()).collect::<Vec<_>>(),
        b.iter().map(|q| q.text.clone()).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------------
// Incremental TI-matrix learning: apply == full rebuild, bit for bit
// ---------------------------------------------------------------------------

/// The Type I vocabulary the random logs draw from (kept small so pairs repeat and
/// every feature accumulates real evidence).
const TI_VALUES: [&str; 5] = ["accord", "camry", "civic", "corolla", "mustang"];

fn ti_affinities() -> AffinityModel {
    let mut m = AffinityModel::new(&TI_VALUES);
    m.set_affinity("accord", "camry", 0.9);
    m.set_affinity("civic", "corolla", 0.8);
    m.set_affinity("accord", "mustang", 0.1);
    m
}

/// A hand-built session exercising the estimator's edge cases: repeated identical
/// queries (no Mod/Time evidence), a result page showing the searched value itself,
/// clicks on the searched value (skipped), zero-dwell clicks and an empty tail query.
fn adversarial_session(user_id: u64, a: &str, b: &str) -> Session {
    Session {
        user_id,
        queries: vec![
            SubmittedQuery {
                value: a.to_string(),
                at_seconds: 0.0,
                clicks: vec![
                    ClickEvent {
                        ad_value: a.to_string(), // click on itself: ignored
                        rank: 1,
                        dwell_seconds: 50.0,
                    },
                    ClickEvent {
                        ad_value: b.to_string(),
                        rank: 2,
                        dwell_seconds: 0.0, // zero dwell still counts as a click
                    },
                ],
                shown: vec![a.to_string(), a.to_string(), b.to_string()],
            },
            SubmittedQuery {
                value: a.to_string(), // identical reformulation: ignored
                at_seconds: 5.0,
                clicks: vec![],
                shown: vec![],
            },
            SubmittedQuery {
                value: b.to_string(),
                at_seconds: 5.0, // zero gap to the previous query
                clicks: vec![],
                shown: vec![],
            },
        ],
    }
}

/// Every vocabulary pair (and self-pair) must agree bit-for-bit, as must the
/// normalization maximum and the stored pair count.
fn assert_ti_bit_identical(full: &TIMatrix, incremental: &TIMatrix) -> Result<(), TestCaseError> {
    prop_assert_eq!(full.len(), incremental.len());
    prop_assert_eq!(
        full.max_value().to_bits(),
        incremental.max_value().to_bits()
    );
    for a in TI_VALUES {
        for b in TI_VALUES {
            prop_assert_eq!(
                full.ti_sim(a, b).to_bits(),
                incremental.ti_sim(a, b).to_bits(),
                "ti_sim({}, {}) diverged",
                a,
                b
            );
            prop_assert_eq!(
                full.normalized(a, b).to_bits(),
                incremental.normalized(a, b).to_bits(),
                "normalized({}, {}) diverged",
                a,
                b
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `TIMatrix::build(log ++ delta)` == `TIMatrix::build(log).apply(delta)`, bit
    /// for bit, for random logs and deltas of any size (either may be empty) —
    /// including deltas spliced with adversarial hand-built sessions. Also checks
    /// the batch form (`apply_all` over a split delta, one renormalization).
    #[test]
    fn ti_apply_is_bit_identical_to_full_rebuild(
        base_sessions in 0usize..50,
        delta_sessions in 0usize..20,
        base_seed in 0u64..10_000,
        delta_seed in 0u64..10_000,
        weird in 0usize..3,
        pair in prop::sample::select(vec![(0usize, 1usize), (1, 4), (2, 3), (3, 3)]),
    ) {
        let model = ti_affinities();
        let base = generate_log(
            &model,
            &LogGeneratorConfig { sessions: base_sessions, seed: base_seed, ..Default::default() },
        );
        let mut fresh = generate_log(
            &model,
            &LogGeneratorConfig { sessions: delta_sessions, seed: delta_seed, ..Default::default() },
        )
        .sessions;
        for w in 0..weird {
            fresh.push(adversarial_session(
                1_000 + w as u64,
                TI_VALUES[pair.0],
                TI_VALUES[pair.1],
            ));
        }
        let delta = QueryLogDelta::from_sessions(fresh);

        let full = TIMatrix::build(&base.concat(&delta));

        let mut incremental = TIMatrix::build(&base);
        incremental.apply(&delta);
        assert_ti_bit_identical(&full, &incremental)?;

        // Batch form: split the delta in two, finalize once.
        let mid = delta.sessions.len() / 2;
        let head = QueryLogDelta::from_sessions(delta.sessions[..mid].to_vec());
        let tail = QueryLogDelta::from_sessions(delta.sessions[mid..].to_vec());
        let mut batched = TIMatrix::build(&base);
        batched.apply_all([&head, &tail]);
        assert_ti_bit_identical(&full, &batched)?;

        // Applying the two halves one at a time is identical too (intermediate
        // finalizations are pure).
        let mut stepwise = TIMatrix::build(&base);
        stepwise.apply(&head);
        stepwise.apply(&tail);
        assert_ti_bit_identical(&full, &stepwise)?;
    }
}

// ---------------------------------------------------------------------------
// Shard equivalence: ShardedCqads == unsharded CqadsReader, byte for byte
// ---------------------------------------------------------------------------

/// Byte-identity across every observable answer field (or the same error),
/// the contract ARCHITECTURE.md invariant #9 promises for scatter-gather.
fn assert_shard_equivalent(
    got: CqadsResult<AnswerSet>,
    want: CqadsResult<AnswerSet>,
    context: &str,
) -> Result<(), TestCaseError> {
    match (got, want) {
        (Ok(a), Ok(b)) => {
            prop_assert_eq!(&a.sql, &b.sql, "sql diverged: {}", context);
            prop_assert_eq!(a.exact_count, b.exact_count, "exact_count: {}", context);
            prop_assert_eq!(&a.quality, &b.quality, "quality: {}", context);
            prop_assert_eq!(a.answers.len(), b.answers.len(), "count: {}", context);
            for (x, y) in a.answers.iter().zip(&b.answers) {
                prop_assert_eq!(x.id, y.id, "id: {}", context);
                prop_assert_eq!(x.kind, y.kind, "kind: {}", context);
                prop_assert_eq!(x.measure, y.measure, "measure: {}", context);
                prop_assert_eq!(
                    x.rank_sim.to_bits(),
                    y.rank_sim.to_bits(),
                    "rank_sim bits: {}",
                    context
                );
            }
        }
        (got, want) => prop_assert_eq!(got.err(), want.err(), "error diverged: {}", context),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A `ShardedCqads` over 1/2/3/7 partitions answers byte-identically to
    /// the unsharded snapshot reader for generated tables and questions —
    /// fresh, repeated (through the per-shard contribution cache), after
    /// mid-stream routed inserts, and after a query-log ingest broadcast.
    #[test]
    fn sharded_scatter_gather_is_byte_identical_to_unsharded(
        domain_idx in 0usize..3,
        table_seed in 0u64..1_000_000,
        question_seed in 0u64..1_000_000,
        table_size in 10usize..100,
        shard_idx in 0usize..4,
    ) {
        let shards = [1usize, 2, 3, 7][shard_idx];
        let domain = ["cars", "jewellery", "furniture"][domain_idx];
        let bp = blueprint(domain);
        let table = generate_table(&bp, table_size, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig { sessions: 30, seed: table_seed ^ 0x77, ..Default::default() },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec { documents: 20, ..CorpusSpec::default() },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();

        let mut writer = CqadsWriter::with_config(CqadsConfig::default());
        writer.set_word_sim(ws.clone());
        writer.add_domain(spec.clone(), table.clone(), ti.clone());
        let reader = writer.reader();

        let mut sharded = ShardedCqads::new(shards).unwrap();
        sharded.set_word_sim(ws);
        sharded.add_domain(spec.clone(), table.clone(), ti);

        let questions = generate_questions(&bp, &table, 6, question_seed, &QuestionMix::default());
        for q in &questions {
            assert_shard_equivalent(
                sharded.answer_in_domain(&q.text, domain),
                reader.answer_in_domain(&q.text, domain),
                &format!("{shards} shards, fresh: {}", q.text),
            )?;
            // A repeat ask serves shard contributions from the cache — it must
            // not change a byte.
            assert_shard_equivalent(
                sharded.answer_in_domain(&q.text, domain),
                reader.answer_in_domain(&q.text, domain),
                &format!("{shards} shards, cached: {}", q.text),
            )?;
        }

        // Mid-stream inserts: both sides assign the same global ids, and the
        // sharded system routes each record to exactly one partition.
        let extra = generate_table(&bp, 5, table_seed ^ 0x5a5a);
        for (_, record) in extra.iter() {
            let a = writer.insert_record(domain, record.clone()).unwrap();
            let b = sharded.insert_record(domain, record.clone()).unwrap();
            prop_assert_eq!(a, b, "global id assignment diverged");
        }
        for q in &questions {
            assert_shard_equivalent(
                sharded.answer_in_domain(&q.text, domain),
                reader.answer_in_domain(&q.text, domain),
                &format!("{shards} shards, after inserts: {}", q.text),
            )?;
        }

        // Mid-stream model mutation: the ingest broadcasts to every shard, so
        // the replicated TI matrices stay bit-identical to the reference.
        let delta = QueryLogDelta::from_sessions(
            generate_log(
                &affinity_model(&bp),
                &LogGeneratorConfig {
                    sessions: 8,
                    seed: question_seed ^ 0x99,
                    ..Default::default()
                },
            )
            .sessions,
        );
        writer.ingest_query_log(domain, &delta).unwrap();
        sharded.ingest_query_log(domain, &delta).unwrap();
        for q in &questions {
            assert_shard_equivalent(
                sharded.answer_in_domain(&q.text, domain),
                reader.answer_in_domain(&q.text, domain),
                &format!("{shards} shards, after ingest: {}", q.text),
            )?;
        }
    }
}
