//! Workspace-level property-based tests over the public API: arbitrary questions must
//! never panic, and core invariants must hold for whatever the generators produce.

use cqads_suite::addb::{Executor, IdStream, PostingList, RecordId};
use cqads_suite::cqads::CqadsSystem;
use cqads_suite::datagen::{blueprint, generate_questions, generate_table, QuestionMix};
use cqads_suite::querylog::TIMatrix;
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::OnceLock;

fn car_system() -> &'static CqadsSystem {
    static SYSTEM: OnceLock<CqadsSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 150, 77);
        let mut system = CqadsSystem::new();
        system.add_domain(bp.to_spec(), table, TIMatrix::default());
        system
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipeline never panics on arbitrary free text and never exceeds the answer cap.
    #[test]
    fn arbitrary_text_never_panics(question in ".{0,80}") {
        let sys = car_system();
        if let Ok(set) = sys.answer_in_domain(&question, "cars") {
            prop_assert!(set.answers.len() <= 30);
            prop_assert!(set.exact_count <= set.answers.len());
        }
    }

    /// Whatever mix of words and numbers the user writes, every exact answer CQAds
    /// returns also satisfies the query it generated (internal consistency between the
    /// SQL translation and the executor).
    #[test]
    fn exact_answers_satisfy_the_generated_query(
        make in prop::sample::select(vec!["honda", "toyota", "ford", "chevy"]),
        color in prop::sample::select(vec!["blue", "red", "silver", "black"]),
        bound in 2_000u32..60_000,
    ) {
        let sys = car_system();
        let question = format!("{color} {make} under {bound} dollars");
        if let Ok(set) = sys.answer_in_domain(&question, "cars") {
            let table = sys.database().table("cars").unwrap();
            let spec = sys.domain_spec("cars").unwrap();
            let (_, interp, _) = sys.interpret_in_domain(&question, "cars").unwrap();
            let query = interp.to_query(spec).unwrap();
            let expected: Vec<_> = Executor::new(table).execute(&query).unwrap();
            let expected_ids: Vec<_> = expected.iter().map(|a| a.id).collect();
            for answer in set.exact() {
                prop_assert!(expected_ids.contains(&answer.id));
            }
        }
    }
}

/// Ascending posting list from an arbitrary id set.
fn posting(ids: &HashSet<u32>) -> PostingList {
    let mut sorted: Vec<RecordId> = ids.iter().copied().map(RecordId).collect();
    sorted.sort_unstable();
    PostingList::from_sorted(sorted)
}

/// Reference implementation: one-id-at-a-time two-pointer merge over the raw slices.
fn naive_intersect(a: &PostingList, b: &PostingList) -> Vec<RecordId> {
    let (xs, ys) = (a.ids(), b.ids());
    let (mut i, mut j) = (0, 0);
    let mut out = Vec::new();
    while i < xs.len() && j < ys.len() {
        match xs[i].cmp(&ys[j]) {
            std::cmp::Ordering::Equal => {
                out.push(xs[i]);
                i += 1;
                j += 1;
            }
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The galloping, block-max-skipping intersection yields exactly the same id
    /// sequence as the naive sorted merge, for arbitrary (including skewed and
    /// disjoint) posting lists — and stays correct when nested and restricted.
    #[test]
    fn galloping_intersection_matches_naive_merge(
        a in prop::collection::hash_set(0u32..4_000, 0..600),
        b in prop::collection::hash_set(0u32..4_000, 0..60),
        c in prop::collection::hash_set(0u32..4_000, 0..300),
        lo in 0u32..4_000,
        span in 0u32..4_000,
    ) {
        let (pa, pb, pc) = (posting(&a), posting(&b), posting(&c));
        // Two-way, both drive orders.
        let ab: Vec<RecordId> = IdStream::postings(&pa).intersect(IdStream::postings(&pb)).collect();
        let ba: Vec<RecordId> = IdStream::postings(&pb).intersect(IdStream::postings(&pa)).collect();
        let expected = naive_intersect(&pa, &pb);
        prop_assert_eq!(&ab, &expected);
        prop_assert_eq!(&ba, &expected);
        // Nested three-way intersection composes.
        let abc: Vec<RecordId> = IdStream::postings(&pa)
            .intersect(IdStream::postings(&pb))
            .intersect(IdStream::postings(&pc))
            .collect();
        let expected3: Vec<RecordId> = expected
            .iter()
            .copied()
            .filter(|id| pc.ids().binary_search(id).is_ok())
            .collect();
        prop_assert_eq!(&abc, &expected3);
        // Restriction to an id range is exactly a filter on the bounds.
        let hi = lo.saturating_add(span);
        let restricted: Vec<RecordId> = IdStream::postings(&pa)
            .intersect(IdStream::postings(&pb))
            .restrict(lo..hi)
            .collect();
        let expected_r: Vec<RecordId> = expected
            .iter()
            .copied()
            .filter(|id| id.0 >= lo && id.0 < hi)
            .collect();
        prop_assert_eq!(&restricted, &expected_r);
    }

    /// seek_ge always yields the first remaining id >= target and never goes backwards.
    #[test]
    fn seek_ge_matches_linear_scan(
        ids in prop::collection::hash_set(0u32..2_000, 1..400),
        targets in prop::collection::vec(0u32..2_200, 1..30),
    ) {
        let list = posting(&ids);
        let mut targets = targets;
        targets.sort_unstable();
        let mut stream = IdStream::postings(&list);
        let mut consumed_up_to: Option<u32> = None;
        for t in targets {
            let expected = list
                .ids()
                .iter()
                .copied()
                .find(|id| id.0 >= t && consumed_up_to.is_none_or(|c| id.0 > c));
            let got = stream.seek_ge(RecordId(t));
            prop_assert_eq!(got, expected);
            if let Some(id) = got {
                consumed_up_to = Some(id.0);
            } else {
                // Exhausted: stays exhausted.
                prop_assert_eq!(stream.seek_ge(RecordId(0)), None);
                break;
            }
        }
    }
}

#[test]
fn generated_workloads_are_reproducible() {
    let bp = blueprint("furniture");
    let table = generate_table(&bp, 90, 5);
    let a = generate_questions(&bp, &table, 40, 9, &QuestionMix::default());
    let b = generate_questions(&bp, &table, 40, 9, &QuestionMix::default());
    assert_eq!(
        a.iter().map(|q| q.text.clone()).collect::<Vec<_>>(),
        b.iter().map(|q| q.text.clone()).collect::<Vec<_>>()
    );
}
