//! Workspace-level property-based tests over the public API: arbitrary questions must
//! never panic, and core invariants must hold for whatever the generators produce.

use cqads_suite::addb::Executor;
use cqads_suite::cqads::CqadsSystem;
use cqads_suite::datagen::{blueprint, generate_questions, generate_table, QuestionMix};
use cqads_suite::querylog::TIMatrix;
use proptest::prelude::*;
use std::sync::OnceLock;

fn car_system() -> &'static CqadsSystem {
    static SYSTEM: OnceLock<CqadsSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let bp = blueprint("cars");
        let table = generate_table(&bp, 150, 77);
        let mut system = CqadsSystem::new();
        system.add_domain(bp.to_spec(), table, TIMatrix::default());
        system
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The pipeline never panics on arbitrary free text and never exceeds the answer cap.
    #[test]
    fn arbitrary_text_never_panics(question in ".{0,80}") {
        let sys = car_system();
        if let Ok(set) = sys.answer_in_domain(&question, "cars") {
            prop_assert!(set.answers.len() <= 30);
            prop_assert!(set.exact_count <= set.answers.len());
        }
    }

    /// Whatever mix of words and numbers the user writes, every exact answer CQAds
    /// returns also satisfies the query it generated (internal consistency between the
    /// SQL translation and the executor).
    #[test]
    fn exact_answers_satisfy_the_generated_query(
        make in prop::sample::select(vec!["honda", "toyota", "ford", "chevy"]),
        color in prop::sample::select(vec!["blue", "red", "silver", "black"]),
        bound in 2_000u32..60_000,
    ) {
        let sys = car_system();
        let question = format!("{color} {make} under {bound} dollars");
        if let Ok(set) = sys.answer_in_domain(&question, "cars") {
            let table = sys.database().table("cars").unwrap();
            let spec = sys.domain_spec("cars").unwrap();
            let (_, interp, _) = sys.interpret_in_domain(&question, "cars").unwrap();
            let query = interp.to_query(spec).unwrap();
            let expected: Vec<_> = Executor::new(table).execute(&query).unwrap();
            let expected_ids: Vec<_> = expected.iter().map(|a| a.id).collect();
            for answer in set.exact() {
                prop_assert!(expected_ids.contains(&answer.id));
            }
        }
    }
}

#[test]
fn generated_workloads_are_reproducible() {
    let bp = blueprint("furniture");
    let table = generate_table(&bp, 90, 5);
    let a = generate_questions(&bp, &table, 40, 9, &QuestionMix::default());
    let b = generate_questions(&bp, &table, 40, 9, &QuestionMix::default());
    assert_eq!(
        a.iter().map(|q| q.text.clone()).collect::<Vec<_>>(),
        b.iter().map(|q| q.text.clone()).collect::<Vec<_>>()
    );
}
