//! Cross-crate integration tests: the full pipeline from synthetic data generation
//! through classification, interpretation, execution and partial-match ranking.

use cqads_suite::classifier::LabelledDoc;
use cqads_suite::cqads::{CqadsError, CqadsSystem, MatchKind};
use cqads_suite::datagen::{
    affinity_model, all_blueprints, blueprint, generate_questions, generate_table, topic_groups,
    QuestionMix,
};
use cqads_suite::querylog::{generate_log, LogGeneratorConfig, TIMatrix};
use cqads_suite::wordsim::{CorpusSpec, SyntheticCorpus, WordSimMatrix};
use std::sync::OnceLock;

/// A two-domain system (cars + jewellery) with realistic matrices, shared across tests.
fn system() -> &'static CqadsSystem {
    static SYSTEM: OnceLock<CqadsSystem> = OnceLock::new();
    SYSTEM.get_or_init(|| {
        let mut system = CqadsSystem::new();
        let mut groups = Vec::new();
        let mut docs = Vec::new();
        for name in ["cars", "jewellery"] {
            let bp = blueprint(name);
            groups.extend(topic_groups(&bp));
            let table = generate_table(&bp, 250, 31);
            let log = generate_log(
                &affinity_model(&bp),
                &LogGeneratorConfig {
                    sessions: 200,
                    seed: 32,
                    ..Default::default()
                },
            );
            system.add_domain(bp.to_spec(), table, TIMatrix::build(&log));
            let table_ref = system.database().table(name).unwrap();
            for q in generate_questions(&bp, table_ref, 60, 33, &QuestionMix::plain_only()) {
                docs.push(LabelledDoc::from_text(name, &q.text));
            }
        }
        let corpus = SyntheticCorpus::generate(
            &groups,
            &CorpusSpec {
                documents: 150,
                ..CorpusSpec::default()
            },
        );
        system.set_word_sim(WordSimMatrix::build(&corpus));
        system.train_classifier(&docs);
        system
    })
}

#[test]
fn questions_route_to_the_right_domain_and_return_answers() {
    let sys = system();
    let car = sys.answer("blue honda accord under 20000 dollars").unwrap();
    assert_eq!(car.domain, "cars");
    assert!(!car.answers.is_empty());
    let ring = sys.answer("gold engagement ring with a diamond").unwrap();
    assert_eq!(ring.domain, "jewellery");
    assert!(!ring.answers.is_empty());
}

#[test]
fn exact_answers_satisfy_every_condition() {
    let sys = system();
    let set = sys
        .answer_in_domain("blue automatic honda", "cars")
        .unwrap();
    for answer in set.exact() {
        assert_eq!(answer.kind, MatchKind::Exact);
        assert_eq!(answer.record.get_text("make"), Some("honda"));
        assert_eq!(answer.record.get_text("color"), Some("blue"));
        assert_eq!(answer.record.get_text("transmission"), Some("automatic"));
    }
}

#[test]
fn partial_answers_fill_the_answer_budget_and_are_ranked() {
    let sys = system();
    let set = sys
        .answer_in_domain(
            "silver bmw 328i under 9000 dollars with leather seats",
            "cars",
        )
        .unwrap();
    assert!(set.answers.len() <= 30);
    let partial = set.partial();
    assert!(!partial.is_empty(), "expected ranked partial answers");
    for pair in partial.windows(2) {
        assert!(pair[0].rank_sim >= pair[1].rank_sim - 1e-9);
    }
}

#[test]
fn misspellings_shorthand_and_missing_spaces_are_tolerated() {
    let sys = system();
    let clean = sys
        .answer_in_domain("blue honda accord automatic", "cars")
        .unwrap();
    let noisy = sys
        .answer_in_domain("blue hondaaccord automattic", "cars")
        .unwrap();
    let clean_ids: Vec<_> = clean.exact().iter().map(|a| a.id).collect();
    let noisy_ids: Vec<_> = noisy.exact().iter().map(|a| a.id).collect();
    assert_eq!(clean_ids, noisy_ids);
    // shorthand drivetrain
    let sh = sys.answer_in_domain("4wd ford f150", "cars").unwrap();
    for a in sh.exact() {
        assert_eq!(a.record.get_text("drivetrain"), Some("4 wheel drive"));
    }
}

#[test]
fn superlatives_are_evaluated_after_the_other_conditions() {
    let sys = system();
    let set = sys.answer_in_domain("cheapest honda", "cars").unwrap();
    assert!(set.exact_count >= 1);
    let cheapest_honda = set.exact()[0].record.get_number("price").unwrap();
    // No honda in the table is cheaper.
    let table = sys.database().table("cars").unwrap();
    let min_honda = table
        .iter()
        .filter(|(_, r)| r.get_text("make") == Some("honda"))
        .filter_map(|(_, r)| r.get_number("price"))
        .fold(f64::INFINITY, f64::min);
    assert_eq!(cheapest_honda, min_honda);
}

#[test]
fn contradictory_and_empty_questions_error_cleanly() {
    let sys = system();
    assert!(matches!(
        sys.answer_in_domain("car above 9000 dollars and below 2000 dollars", "cars"),
        Err(CqadsError::ContradictoryRange { .. })
    ));
    assert!(matches!(
        sys.answer_in_domain("hello, can you help me please?", "cars"),
        Err(CqadsError::EmptyQuestion)
    ));
    assert!(matches!(
        sys.answer_in_domain("blue honda", "houses"),
        Err(CqadsError::UnknownDomain(_))
    ));
}

#[test]
fn every_blueprint_domain_survives_a_generated_workload() {
    // Smoke test across all eight domains with small tables: no panics, every answer
    // respects the 30-answer cap.
    let mut system = CqadsSystem::new();
    for bp in all_blueprints() {
        let table = generate_table(&bp, 60, 41);
        system.add_domain(bp.to_spec(), table, TIMatrix::default());
    }
    for bp in all_blueprints() {
        let table = system.database().table(bp.name).unwrap();
        let questions = generate_questions(&bp, table, 25, 42, &QuestionMix::default());
        for q in questions {
            match system.answer_in_domain(&q.text, bp.name) {
                Ok(set) => assert!(set.answers.len() <= 30),
                Err(
                    CqadsError::EmptyQuestion
                    | CqadsError::ContradictoryRange { .. }
                    | CqadsError::Database(_),
                ) => {}
                Err(other) => panic!("unexpected error for {:?}: {other}", q.text),
            }
        }
    }
}
