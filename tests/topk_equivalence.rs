//! Equivalence of the bounded top-k partial-match engine with the original
//! full-scan/full-sort pipeline (kept behind `PartialMatchOptions::full_scan`), and of
//! the id-sharded parallel engine with the sequential one.
//!
//! The deterministic randomized sweep below generates seeded datagen tables and
//! question workloads across several domains, interprets every question exactly as the
//! pipeline would, and asserts that both engines return **byte-identical**
//! `(id, rank_sim, measure, relaxed_condition)` sequences for a spread of budgets and
//! exclusion sets — including the edge cases the top-k collector has to get right:
//! budget 0, budget larger than the match set, and every candidate excluded.

use cqads_suite::addb::RecordId;
use cqads_suite::cqads::tagging::Tagger;
use cqads_suite::cqads::translate::interpret;
use cqads_suite::cqads::{PartialMatchOptions, PartialMatcher, SimilarityModel};
use cqads_suite::datagen::{
    affinity_model, blueprint, generate_questions, generate_table, topic_groups, QuestionMix,
};
use cqads_suite::querylog::{generate_log, LogGeneratorConfig, TIMatrix};
use cqads_suite::wordsim::{CorpusSpec, SyntheticCorpus, WordSimMatrix};
use std::collections::HashSet;
use std::sync::Arc;

/// Compare two answer sequences for *byte* equality of the score
/// ([`cqads_suite::cqads::PartialAnswer::bits_eq`], the shared contract).
fn assert_identical(
    fast: &[cqads_suite::cqads::PartialAnswer],
    slow: &[cqads_suite::cqads::PartialAnswer],
    context: &str,
) {
    assert_eq!(fast.len(), slow.len(), "answer count diverged: {context}");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert!(
            a.bits_eq(b),
            "diverged at rank {i}: {context}: {a:?} != {b:?}"
        );
    }
}

#[test]
fn topk_engine_matches_full_sort_across_seeded_workloads() {
    for (domain, table_seed, question_seed) in [
        ("cars", 11_u64, 21_u64),
        ("jewellery", 12, 22),
        ("furniture", 13, 23),
    ] {
        let bp = blueprint(domain);
        let table = generate_table(&bp, 400, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig {
                sessions: 150,
                seed: table_seed ^ 0xA5A5,
                ..Default::default()
            },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec {
                documents: 80,
                ..CorpusSpec::default()
            },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();
        let sim = SimilarityModel::new(Arc::new(ti), Arc::new(ws), spec.schema.clone());
        let tagger = Tagger::new(&spec);

        let fast = PartialMatcher::new(&spec, &sim);
        let slow = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                full_scan: true,
                ..PartialMatchOptions::default()
            },
        );

        let questions = generate_questions(&bp, &table, 60, question_seed, &QuestionMix::default());
        let mut compared = 0usize;
        for q in &questions {
            let Ok(interp) = interpret(&tagger.tag(&q.text), &spec) else {
                continue;
            };
            // The same exclusion the pipeline would apply: the exact answers.
            let exact: HashSet<RecordId> = {
                let query = interp.to_query_with_limit(&spec, 30).unwrap();
                cqads_suite::addb::Executor::new(&table)
                    .execute(&query)
                    .map(|answers| answers.into_iter().map(|a| a.id).collect())
                    .unwrap_or_default()
            };
            for budget in [1usize, 5, 30, table.len() + 10] {
                let a = fast
                    .partial_answers(&interp, &table, &exact, budget)
                    .unwrap();
                let b = slow
                    .partial_answers(&interp, &table, &exact, budget)
                    .unwrap();
                assert_identical(
                    &a,
                    &b,
                    &format!("domain {domain}, question {:?}, budget {budget}", q.text),
                );
                compared += 1;
            }
        }
        assert!(
            compared >= 100,
            "expected a substantive sweep for {domain}, compared only {compared}"
        );
    }
}

/// The value-ordered (WAND-style) pruned traversal is byte-identical to the frozen
/// PR 2 exhaustive engine (`PartialMatchOptions::pr2_exhaustive`) across seeded
/// workloads, budgets (the pruning thresholds) and worker counts — the sharded
/// variant prunes against each worker's private (lower) threshold, which must still
/// be lossless.
#[test]
fn wand_traversal_matches_pr2_exhaustive_across_seeded_workloads() {
    for (domain, table_seed, question_seed) in [("cars", 61_u64, 71_u64), ("furniture", 62, 72)] {
        let bp = blueprint(domain);
        let table = generate_table(&bp, 400, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig {
                sessions: 120,
                seed: table_seed ^ 0x3C3C,
                ..Default::default()
            },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec {
                documents: 60,
                ..CorpusSpec::default()
            },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();
        let sim = SimilarityModel::new(Arc::new(ti), Arc::new(ws), spec.schema.clone());
        let tagger = Tagger::new(&spec);

        let exhaustive = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                pr2_exhaustive: true,
                ..PartialMatchOptions::default()
            },
        );
        let questions = generate_questions(&bp, &table, 40, question_seed, &QuestionMix::default());
        let mut compared = 0usize;
        for q in &questions {
            let Ok(interp) = interpret(&tagger.tag(&q.text), &spec) else {
                continue;
            };
            let exact: HashSet<RecordId> = {
                let query = interp.to_query_with_limit(&spec, 30).unwrap();
                cqads_suite::addb::Executor::new(&table)
                    .execute(&query)
                    .map(|answers| answers.into_iter().map(|a| a.id).collect())
                    .unwrap_or_default()
            };
            for workers in [1usize, 3] {
                let wand = PartialMatcher::with_options(
                    &spec,
                    &sim,
                    PartialMatchOptions {
                        workers,
                        ..PartialMatchOptions::default()
                    },
                );
                for budget in [1usize, 7, 30, 500] {
                    let a = wand
                        .partial_answers(&interp, &table, &exact, budget)
                        .unwrap();
                    let b = exhaustive
                        .partial_answers(&interp, &table, &exact, budget)
                        .unwrap();
                    assert_identical(
                        &a,
                        &b,
                        &format!(
                            "domain {domain}, question {:?}, workers {workers}, budget {budget}",
                            q.text
                        ),
                    );
                    compared += 1;
                }
            }
        }
        assert!(
            compared >= 100,
            "expected a substantive WAND sweep for {domain}, compared only {compared}"
        );
    }
}

/// The id-sharded parallel engine is byte-identical to the sequential engine for
/// every worker count, across randomized datagen tables and question workloads —
/// including sparse questions that trigger the degree-of-match fallback and workers
/// far exceeding any shard's useful size.
#[test]
fn parallel_workers_match_sequential_across_seeded_workloads() {
    for (domain, table_seed, question_seed) in [("cars", 31_u64, 41_u64), ("jewellery", 32, 42)] {
        let bp = blueprint(domain);
        let table = generate_table(&bp, 350, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig {
                sessions: 120,
                seed: table_seed ^ 0x5A5A,
                ..Default::default()
            },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec {
                documents: 60,
                ..CorpusSpec::default()
            },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();
        let sim = SimilarityModel::new(Arc::new(ti), Arc::new(ws), spec.schema.clone());
        let tagger = Tagger::new(&spec);

        let sequential = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                workers: 1,
                ..PartialMatchOptions::default()
            },
        );
        let questions = generate_questions(&bp, &table, 40, question_seed, &QuestionMix::default());
        let mut compared = 0usize;
        for q in &questions {
            let Ok(interp) = interpret(&tagger.tag(&q.text), &spec) else {
                continue;
            };
            let exact: HashSet<RecordId> = {
                let query = interp.to_query_with_limit(&spec, 30).unwrap();
                cqads_suite::addb::Executor::new(&table)
                    .execute(&query)
                    .map(|answers| answers.into_iter().map(|a| a.id).collect())
                    .unwrap_or_default()
            };
            for workers in [2usize, 8] {
                let parallel = PartialMatcher::with_options(
                    &spec,
                    &sim,
                    PartialMatchOptions {
                        workers,
                        ..PartialMatchOptions::default()
                    },
                );
                for budget in [1usize, 7, 30] {
                    let a = parallel
                        .partial_answers(&interp, &table, &exact, budget)
                        .unwrap();
                    let b = sequential
                        .partial_answers(&interp, &table, &exact, budget)
                        .unwrap();
                    assert_identical(
                        &a,
                        &b,
                        &format!(
                            "domain {domain}, question {:?}, workers {workers}, budget {budget}",
                            q.text
                        ),
                    );
                    compared += 1;
                }
            }
        }
        assert!(
            compared >= 100,
            "expected a substantive parallel sweep for {domain}, compared only {compared}"
        );
    }
}

/// The batch API is element-wise byte-identical to per-question calls, for every
/// worker count and across mixed budgets (including zero).
#[test]
fn batch_api_matches_per_question_calls() {
    use cqads_suite::cqads::PartialBatchRequest;
    let bp = blueprint("cars");
    let table = generate_table(&bp, 300, 17);
    let log = generate_log(
        &affinity_model(&bp),
        &LogGeneratorConfig {
            sessions: 100,
            seed: 23,
            ..Default::default()
        },
    );
    let ti = TIMatrix::build(&log);
    let spec = bp.to_spec();
    let sim = SimilarityModel::new(
        Arc::new(ti),
        Arc::new(WordSimMatrix::default()),
        spec.schema.clone(),
    );
    let tagger = Tagger::new(&spec);
    let questions = generate_questions(&bp, &table, 20, 29, &QuestionMix::default());
    let interps: Vec<_> = questions
        .iter()
        .filter_map(|q| interpret(&tagger.tag(&q.text), &spec).ok())
        .collect();
    assert!(interps.len() >= 8, "workload too small");
    let none = HashSet::new();
    let some: HashSet<RecordId> = [RecordId(1), RecordId(5)].into_iter().collect();
    let requests: Vec<PartialBatchRequest<'_>> = interps
        .iter()
        .enumerate()
        .map(|(i, interp)| PartialBatchRequest {
            interpretation: interp,
            exclude: if i % 2 == 0 { &none } else { &some },
            budget: [0usize, 1, 7, 30][i % 4],
        })
        .collect();
    for workers in [1usize, 2, 8] {
        let matcher = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                workers,
                ..PartialMatchOptions::default()
            },
        );
        let batched = matcher.partial_answers_batch(&requests, &table).unwrap();
        assert_eq!(batched.len(), requests.len());
        for (r, batch_answers) in requests.iter().zip(&batched) {
            let single = matcher
                .partial_answers(r.interpretation, &table, r.exclude, r.budget)
                .unwrap();
            assert_identical(
                batch_answers,
                &single,
                &format!("batch vs single, workers {workers}, budget {}", r.budget),
            );
        }
    }
}

/// The serving front-end (`CqadsSystem::answer_batch`) is byte-identical to
/// per-question `answer_in_domain` calls — for the full answer sets (exact + partial,
/// sql, counts), across worker counts, with the cache cold and hot.
#[test]
fn answer_batch_matches_per_question_answer_in_domain() {
    use cqads_suite::cqads::{CqadsConfig, CqadsSystem};

    fn assert_sets_identical(
        batch: &cqads_suite::cqads::AnswerSet,
        single: &cqads_suite::cqads::AnswerSet,
        context: &str,
    ) {
        assert_eq!(batch.domain, single.domain, "domain diverged: {context}");
        assert_eq!(batch.sql, single.sql, "sql diverged: {context}");
        assert_eq!(
            batch.exact_count, single.exact_count,
            "exact count diverged: {context}"
        );
        assert_eq!(
            batch.answers.len(),
            single.answers.len(),
            "answer count diverged: {context}"
        );
        for (i, (a, b)) in batch.answers.iter().zip(&single.answers).enumerate() {
            assert_eq!(a.id, b.id, "id diverged at rank {i}: {context}");
            assert_eq!(a.kind, b.kind, "kind diverged at rank {i}: {context}");
            assert_eq!(
                a.rank_sim.to_bits(),
                b.rank_sim.to_bits(),
                "rank_sim diverged at rank {i}: {context}"
            );
            assert_eq!(
                a.measure, b.measure,
                "measure diverged at rank {i}: {context}"
            );
        }
    }

    for workers in [0usize, 2] {
        let mut system = CqadsSystem::with_config(CqadsConfig {
            partial_workers: workers,
            ..CqadsConfig::default()
        });
        let bp = blueprint("cars");
        let table = generate_table(&bp, 400, 51);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig {
                sessions: 150,
                seed: 52,
                ..Default::default()
            },
        );
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec {
                documents: 80,
                ..CorpusSpec::default()
            },
        );
        system.set_word_sim(WordSimMatrix::build(&corpus));
        system.add_domain(bp.to_spec(), table, TIMatrix::build(&log));

        let table_ref = system.database().table("cars").unwrap();
        let questions: Vec<String> =
            generate_questions(&bp, table_ref, 40, 53, &QuestionMix::default())
                .into_iter()
                .map(|q| q.text)
                .collect();
        // Burst with deliberate repeats so the dedup path is exercised.
        let mut burst: Vec<&str> = questions.iter().map(String::as_str).collect();
        burst.extend(questions.iter().take(10).map(String::as_str));

        let batched = system.answer_batch(&burst);
        assert_eq!(batched.len(), burst.len());
        let mut compared = 0usize;
        for (q, outcome) in burst.iter().zip(&batched) {
            let domain = system.classify(q).unwrap();
            let single = system.answer_in_domain(q, &domain);
            match (outcome, single) {
                (Ok(batch_set), Ok(single_set)) => {
                    assert_sets_identical(
                        batch_set,
                        &single_set,
                        &format!("workers {workers}, question {q:?}"),
                    );
                    compared += 1;
                }
                (Err(a), Err(b)) => assert_eq!(a, &b, "errors diverged for {q:?}"),
                (a, b) => panic!("outcome mismatch for {q:?}: batch {a:?} vs single {b:?}"),
            }
        }
        assert!(compared >= 20, "sweep too small: {compared}");

        // A hot second burst (pure cache hits) still matches the uncached path.
        let hot = system.answer_batch(&burst[..10]);
        for (q, outcome) in burst[..10].iter().zip(&hot) {
            if let Ok(batch_set) = outcome {
                let domain = system.classify(q).unwrap();
                let single = system.answer_in_domain(q, &domain).unwrap();
                assert_sets_identical(batch_set, &single, &format!("hot, question {q:?}"));
            }
        }
        assert!(
            system.cache_stats().hits > 0,
            "hot burst never hit the cache"
        );
    }
}

#[test]
fn edge_cases_budget_zero_oversized_and_all_excluded() {
    let bp = blueprint("cars");
    let table = generate_table(&bp, 120, 7);
    let spec = bp.to_spec();
    let sim = SimilarityModel::new(
        Arc::new(TIMatrix::default()),
        Arc::new(WordSimMatrix::default()),
        spec.schema.clone(),
    );
    let tagger = Tagger::new(&spec);
    let interp = interpret(&tagger.tag("blue honda accord under 20000 dollars"), &spec).unwrap();
    let fast = PartialMatcher::new(&spec, &sim);
    let slow = PartialMatcher::with_options(
        &spec,
        &sim,
        PartialMatchOptions {
            full_scan: true,
            ..PartialMatchOptions::default()
        },
    );

    // Budget 0 returns nothing from either engine.
    let none = HashSet::new();
    assert!(fast
        .partial_answers(&interp, &table, &none, 0)
        .unwrap()
        .is_empty());
    assert!(slow
        .partial_answers(&interp, &table, &none, 0)
        .unwrap()
        .is_empty());

    // Budget far larger than any match set: identical, and within table bounds.
    let a = fast
        .partial_answers(&interp, &table, &none, 10_000)
        .unwrap();
    let b = slow
        .partial_answers(&interp, &table, &none, 10_000)
        .unwrap();
    assert!(a.len() <= table.len());
    assert_identical(&a, &b, "oversized budget");

    // Every record excluded: nothing can be returned.
    let all: HashSet<RecordId> = (0..table.len() as u32).map(RecordId).collect();
    assert!(fast
        .partial_answers(&interp, &table, &all, 30)
        .unwrap()
        .is_empty());
    assert!(slow
        .partial_answers(&interp, &table, &all, 30)
        .unwrap()
        .is_empty());
}
