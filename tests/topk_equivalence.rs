//! Equivalence of the bounded top-k partial-match engine with the original
//! full-scan/full-sort pipeline (kept behind `PartialMatchOptions::full_scan`), and of
//! the id-sharded parallel engine with the sequential one.
//!
//! The deterministic randomized sweep below generates seeded datagen tables and
//! question workloads across several domains, interprets every question exactly as the
//! pipeline would, and asserts that both engines return **byte-identical**
//! `(id, rank_sim, measure, relaxed_condition)` sequences for a spread of budgets and
//! exclusion sets — including the edge cases the top-k collector has to get right:
//! budget 0, budget larger than the match set, and every candidate excluded.

use cqads_suite::addb::RecordId;
use cqads_suite::cqads::tagging::Tagger;
use cqads_suite::cqads::translate::interpret;
use cqads_suite::cqads::{PartialMatchOptions, PartialMatcher, SimilarityModel};
use cqads_suite::datagen::{
    affinity_model, blueprint, generate_questions, generate_table, topic_groups, QuestionMix,
};
use cqads_suite::querylog::{generate_log, LogGeneratorConfig, TIMatrix};
use cqads_suite::wordsim::{CorpusSpec, SyntheticCorpus, WordSimMatrix};
use std::collections::HashSet;
use std::sync::Arc;

/// Compare two answer sequences for *byte* equality of the score.
fn assert_identical(
    fast: &[cqads_suite::cqads::PartialAnswer],
    slow: &[cqads_suite::cqads::PartialAnswer],
    context: &str,
) {
    assert_eq!(fast.len(), slow.len(), "answer count diverged: {context}");
    for (i, (a, b)) in fast.iter().zip(slow).enumerate() {
        assert_eq!(a.id, b.id, "id diverged at rank {i}: {context}");
        assert_eq!(
            a.rank_sim.to_bits(),
            b.rank_sim.to_bits(),
            "rank_sim diverged at rank {i} (record {}): {context}",
            a.id
        );
        assert_eq!(
            a.measure, b.measure,
            "measure diverged at rank {i}: {context}"
        );
        assert_eq!(
            a.relaxed_condition, b.relaxed_condition,
            "relaxed condition diverged at rank {i}: {context}"
        );
    }
}

#[test]
fn topk_engine_matches_full_sort_across_seeded_workloads() {
    for (domain, table_seed, question_seed) in [
        ("cars", 11_u64, 21_u64),
        ("jewellery", 12, 22),
        ("furniture", 13, 23),
    ] {
        let bp = blueprint(domain);
        let table = generate_table(&bp, 400, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig {
                sessions: 150,
                seed: table_seed ^ 0xA5A5,
                ..Default::default()
            },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec {
                documents: 80,
                ..CorpusSpec::default()
            },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();
        let sim = SimilarityModel::new(Arc::new(ti), Arc::new(ws), spec.schema.clone());
        let tagger = Tagger::new(&spec);

        let fast = PartialMatcher::new(&spec, &sim);
        let slow = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                full_scan: true,
                ..PartialMatchOptions::default()
            },
        );

        let questions = generate_questions(&bp, &table, 60, question_seed, &QuestionMix::default());
        let mut compared = 0usize;
        for q in &questions {
            let Ok(interp) = interpret(&tagger.tag(&q.text), &spec) else {
                continue;
            };
            // The same exclusion the pipeline would apply: the exact answers.
            let exact: HashSet<RecordId> = {
                let query = interp.to_query_with_limit(&spec, 30).unwrap();
                cqads_suite::addb::Executor::new(&table)
                    .execute(&query)
                    .map(|answers| answers.into_iter().map(|a| a.id).collect())
                    .unwrap_or_default()
            };
            for budget in [1usize, 5, 30, table.len() + 10] {
                let a = fast
                    .partial_answers(&interp, &table, &exact, budget)
                    .unwrap();
                let b = slow
                    .partial_answers(&interp, &table, &exact, budget)
                    .unwrap();
                assert_identical(
                    &a,
                    &b,
                    &format!("domain {domain}, question {:?}, budget {budget}", q.text),
                );
                compared += 1;
            }
        }
        assert!(
            compared >= 100,
            "expected a substantive sweep for {domain}, compared only {compared}"
        );
    }
}

/// The id-sharded parallel engine is byte-identical to the sequential engine for
/// every worker count, across randomized datagen tables and question workloads —
/// including sparse questions that trigger the degree-of-match fallback and workers
/// far exceeding any shard's useful size.
#[test]
fn parallel_workers_match_sequential_across_seeded_workloads() {
    for (domain, table_seed, question_seed) in [("cars", 31_u64, 41_u64), ("jewellery", 32, 42)] {
        let bp = blueprint(domain);
        let table = generate_table(&bp, 350, table_seed);
        let log = generate_log(
            &affinity_model(&bp),
            &LogGeneratorConfig {
                sessions: 120,
                seed: table_seed ^ 0x5A5A,
                ..Default::default()
            },
        );
        let ti = TIMatrix::build(&log);
        let corpus = SyntheticCorpus::generate(
            &topic_groups(&bp),
            &CorpusSpec {
                documents: 60,
                ..CorpusSpec::default()
            },
        );
        let ws = WordSimMatrix::build(&corpus);
        let spec = bp.to_spec();
        let sim = SimilarityModel::new(Arc::new(ti), Arc::new(ws), spec.schema.clone());
        let tagger = Tagger::new(&spec);

        let sequential = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                workers: 1,
                ..PartialMatchOptions::default()
            },
        );
        let questions = generate_questions(&bp, &table, 40, question_seed, &QuestionMix::default());
        let mut compared = 0usize;
        for q in &questions {
            let Ok(interp) = interpret(&tagger.tag(&q.text), &spec) else {
                continue;
            };
            let exact: HashSet<RecordId> = {
                let query = interp.to_query_with_limit(&spec, 30).unwrap();
                cqads_suite::addb::Executor::new(&table)
                    .execute(&query)
                    .map(|answers| answers.into_iter().map(|a| a.id).collect())
                    .unwrap_or_default()
            };
            for workers in [2usize, 8] {
                let parallel = PartialMatcher::with_options(
                    &spec,
                    &sim,
                    PartialMatchOptions {
                        workers,
                        ..PartialMatchOptions::default()
                    },
                );
                for budget in [1usize, 7, 30] {
                    let a = parallel
                        .partial_answers(&interp, &table, &exact, budget)
                        .unwrap();
                    let b = sequential
                        .partial_answers(&interp, &table, &exact, budget)
                        .unwrap();
                    assert_identical(
                        &a,
                        &b,
                        &format!(
                            "domain {domain}, question {:?}, workers {workers}, budget {budget}",
                            q.text
                        ),
                    );
                    compared += 1;
                }
            }
        }
        assert!(
            compared >= 100,
            "expected a substantive parallel sweep for {domain}, compared only {compared}"
        );
    }
}

/// The batch API is element-wise byte-identical to per-question calls, for every
/// worker count and across mixed budgets (including zero).
#[test]
fn batch_api_matches_per_question_calls() {
    use cqads_suite::cqads::PartialBatchRequest;
    let bp = blueprint("cars");
    let table = generate_table(&bp, 300, 17);
    let log = generate_log(
        &affinity_model(&bp),
        &LogGeneratorConfig {
            sessions: 100,
            seed: 23,
            ..Default::default()
        },
    );
    let ti = TIMatrix::build(&log);
    let spec = bp.to_spec();
    let sim = SimilarityModel::new(
        Arc::new(ti),
        Arc::new(WordSimMatrix::default()),
        spec.schema.clone(),
    );
    let tagger = Tagger::new(&spec);
    let questions = generate_questions(&bp, &table, 20, 29, &QuestionMix::default());
    let interps: Vec<_> = questions
        .iter()
        .filter_map(|q| interpret(&tagger.tag(&q.text), &spec).ok())
        .collect();
    assert!(interps.len() >= 8, "workload too small");
    let none = HashSet::new();
    let some: HashSet<RecordId> = [RecordId(1), RecordId(5)].into_iter().collect();
    let requests: Vec<PartialBatchRequest<'_>> = interps
        .iter()
        .enumerate()
        .map(|(i, interp)| PartialBatchRequest {
            interpretation: interp,
            exclude: if i % 2 == 0 { &none } else { &some },
            budget: [0usize, 1, 7, 30][i % 4],
        })
        .collect();
    for workers in [1usize, 2, 8] {
        let matcher = PartialMatcher::with_options(
            &spec,
            &sim,
            PartialMatchOptions {
                workers,
                ..PartialMatchOptions::default()
            },
        );
        let batched = matcher.partial_answers_batch(&requests, &table).unwrap();
        assert_eq!(batched.len(), requests.len());
        for (r, batch_answers) in requests.iter().zip(&batched) {
            let single = matcher
                .partial_answers(r.interpretation, &table, r.exclude, r.budget)
                .unwrap();
            assert_identical(
                batch_answers,
                &single,
                &format!("batch vs single, workers {workers}, budget {}", r.budget),
            );
        }
    }
}

#[test]
fn edge_cases_budget_zero_oversized_and_all_excluded() {
    let bp = blueprint("cars");
    let table = generate_table(&bp, 120, 7);
    let spec = bp.to_spec();
    let sim = SimilarityModel::new(
        Arc::new(TIMatrix::default()),
        Arc::new(WordSimMatrix::default()),
        spec.schema.clone(),
    );
    let tagger = Tagger::new(&spec);
    let interp = interpret(&tagger.tag("blue honda accord under 20000 dollars"), &spec).unwrap();
    let fast = PartialMatcher::new(&spec, &sim);
    let slow = PartialMatcher::with_options(
        &spec,
        &sim,
        PartialMatchOptions {
            full_scan: true,
            ..PartialMatchOptions::default()
        },
    );

    // Budget 0 returns nothing from either engine.
    let none = HashSet::new();
    assert!(fast
        .partial_answers(&interp, &table, &none, 0)
        .unwrap()
        .is_empty());
    assert!(slow
        .partial_answers(&interp, &table, &none, 0)
        .unwrap()
        .is_empty());

    // Budget far larger than any match set: identical, and within table bounds.
    let a = fast
        .partial_answers(&interp, &table, &none, 10_000)
        .unwrap();
    let b = slow
        .partial_answers(&interp, &table, &none, 10_000)
        .unwrap();
    assert!(a.len() <= table.len());
    assert_identical(&a, &b, "oversized budget");

    // Every record excluded: nothing can be returned.
    let all: HashSet<RecordId> = (0..table.len() as u32).map(RecordId).collect();
    assert!(fast
        .partial_answers(&interp, &table, &all, 30)
        .unwrap()
        .is_empty());
    assert!(slow
        .partial_answers(&interp, &table, &all, 30)
        .unwrap()
        .is_empty());
}
