//! Exhaustive-interleaving model checks of the workspace's hand-rolled
//! concurrency protocols, run with the vendored `miniloom` checker.
//!
//! These tests exercise the **production types** — not re-implementations:
//! `cqads`/`cqads-storage` are built here with their `miniloom` cargo
//! feature, which swaps their `sync` facade modules to miniloom's
//! model-aware shims (plain `std` passthrough outside a model). Inside
//! [`miniloom::model`] every atomic/mutex operation becomes a scheduler
//! yield point and the checker runs the closure once per distinct thread
//! schedule, so an assertion here holds for **every** interleaving of the
//! protocol's shimmed operations (under sequential consistency — the
//! per-site ordering-strength arguments live in the `// ordering:` comments
//! that `cargo xtask lint` enforces).
//!
//! Five protocols are checked, matching ARCHITECTURE.md invariants #7–#9:
//!
//! 1. [`SharedThreshold`] — the cross-worker WAND threshold's monotone
//!    atomic max: no concurrent raise is ever lost, loads never regress.
//! 2. [`CircuitBreaker`] — trip exactly-once under concurrent threshold
//!    crossing, and the half-open probe race leaves only expected states.
//! 3. [`AnswerCache`] — the generation-stamp fill/lookup protocol: a racing
//!    stale filler can never mask a fresher entry, and a lookup at the
//!    current stamp never returns a provably-stale answer.
//! 4. [`ArcSwap`] — the snapshot-publication slot ring behind the
//!    reader/writer handle split: loads never observe a torn or regressing
//!    snapshot, and racing writers serialize without losing a displaced
//!    snapshot.
//! 5. The shard layer — scatter-gather reads over per-shard publication
//!    rings: racing single-shard writes never produce a torn cross-shard
//!    view, and every gathered per-shard snapshot is bracketed by the call.

use arcswap::ArcSwap;
use cqads::cache::{AnswerCache, CacheKey, GenerationStamp};
use cqads::partial::SharedThreshold;
use cqads::pipeline::AnswerSet;
use cqads_storage::retry::CircuitBreaker;
use std::sync::{Arc, Mutex};

/// Floor asserted on every three-thread model: all `3! = 6` serial orders
/// exist, so exploring fewer means the checker degenerated and proves
/// nothing about races.
const MIN_SCHEDULES_3T: u64 = 6;

/// Floor for the two-thread models: strictly more than the two serial
/// orders, i.e. at least one genuinely interleaved schedule was explored.
const MIN_SCHEDULES_2T: u64 = 3;

// ---------------------------------------------------------------------------
// SharedThreshold — monotone atomic max (crates/core/src/partial.rs)
// ---------------------------------------------------------------------------

/// Three threads race `raise`: under every schedule the final threshold is
/// the true maximum — the CAS loop never loses a concurrent raise. (A blind
/// `store` version fails this: a slow writer overwrites a larger value.)
#[test]
fn shared_threshold_concurrent_raises_never_lose_the_max() {
    let report = miniloom::model(|| {
        let threshold = Arc::new(SharedThreshold::new());
        let handles: Vec<_> = [1.5_f64, 3.25, 2.0]
            .into_iter()
            .map(|score| {
                let threshold = Arc::clone(&threshold);
                miniloom::thread::spawn(move || threshold.raise(score))
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(
            threshold.load(),
            3.25,
            "a concurrent raise was lost — monotone max violated"
        );
    });
    assert!(report.schedules >= MIN_SCHEDULES_3T, "explored {report}");
    println!("shared_threshold max: {report}");
}

/// Publish/read monotonicity under 3 threads (two publishers, one reader):
/// a reader's consecutive loads never regress, in any schedule — the
/// admissibility argument for pruning against a *stale* threshold depends
/// on exactly this.
#[test]
fn shared_threshold_reads_are_monotone_under_racing_publishers() {
    let report = miniloom::model(|| {
        let threshold = Arc::new(SharedThreshold::new());
        let publishers: Vec<_> = [2.0_f64, 4.0]
            .into_iter()
            .map(|score| {
                let threshold = Arc::clone(&threshold);
                miniloom::thread::spawn(move || threshold.raise(score))
            })
            .collect();
        let reader = {
            let threshold = Arc::clone(&threshold);
            miniloom::thread::spawn(move || {
                let first = threshold.load();
                let second = threshold.load();
                assert!(
                    second >= first,
                    "threshold regressed between reads: {first} -> {second}"
                );
                (first, second)
            })
        };
        let (first, second) = reader.join().unwrap();
        for publisher in publishers {
            publisher.join().unwrap();
        }
        // Reads only ever observe published values (or the -inf start).
        for observed in [first, second] {
            assert!(
                observed == f64::NEG_INFINITY || observed == 2.0 || observed == 4.0,
                "impossible threshold observed: {observed}"
            );
        }
        assert_eq!(threshold.load(), 4.0);
    });
    assert!(report.schedules >= MIN_SCHEDULES_3T, "explored {report}");
    println!("shared_threshold monotone reads: {report}");
}

// ---------------------------------------------------------------------------
// CircuitBreaker — trip / half-open / close races (crates/storage/src/retry.rs)
// ---------------------------------------------------------------------------

/// Two workers exhaust their retries concurrently with `threshold = 2`:
/// the `fetch_add` RMW guarantees the streak reaches 2 in every schedule, so
/// the breaker must end **open** — and exactly one worker observes the
/// crossing (`times_opened == 1`), so trip side effects never double-fire.
#[test]
fn circuit_breaker_concurrent_failures_trip_exactly_once() {
    let report = miniloom::model(|| {
        let breaker = Arc::new(CircuitBreaker::new(2, 1_000));
        let workers: Vec<_> = (0..2)
            .map(|_| {
                let breaker = Arc::clone(&breaker);
                miniloom::thread::spawn(move || breaker.record_failure(0))
            })
            .collect();
        for worker in workers {
            worker.join().unwrap();
        }
        assert!(
            !breaker.allows(999),
            "two concurrent failures at threshold 2 must leave the breaker open"
        );
        assert!(breaker.allows(1_000), "cooldown expiry half-opens");
        assert_eq!(
            breaker.times_opened(),
            1,
            "the threshold crossing must be observed by exactly one failure"
        );
    });
    assert!(report.schedules >= MIN_SCHEDULES_2T, "explored {report}");
    println!("circuit_breaker trip: {report}");
}

/// The half-open probe race: after a cooldown, a succeeding probe races a
/// failing one (`threshold = 1`). Both final states are legitimate — which
/// ever bookkeeping lands last wins — but every schedule must end in exactly
/// one of the two *coherent* states: fully closed (streak reset) or re-opened
/// for a full cooldown; and both outcomes must actually be reachable.
#[test]
fn circuit_breaker_half_open_probe_race_reaches_only_coherent_states() {
    let outcomes = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = miniloom::model(move || {
        let breaker = Arc::new(CircuitBreaker::new(1, 1_000));
        // Trip once; the probe race happens after the cooldown at t=1000.
        breaker.record_failure(0);
        assert!(!breaker.allows(999));
        assert!(breaker.allows(1_000), "half-open");

        let success = {
            let breaker = Arc::clone(&breaker);
            miniloom::thread::spawn(move || breaker.record_success())
        };
        let failure = {
            let breaker = Arc::clone(&breaker);
            miniloom::thread::spawn(move || breaker.record_failure(1_000))
        };
        success.join().unwrap();
        failure.join().unwrap();

        let open_now = !breaker.allows(1_000);
        let open_after_cooldown = !breaker.allows(2_000);
        assert!(
            !open_after_cooldown,
            "no schedule may leave the breaker open past a full cooldown"
        );
        sink.lock().unwrap().insert(open_now);
    });
    let outcomes = outcomes.lock().unwrap();
    assert!(
        outcomes.contains(&true) && outcomes.contains(&false),
        "both race winners must be reachable, saw {outcomes:?}"
    );
    assert!(report.schedules >= MIN_SCHEDULES_2T, "explored {report}");
    println!("circuit_breaker half-open race: {report}");
}

// ---------------------------------------------------------------------------
// AnswerCache — generation-stamp fill/lookup races (crates/core/src/cache.rs)
// ---------------------------------------------------------------------------

/// An [`AnswerSet`] distinguishable by its domain label (the answer payload
/// plays no role in the stamp protocol).
fn labeled_answer(label: &str) -> Arc<AnswerSet> {
    Arc::new(AnswerSet {
        domain: label.to_string(),
        tagged: Default::default(),
        interpretation: Default::default(),
        sql: String::new(),
        answers: Vec::new(),
        exact_count: 0,
        quality: Default::default(),
        elapsed: std::time::Duration::ZERO,
    })
}

/// The racing-fillers protocol: a slow filler holding a **stale** stamp races
/// a fresh filler and a reader at the current stamp. In every schedule:
///
/// * the reader never receives the stale answer (stamp `covers` gates it),
/// * after both fills, the fresh entry survives (a stale fill can't mask it).
#[test]
fn answer_cache_stale_filler_never_masks_or_serves() {
    let report = miniloom::model(|| {
        let cache = Arc::new(AnswerCache::new(4, 1));
        let key = CacheKey::new("cars", "blue honda");
        let stale_stamp = GenerationStamp::new(6, 0); // read before an insert
        let fresh_stamp = GenerationStamp::new(7, 0); // read after it

        let stale_filler = {
            let (cache, key) = (Arc::clone(&cache), key.clone());
            miniloom::thread::spawn(move || cache.fill(key, stale_stamp, labeled_answer("stale")))
        };
        let fresh_filler = {
            let (cache, key) = (Arc::clone(&cache), key.clone());
            miniloom::thread::spawn(move || cache.fill(key, fresh_stamp, labeled_answer("fresh")))
        };
        let reader = {
            let (cache, key) = (Arc::clone(&cache), key.clone());
            miniloom::thread::spawn(move || cache.lookup(&key, fresh_stamp))
        };

        if let Some(hit) = reader.join().unwrap() {
            assert_eq!(
                hit.domain, "fresh",
                "a lookup at the current stamp served a provably-stale answer"
            );
        }
        stale_filler.join().unwrap();
        fresh_filler.join().unwrap();

        // Whatever the interleaving, the surviving entry must be the fresh
        // one: fill only overwrites when the incoming stamp covers the
        // resident one, and lookup evicts anything the current stamp beats.
        let resident = cache
            .lookup(&key, fresh_stamp)
            .expect("the fresh fill must survive every race");
        assert_eq!(resident.domain, "fresh");
    });
    assert!(report.schedules >= MIN_SCHEDULES_3T, "explored {report}");
    println!("answer_cache stamp race: {report}");
}

/// Lookup-evicts-stale racing a stale re-fill: even when the stale filler
/// lands *after* the eviction, a reader at the current stamp still never
/// sees it — and the stale entry cannot permanently occupy the key (a fresh
/// fill afterwards always wins).
#[test]
fn answer_cache_eviction_and_stale_refill_race_stays_conservative() {
    let report = miniloom::model(|| {
        let cache = Arc::new(AnswerCache::new(4, 1));
        let key = CacheKey::new("cars", "blue honda");
        let stale_stamp = GenerationStamp::new(1, 0);
        let fresh_stamp = GenerationStamp::new(2, 0);
        cache.fill(key.clone(), stale_stamp, labeled_answer("stale"));

        let evicting_reader = {
            let (cache, key) = (Arc::clone(&cache), key.clone());
            miniloom::thread::spawn(move || cache.lookup(&key, fresh_stamp))
        };
        let stale_refiller = {
            let (cache, key) = (Arc::clone(&cache), key.clone());
            miniloom::thread::spawn(move || cache.fill(key, stale_stamp, labeled_answer("stale")))
        };
        assert!(
            evicting_reader.join().unwrap().is_none(),
            "a stale entry must never satisfy a current-stamp lookup"
        );
        stale_refiller.join().unwrap();

        // The stale re-fill may legitimately re-occupy the key, but it can
        // never be *served* at the current stamp, and a fresh fill displaces
        // it in every schedule.
        assert!(cache.lookup(&key, fresh_stamp).is_none());
        cache.fill(key.clone(), fresh_stamp, labeled_answer("fresh"));
        let resident = cache
            .lookup(&key, fresh_stamp)
            .expect("fresh fill must land");
        assert_eq!(resident.domain, "fresh");
    });
    assert!(report.schedules >= MIN_SCHEDULES_2T, "explored {report}");
    println!("answer_cache eviction race: {report}");
}

// ---------------------------------------------------------------------------
// ArcSwap — snapshot publication slot ring (vendor/arcswap, used by
// crates/core/src/handle.rs for the reader/writer handle split)
// ---------------------------------------------------------------------------

/// ArcSwap's per-operation yield points (slot mutexes, the cursor mutex and
/// the `current` index) give these models a much larger state space than the
/// protocols above, so they bound context switches per schedule like loom
/// does. A bound of 3 preemptions covers every race the slot ring can
/// express between two adjacent operations while keeping the search small.
fn bounded_model<F>(f: F) -> miniloom::Report
where
    F: Fn() + Send + Sync + 'static,
{
    miniloom::Builder {
        preemption_bound: Some(3),
        ..miniloom::Builder::default()
    }
    .check(f)
}

/// A publisher races two readers, each loading twice. In every schedule:
///
/// * no load observes a **torn** snapshot — the two fields of the published
///   pair always agree (writers build the value before touching the ring,
///   and `Release`-publish the slot index only after the slot holds it);
/// * consecutive loads on one thread never **regress** to an older snapshot
///   (the slot a reader locks can only be overwritten by a writer that
///   already published newer values);
/// * after the publisher finishes, a load returns the latest snapshot.
///
/// This is ARCHITECTURE.md invariant #8's mechanism: `CqadsWriter::publish`
/// stores a fully-built `Arc<Snapshot>` and `CqadsReader` loads it once per
/// call, so a half-applied mutation is unobservable by construction.
#[test]
fn arcswap_loads_never_observe_torn_or_regressing_snapshots() {
    let report = bounded_model(|| {
        // The "snapshot" is a pair whose halves must agree — a stand-in for
        // Snapshot's (database, models) built-together invariant.
        let swap = Arc::new(ArcSwap::new(Arc::new((0u64, 0u64))));
        let publisher = {
            let swap = Arc::clone(&swap);
            miniloom::thread::spawn(move || {
                swap.store(Arc::new((1, 10)));
                swap.store(Arc::new((2, 20)));
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let swap = Arc::clone(&swap);
                miniloom::thread::spawn(move || {
                    let first = **swap.load();
                    let second = **swap.load();
                    for snap in [first, second] {
                        assert_eq!(snap.1, snap.0 * 10, "torn snapshot observed: {snap:?}");
                    }
                    assert!(
                        second.0 >= first.0,
                        "snapshot regressed between loads: {first:?} -> {second:?}"
                    );
                })
            })
            .collect();
        publisher.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(
            **swap.load(),
            (2, 20),
            "the last publish must be the one served once the writer is done"
        );
    });
    assert!(report.schedules >= MIN_SCHEDULES_3T, "explored {report}");
    println!("arcswap torn/regress: {report}");
}

/// Two writers race `swap` from an initial snapshot. Writers serialize on the
/// cursor, so in every schedule the two displaced values plus the finally
/// published one are exactly {initial, first write, second write} — no
/// snapshot is ever lost (leaked) or returned twice (double-freed, in the
/// refcounting sense) — and both serialization orders are actually reachable.
#[test]
fn arcswap_racing_writers_serialize_and_account_for_every_snapshot() {
    let finals = Arc::new(Mutex::new(std::collections::BTreeSet::new()));
    let sink = Arc::clone(&finals);
    let report = bounded_model(move || {
        let swap = Arc::new(ArcSwap::new(Arc::new(0u8)));
        let writers: Vec<_> = [1u8, 2]
            .into_iter()
            .map(|value| {
                let swap = Arc::clone(&swap);
                miniloom::thread::spawn(move || *swap.swap(Arc::new(value)))
            })
            .collect();
        let mut displaced: Vec<u8> = writers.into_iter().map(|w| w.join().unwrap()).collect();
        let final_value = **swap.load();
        displaced.push(final_value);
        displaced.sort_unstable();
        assert_eq!(
            displaced,
            vec![0, 1, 2],
            "a displaced snapshot was lost or served twice"
        );
        sink.lock().unwrap().insert(final_value);
    });
    let finals = finals.lock().unwrap();
    assert!(
        finals.contains(&1) && finals.contains(&2),
        "both writer serialization orders must be reachable, saw {finals:?}"
    );
    assert!(report.schedules >= MIN_SCHEDULES_2T, "explored {report}");
    println!("arcswap writer race: {report}");
}

// ---------------------------------------------------------------------------
// Shard layer — scatter-gather reads vs single-shard writes
// (crates/core/src/shard.rs over the same ArcSwap publication ring)
// ---------------------------------------------------------------------------

/// `ShardedCqads::answer_scatter` starts by loading each shard's published
/// snapshot once and holds every guard for the whole gather, so a scattered
/// read is a vector of per-shard snapshots. Model: two shards, each an
/// `ArcSwap` of a `(generation, payload)` pair with `payload = generation *
/// 10` (the torn-pair stand-in of the invariant-#8 model); a writer routes
/// two inserts to shard 0 **only**, racing two scatter readers. In every
/// schedule:
///
/// * no per-shard load observes a **torn** snapshot — each gathered
///   contribution is consistent with some fully-published shard state;
/// * shard 1's snapshot stays the initial one — a single-shard write never
///   perturbs another shard's published state (the finer-invalidation base
///   case);
/// * each gathered view is **bracketed**: shard 0's observed generation
///   never exceeds the writer's final generation, and a second scatter on
///   the same thread never regresses below the first.
///
/// This extends ARCHITECTURE.md invariant #8 to the shard layer
/// (invariant #9): a scatter-gather read never observes a torn cross-shard
/// view, only a vector of genuinely-published per-shard snapshots.
#[test]
fn shard_scatter_reads_are_untorn_and_bracketed_under_single_shard_writes() {
    let report = bounded_model(|| {
        let shard0 = Arc::new(ArcSwap::new(Arc::new((0u64, 0u64))));
        let shard1 = Arc::new(ArcSwap::new(Arc::new((0u64, 0u64))));
        let writer = {
            let shard0 = Arc::clone(&shard0);
            miniloom::thread::spawn(move || {
                // Two routed inserts: each publishes shard 0's next snapshot
                // (built fully before the store, exactly like CqadsWriter).
                shard0.store(Arc::new((1, 10)));
                shard0.store(Arc::new((2, 20)));
            })
        };
        let readers: Vec<_> = (0..2)
            .map(|_| {
                let shard0 = Arc::clone(&shard0);
                let shard1 = Arc::clone(&shard1);
                miniloom::thread::spawn(move || {
                    // One scatter = one load per shard (answer_scatter's
                    // guard collection), gathered into a cross-shard view.
                    let scatter = || (**shard0.load(), **shard1.load());
                    let first = scatter();
                    let second = scatter();
                    for (s0, s1) in [first, second] {
                        assert_eq!(s0.1, s0.0 * 10, "torn shard-0 snapshot: {s0:?}");
                        assert_eq!(s1.1, s1.0 * 10, "torn shard-1 snapshot: {s1:?}");
                        assert_eq!(
                            s1,
                            (0, 0),
                            "a shard-0 write perturbed shard 1's published state"
                        );
                        assert!(
                            s0.0 <= 2,
                            "shard-0 generation above the writer's final: {s0:?}"
                        );
                    }
                    assert!(
                        second.0 .0 >= first.0 .0,
                        "scatter regressed between gathers: {first:?} -> {second:?}"
                    );
                })
            })
            .collect();
        writer.join().unwrap();
        for reader in readers {
            reader.join().unwrap();
        }
        assert_eq!(
            (**shard0.load(), **shard1.load()),
            ((2, 20), (0, 0)),
            "once the writer is done a scatter must gather exactly its final publications"
        );
    });
    assert!(report.schedules >= MIN_SCHEDULES_3T, "explored {report}");
    println!("shard scatter race: {report}");
}
